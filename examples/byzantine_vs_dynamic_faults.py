#!/usr/bin/env python3
"""Static Byzantine faults versus dynamic transmission faults (Section 5.2).

The classical model fixes ``f`` Byzantine processes for the whole run; the
paper's model lets corruption move around.  This example contrasts the two:

* a **static** environment — the same ``f`` senders are corrupted in every
  round (the transmission-level footprint of Byzantine processes).  The runs
  satisfy the Section 5.2 predicates ``|SK| >= n − f`` and
  ``|HO| >= n − f ∧ |AS| <= f``.  ``U_{T,E,alpha=f}`` solves consensus here;
  the phase-king baseline also works but always needs ``2(f + 1)`` rounds.
* a **dynamic** environment — a *different* set of ``alpha`` senders is
  corrupted every round, so over time far more than ``f`` processes emit
  corrupted values (``|AS|`` grows), which the classical model cannot
  describe at all; ``P_alpha`` still holds and the paper's algorithms remain
  correct.

Run it with::

    python examples/byzantine_vs_dynamic_faults.py
"""

from repro.adversary import (
    PeriodicGoodRoundAdversary,
    RotatingSenderCorruptionAdversary,
    StaticByzantineAdversary,
)
from repro.algorithms import PhaseKingAlgorithm, UteAlgorithm, AteAlgorithm
from repro.core.predicates import (
    AlphaSafePredicate,
    ByzantineAsynchronousPredicate,
    ByzantineSynchronousPredicate,
    PermanentAlphaPredicate,
)
from repro.simulation.engine import run_consensus
from repro.workloads import generators


def main() -> None:
    n, f = 10, 2
    initial_values = generators.skewed(n, seed=3)

    print(f"n = {n}, f = alpha = {f}")
    print()

    # ------------------------------------------------------------------ static
    print("=== static environment: senders 0 and 1 permanently corrupted ===")
    for label, algorithm in [
        (f"U_(T,E,alpha={f})", UteAlgorithm.minimal(n=n, alpha=f)),
        (f"PhaseKing(f={f})", PhaseKingAlgorithm(n=n, f=f)),
    ]:
        adversary = StaticByzantineAdversary(byzantine=range(f), value_domain=(0, 1), seed=11)
        result = run_consensus(algorithm, initial_values, adversary, max_rounds=40)
        print(f"{label:22s} {result.summary()}")
        checks = {
            "|SK| >= n-f": ByzantineSynchronousPredicate(n, f).holds(result.collection),
            "|HO| >= n-f & |AS| <= f": ByzantineAsynchronousPredicate(n, f).holds(result.collection),
            "P^perm_f": PermanentAlphaPredicate(f).holds(result.collection),
            "P_f": AlphaSafePredicate(f).holds(result.collection),
        }
        print(f"{'':22s} classical predicates hold: {checks}")
    print()

    # ----------------------------------------------------------------- dynamic
    print("=== dynamic environment: a different pair of senders corrupted every round ===")
    adversary = PeriodicGoodRoundAdversary(
        inner=RotatingSenderCorruptionAdversary(alpha=f, value_domain=(0, 1), seed=13),
        period=4,
    )
    algorithm = AteAlgorithm.symmetric(n=n, alpha=f)
    result = run_consensus(algorithm, initial_values, adversary, max_rounds=60)
    print(f"{'A_(T,E) alpha=2':22s} {result.summary()}")
    altered_span = result.collection.global_altered_span()
    print(
        f"{'':22s} processes that emitted corrupted values over the run: "
        f"{sorted(altered_span)} (|AS| = {len(altered_span)} > f = {f})"
    )
    print(
        f"{'':22s} P_f still holds: {AlphaSafePredicate(f).holds(result.collection)}, "
        f"P^perm_f (classical reading) holds: {PermanentAlphaPredicate(f).holds(result.collection)}"
    )
    print()
    print(
        "=> the classical permanent-fault reading (P^perm) fails for dynamic faults while the\n"
        "   per-round predicate P_alpha — all the paper's algorithms need for safety — survives."
    )


if __name__ == "__main__":
    main()

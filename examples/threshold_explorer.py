#!/usr/bin/env python3
"""Threshold explorer: how much corruption can a deployment tolerate?

Given a system size, this example answers the questions a user of the
library would actually ask before deploying one of the algorithms:

* up to which ``alpha`` does each algorithm admit valid thresholds
  (``alpha < n/4`` for ``A_{T,E}``, ``alpha < n/2`` for ``U_{T,E,alpha}``)?
* which concrete integer thresholds work?
* how does decision latency degrade as ``alpha`` grows (measured by
  simulation under matching fault environments)?
* how do those numbers compare with the classical bounds the paper
  discusses (Santoro–Widmayer, static Byzantine, fast Byzantine)?

Run it with::

    python examples/threshold_explorer.py [n]
"""

import sys

from repro.adversary import PeriodicGoodRoundAdversary, RandomCorruptionAdversary
from repro.algorithms import AteAlgorithm
from repro.analysis.comparison import related_work_rows, render_table
from repro.analysis.feasibility import (
    ate_integer_solutions,
    ate_max_alpha,
    ate_symmetric_parameters,
    ute_integer_solutions,
    ute_max_alpha,
)
from repro.simulation.engine import run_consensus
from repro.workloads import generators


def latency_under_alpha(n: int, alpha: int, runs: int = 10) -> float:
    """Mean last-decision round of A_{T,E} under alpha-bounded corruption."""
    params = ate_symmetric_parameters(n, alpha)
    rounds = []
    for seed in range(runs):
        result = run_consensus(
            AteAlgorithm(params),
            generators.uniform_random(n, seed=seed),
            PeriodicGoodRoundAdversary(
                inner=RandomCorruptionAdversary(alpha=alpha, value_domain=(0, 1), seed=seed),
                period=4,
            ),
            max_rounds=80,
        )
        if result.last_decision_round is not None:
            rounds.append(result.last_decision_round)
    return sum(rounds) / len(rounds) if rounds else float("nan")


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 12

    print(f"=== feasibility at n = {n} ===")
    print(f"A_(T,E)        : alpha up to {ate_max_alpha(n)}  (alpha < n/4 = {n / 4:g})")
    print(f"U_(T,E,alpha)  : alpha up to {ute_max_alpha(n)}  (alpha < n/2 = {n / 2:g})")
    print()

    print("integer threshold pairs (T, E) per alpha:")
    rows = []
    for alpha in range(0, ute_max_alpha(n) + 2):
        rows.append(
            {
                "alpha": alpha,
                "A pairs": len(ate_integer_solutions(n, alpha)),
                "U pairs": len(ute_integer_solutions(n, alpha)),
                "A symmetric E=T": (
                    f"{float(ate_symmetric_parameters(n, alpha).enough):.2f}"
                    if alpha <= ate_max_alpha(n)
                    else "-"
                ),
            }
        )
    print(render_table(rows))
    print()

    print("decision latency of A_(T,E) (simulated, good round every 4 rounds):")
    latency_rows = []
    for alpha in range(0, ate_max_alpha(n) + 1):
        latency_rows.append(
            {"alpha": alpha, "mean last-decision round": f"{latency_under_alpha(n, alpha):.2f}"}
        )
    print(render_table(latency_rows))
    print()

    print("related-work comparison (Section 5.1):")
    print(render_table(related_work_rows(n)))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Communication-closed rounds over an asynchronous transport.

The HO model's rounds are a logical structure, not a synchrony assumption
(Section 1).  This example runs the *same* consensus instance on

* the lockstep engine (direct round execution), and
* the asyncio engine, where every process is a task and every message
  travels through a queue with a random per-message delay,

and shows that the heard-of collections, decisions and decision rounds are
identical — the asynchrony of the transport is invisible at the level at
which the paper's guarantees are stated.

Run it with::

    python examples/async_transport_demo.py
"""

from repro.adversary import RandomCorruptionAdversary
from repro.algorithms import UteAlgorithm
from repro.simulation.async_engine import run_consensus_async
from repro.simulation.engine import run_consensus
from repro.simulation.network import UniformDelay
from repro.workloads import generators


def main() -> None:
    n, alpha = 8, 2
    workload = generators.uniform_random(n, seed=9)
    algorithm = lambda: UteAlgorithm.minimal(n=n, alpha=alpha)  # noqa: E731
    adversary = lambda: RandomCorruptionAdversary(alpha=alpha, value_domain=(0, 1), seed=31)  # noqa: E731

    lockstep = run_consensus(algorithm(), workload, adversary(), max_rounds=40)
    print("lockstep engine :", lockstep.summary())

    asynchronous = run_consensus_async(
        algorithm(),
        workload,
        adversary(),
        max_rounds=40,
        delay_model=UniformDelay(0.0, 0.002),
        network_seed=5,
    )
    print("asyncio engine  :", asynchronous.summary())

    same_decisions = lockstep.outcome.decision_values == asynchronous.outcome.decision_values
    same_rounds = lockstep.outcome.decision_rounds == asynchronous.outcome.decision_rounds
    same_corruption = (
        lockstep.metrics.messages_corrupted == asynchronous.metrics.messages_corrupted
    )
    print()
    print(f"identical decisions       : {same_decisions}")
    print(f"identical decision rounds : {same_rounds}")
    print(f"identical corruption count: {same_corruption}")
    print()
    print(
        "=> the round structure is preserved over an asynchronous, randomly delayed transport;\n"
        "   the paper's guarantees only depend on the HO/SHO collections, not on timing."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Surviving Santoro–Widmayer block faults (the Section 5.1 headline).

Santoro and Widmayer proved that agreement is impossible when ``⌊n/2⌋``
transmission faults per round may hit the outgoing links of a (different)
process every round — *if* the algorithm has to cope with them permanently.
This example reproduces the paper's answer: under exactly that fault
pattern,

* ``A_{T,E}`` never violates Agreement or Integrity, and
* it terminates as soon as the sporadic good rounds demanded by
  ``P^{A,live}`` show up — here one perfect round every five rounds,

while a comparison run without any good rounds shows that only
*termination* (never safety) is at stake.

Run it with::

    python examples/block_faults_santoro_widmayer.py
"""

from repro.adversary import BlockFaultAdversary, PeriodicGoodRoundAdversary
from repro.algorithms import AteAlgorithm
from repro.analysis.bounds import corruption_capacity, santoro_widmayer_bound
from repro.analysis.feasibility import ate_max_alpha
from repro.simulation.engine import run_consensus
from repro.workloads import generators


def run_case(label, n, adversary, max_rounds=60):
    algorithm = AteAlgorithm.symmetric(n=n, alpha=ate_max_alpha(n))
    result = run_consensus(algorithm, generators.split(n), adversary, max_rounds=max_rounds)
    peak = max(result.collection.corruption_profile() or [0])
    print(f"--- {label}")
    print(f"    {result.summary()}")
    print(f"    peak corrupted receptions in a round: {peak}")
    print()
    return result


def main() -> None:
    n = 10
    block_size = santoro_widmayer_bound(n)
    capacity = corruption_capacity(n)
    print(f"n = {n}; Santoro-Widmayer impossibility threshold: {block_size} faults/round")
    print(
        "paper's safety capacity per round: "
        f"A ~ n^2/4 = {float(capacity.ate_total_per_round):g}, "
        f"U ~ n^2/2 = {float(capacity.ute_total_per_round):g}"
    )
    print()

    blocks_only = BlockFaultAdversary(
        faults_per_round=block_size, value_domain=(0, 1), seed=7
    )
    run_case("block faults every round, no good rounds (termination not owed)", n, blocks_only)

    blocks_with_good_rounds = PeriodicGoodRoundAdversary(
        inner=BlockFaultAdversary(faults_per_round=block_size, value_domain=(0, 1), seed=7),
        period=5,
    )
    result = run_case(
        "block faults + one perfect round every 5 (P^A,live holds)", n, blocks_with_good_rounds
    )

    if result.all_satisfied:
        print(
            "=> consensus reached despite floor(n/2) corrupted transmissions per round: the\n"
            "   lower bound is circumvented because safety and liveness rely on different\n"
            "   communication predicates, and the faults are transient rather than permanent."
        )


if __name__ == "__main__":
    main()

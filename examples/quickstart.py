#!/usr/bin/env python3
"""Quickstart: solve consensus despite corrupted communication.

This example walks through the library's core loop in a few lines:

1. pick the ``A_{T,E}`` algorithm with Proposition 4's symmetric thresholds
   for a chosen corruption budget ``alpha``;
2. build a fault environment that corrupts up to ``alpha`` messages per
   process per round (so ``P_alpha`` holds) but provides a perfect round
   every few rounds (so ``P^{A,live}`` holds);
3. run the simulation and check the paper's correctness claims on the run.

Run it with::

    python examples/quickstart.py
"""

from repro import AteParameters, run_consensus
from repro.adversary import PeriodicGoodRoundAdversary, RandomCorruptionAdversary
from repro.algorithms import AteAlgorithm
from repro.core.machine import HOMachine
from repro.workloads import generators


def main() -> None:
    n = 9          # processes
    alpha = 2      # corrupted receptions tolerated per process per round (< n/4)

    # --- the algorithm: A_{T,E} with E = T = 2(n + 2*alpha)/3 --------------------
    params = AteParameters.symmetric(n=n, alpha=alpha)
    algorithm = AteAlgorithm(params)
    print(f"algorithm      : {algorithm.describe()}")
    print(f"thresholds     : T = E = {float(params.threshold):.2f}  (Theorem 1 satisfied: {params.satisfies_theorem_1})")

    # --- the environment: alpha-bounded corruption + sporadic perfect rounds ------
    adversary = PeriodicGoodRoundAdversary(
        inner=RandomCorruptionAdversary(alpha=alpha, value_domain=(0, 1), seed=42),
        period=4,
    )
    print(f"environment    : {adversary.describe()}")

    # --- initial values: the hardest near-even split -------------------------------
    initial_values = generators.split(n)
    print(f"initial values : {dict(initial_values)}")

    # --- run -----------------------------------------------------------------------
    result = run_consensus(algorithm, initial_values, adversary, max_rounds=60)
    print()
    print(result.summary())
    print(f"corruptions per round  : {result.collection.corruption_profile()}")
    print(f"decision rounds        : {result.outcome.decision_rounds}")

    # --- check the machine's correctness claim -------------------------------------
    machine = HOMachine(algorithm, algorithm.safety_predicate() & algorithm.liveness_predicate())
    verdict = result.verdict(machine)
    print()
    print(f"predicate held         : {verdict.predicate_held}")
    print(f"consensus satisfied    : {result.all_satisfied}")
    print(f"counterexample to paper: {verdict.counterexample}")


if __name__ == "__main__":
    main()

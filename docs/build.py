#!/usr/bin/env python3
"""Offline documentation builder and link checker (stdlib only).

CI builds the docs site without installing anything: this script parses
the ``nav:`` block of ``mkdocs.yml``, renders every page's markdown to
HTML under ``docs/_site/`` and **fails on warnings**:

* a nav entry whose page file is missing;
* a markdown page under ``docs/`` that is not reachable from the nav;
* a dead relative link (to a page, a repo file or a heading anchor) in
  any docs page or in ``README.md``'s links into ``docs/``;
* a ``docs/reference/cli.md`` that is out of sync with
  :func:`repro.cli.cli_reference_markdown`;
* a rule catalogue in ``docs/static-analysis.md`` that is out of sync
  with :func:`repro.devtools.lint.rule_catalogue_markdown`;
* a metric catalogue in ``docs/observability.md`` that is out of sync
  with :func:`repro.runner.metrics.metric_catalogue_markdown`.

Anyone with mkdocs installed can build the same nav with
``mkdocs build --strict``; this builder exists so the site (and its
warning gate) needs no network and no extra dependencies.

Usage::

    PYTHONPATH=src python docs/build.py --strict          # build + check
    PYTHONPATH=src python docs/build.py --write-cli-reference
    PYTHONPATH=src python docs/build.py --write-rule-catalogue
    PYTHONPATH=src python docs/build.py --write-metric-catalogue
"""

from __future__ import annotations

import argparse
import html
import re
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Tuple

DOCS_DIR = Path(__file__).resolve().parent
REPO_ROOT = DOCS_DIR.parent
MKDOCS_YML = REPO_ROOT / "mkdocs.yml"
DEFAULT_SITE_DIR = DOCS_DIR / "_site"

_NAV_ENTRY = re.compile(r"^\s+-\s*(.+?):\s*(\S+\.md)\s*$")
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_LINK = re.compile(r"\[([^\]]*)\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_FENCE = re.compile(r"^(```|~~~)")


def parse_nav() -> List[Tuple[str, str]]:
    """The ``nav:`` entries of mkdocs.yml as ``(title, relpath)`` pairs."""
    entries: List[Tuple[str, str]] = []
    in_nav = False
    for line in MKDOCS_YML.read_text(encoding="utf-8").splitlines():
        if line.startswith("nav:"):
            in_nav = True
            continue
        if in_nav:
            match = _NAV_ENTRY.match(line)
            if match:
                entries.append((match.group(1), match.group(2)))
            elif line.strip() and not line.startswith((" ", "-", "#")):
                break  # the next top-level key ends the nav block
    return entries


def slugify(text: str) -> str:
    """GitHub-style heading slug (what ``#anchor`` links resolve against)."""
    text = re.sub(r"`([^`]*)`", r"\1", text)  # inline code keeps its text
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links keep their text
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _markdown_lines(text: str) -> Iterator[Tuple[bool, str]]:
    """Lines of ``text`` flagged with whether they sit inside a code fence."""
    fenced = False
    for line in text.splitlines():
        if _FENCE.match(line.strip()):
            fenced = not fenced
            yield True, line
            continue
        yield fenced, line


def page_headings(text: str) -> List[str]:
    """Anchor slugs of every heading outside code fences."""
    slugs: List[str] = []
    for fenced, line in _markdown_lines(text):
        if fenced:
            continue
        match = _HEADING.match(line)
        if match:
            slugs.append(slugify(match.group(2)))
    return slugs


def page_links(text: str) -> List[str]:
    """Link targets outside code fences (unparsed, possibly external)."""
    targets: List[str] = []
    for fenced, line in _markdown_lines(text):
        if fenced:
            continue
        targets.extend(match.group(2) for match in _LINK.finditer(line))
    return targets


def check_links(
    page_path: Path, text: str, headings_by_page: Dict[Path, List[str]]
) -> List[str]:
    """Warnings for dead relative links/anchors in one markdown file."""
    warnings: List[str] = []
    own = page_path.resolve()
    for target in page_links(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue  # the builder is offline by design
        base, _, anchor = target.partition("#")
        resolved = own if not base else (page_path.parent / base).resolve()
        if base and not resolved.exists():
            warnings.append(f"{page_path}: dead link -> {target}")
            continue
        if anchor and resolved.suffix == ".md":
            known = headings_by_page.get(resolved)
            if known is None:
                known = (
                    page_headings(resolved.read_text(encoding="utf-8"))
                    if resolved.exists()
                    else []
                )
                headings_by_page[resolved] = known
            if anchor not in known:
                warnings.append(f"{page_path}: dead anchor -> {target}")
    return warnings


# ----------------------------------------------------------------------
# A deliberately small markdown -> HTML renderer (headings, fences,
# lists, tables, block quotes, paragraphs; inline code/bold/italic/links).
# ----------------------------------------------------------------------
def _inline(text: str) -> str:
    text = html.escape(text, quote=False)
    text = re.sub(r"`([^`]+)`", r"<code>\1</code>", text)
    text = re.sub(r"\*\*([^*]+)\*\*", r"<strong>\1</strong>", text)
    text = re.sub(r"(?<![\w*])\*([^*\s][^*]*)\*(?![\w*])", r"<em>\1</em>", text)
    def link(match: "re.Match[str]") -> str:
        label, target = match.group(1), match.group(2)
        if target.endswith(".md") or ".md#" in target:
            target = target.replace(".md", ".html", 1)
        return f'<a href="{target}">{label}</a>'

    text = _LINK.sub(link, text)
    return text


def render_page(text: str) -> str:
    """Render one markdown document to an HTML body."""
    out: List[str] = []
    lines = text.splitlines()
    index = 0
    paragraph: List[str] = []

    def flush_paragraph() -> None:
        if paragraph:
            out.append(f"<p>{_inline(' '.join(paragraph))}</p>")
            paragraph.clear()

    while index < len(lines):
        line = lines[index]
        stripped = line.strip()
        if _FENCE.match(stripped):
            flush_paragraph()
            fence_body: List[str] = []
            index += 1
            while index < len(lines) and not _FENCE.match(lines[index].strip()):
                fence_body.append(lines[index])
                index += 1
            out.append(f"<pre><code>{html.escape(chr(10).join(fence_body))}</code></pre>")
            index += 1
            continue
        heading = _HEADING.match(line)
        if heading:
            flush_paragraph()
            level = len(heading.group(1))
            title = heading.group(2)
            out.append(
                f'<h{level} id="{slugify(title)}">{_inline(title)}</h{level}>'
            )
            index += 1
            continue
        if stripped.startswith(("- ", "* ")) or re.match(r"^\d+\.\s", stripped):
            flush_paragraph()
            ordered = bool(re.match(r"^\d+\.\s", stripped))
            tag = "ol" if ordered else "ul"
            items: List[str] = []
            while index < len(lines):
                item = lines[index].strip()
                if item.startswith(("- ", "* ")):
                    items.append(item[2:])
                elif re.match(r"^\d+\.\s", item):
                    items.append(re.sub(r"^\d+\.\s", "", item))
                elif item and items and lines[index].startswith(("  ", "\t")):
                    items[-1] += " " + item  # hanging indent continues the item
                else:
                    break
                index += 1
            out.append(f"<{tag}>")
            out.extend(f"<li>{_inline(item)}</li>" for item in items)
            out.append(f"</{tag}>")
            continue
        if stripped.startswith("|"):
            flush_paragraph()
            rows: List[List[str]] = []
            while index < len(lines) and lines[index].strip().startswith("|"):
                cells = [cell.strip() for cell in lines[index].strip().strip("|").split("|")]
                if not all(re.fullmatch(r":?-{3,}:?", cell) for cell in cells):
                    rows.append(cells)
                index += 1
            out.append("<table>")
            for row_index, cells in enumerate(rows):
                tag = "th" if row_index == 0 else "td"
                out.append(
                    "<tr>" + "".join(f"<{tag}>{_inline(cell)}</{tag}>" for cell in cells) + "</tr>"
                )
            out.append("</table>")
            continue
        if stripped.startswith(">"):
            flush_paragraph()
            quoted: List[str] = []
            while index < len(lines) and lines[index].strip().startswith(">"):
                quoted.append(lines[index].strip().lstrip("> "))
                index += 1
            out.append(f"<blockquote><p>{_inline(' '.join(quoted))}</p></blockquote>")
            continue
        if not stripped:
            flush_paragraph()
            index += 1
            continue
        paragraph.append(stripped)
        index += 1
    flush_paragraph()
    return "\n".join(out)


_PAGE_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{title} — repro-ho</title>
<style>
body {{ font-family: system-ui, sans-serif; margin: 0; display: flex; }}
nav {{ min-width: 16rem; padding: 1.5rem; background: #f6f6f4; min-height: 100vh; }}
nav a {{ display: block; padding: .25rem 0; color: #1a4d8f; text-decoration: none; }}
main {{ max-width: 46rem; padding: 1.5rem 2.5rem; line-height: 1.55; }}
pre {{ background: #f2f1ec; padding: .75rem 1rem; overflow-x: auto; border-radius: 6px; }}
code {{ background: #f2f1ec; padding: .05rem .3rem; border-radius: 4px; font-size: .92em; }}
pre code {{ padding: 0; background: none; }}
table {{ border-collapse: collapse; }}
th, td {{ border: 1px solid #ccc; padding: .3rem .6rem; text-align: left; }}
blockquote {{ border-left: 4px solid #ccc; margin-left: 0; padding-left: 1rem; color: #444; }}
</style>
</head>
<body>
<nav>
<strong>repro-ho</strong>
{nav}
</nav>
<main>
{body}
</main>
</body>
</html>
"""


def _relative_href(from_page: str, to_page: str) -> str:
    depth = from_page.count("/")
    return "../" * depth + to_page.replace(".md", ".html")


def build_site(site_dir: Path, nav: List[Tuple[str, str]]) -> None:
    """Render every nav page into ``site_dir`` with a sidebar nav."""
    site_dir.mkdir(parents=True, exist_ok=True)
    for title, relpath in nav:
        source = DOCS_DIR / relpath
        if not source.exists():
            continue  # already reported as a warning
        nav_html = "\n".join(
            f'<a href="{_relative_href(relpath, other_path)}">{html.escape(other_title)}</a>'
            for other_title, other_path in nav
        )
        body = render_page(source.read_text(encoding="utf-8"))
        target = site_dir / relpath.replace(".md", ".html")
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            _PAGE_TEMPLATE.format(title=html.escape(title), nav=nav_html, body=body),
            encoding="utf-8",
        )


def _cli_reference() -> str:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.cli import cli_reference_markdown
    finally:
        sys.path.pop(0)
    return cli_reference_markdown()


_CATALOGUE_BEGIN = "<!-- RULE-CATALOGUE:BEGIN -->"
_CATALOGUE_END = "<!-- RULE-CATALOGUE:END -->"
STATIC_ANALYSIS_PAGE = DOCS_DIR / "static-analysis.md"


def _rule_catalogue() -> str:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.devtools.lint import rule_catalogue_markdown
    finally:
        sys.path.pop(0)
    return rule_catalogue_markdown()


_METRICS_BEGIN = "<!-- METRIC-CATALOGUE:BEGIN -->"
_METRICS_END = "<!-- METRIC-CATALOGUE:END -->"
OBSERVABILITY_PAGE = DOCS_DIR / "observability.md"


def _metric_catalogue() -> str:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.runner.metrics import metric_catalogue_markdown
    finally:
        sys.path.pop(0)
    return metric_catalogue_markdown()


def replace_metric_catalogue(text: str, generated: str) -> str:
    """``text`` with its METRIC-CATALOGUE region replaced by ``generated``.

    Raises ``ValueError`` when the page has no (or a malformed) marker
    pair — the region keeps the docs catalogue in lockstep with the
    :data:`repro.runner.metrics.FLEET_METRICS` specs.
    """
    begin = text.find(_METRICS_BEGIN)
    end = text.find(_METRICS_END)
    if begin == -1 or end == -1 or end < begin:
        raise ValueError(
            f"{OBSERVABILITY_PAGE}: missing or malformed "
            f"{_METRICS_BEGIN} / {_METRICS_END} markers"
        )
    head = text[: begin + len(_METRICS_BEGIN)]
    tail = text[end:]
    return f"{head}\n\n{generated.rstrip()}\n\n{tail}"


def replace_rule_catalogue(text: str, generated: str) -> str:
    """``text`` with its RULE-CATALOGUE region replaced by ``generated``.

    Raises ``ValueError`` when the page has no (or a malformed) marker
    pair — the region is the contract that keeps the docs catalogue in
    lockstep with the registered rules' docstrings.
    """
    begin = text.find(_CATALOGUE_BEGIN)
    end = text.find(_CATALOGUE_END)
    if begin == -1 or end == -1 or end < begin:
        raise ValueError(
            f"{STATIC_ANALYSIS_PAGE}: missing or malformed "
            f"{_CATALOGUE_BEGIN} / {_CATALOGUE_END} markers"
        )
    head = text[: begin + len(_CATALOGUE_BEGIN)]
    tail = text[end:]
    return f"{head}\n\n{generated.rstrip()}\n\n{tail}"


def collect_warnings() -> List[str]:
    """Every docs-site warning: nav gaps, dead links, stale CLI reference."""
    warnings: List[str] = []
    nav = parse_nav()
    if not nav:
        return [f"{MKDOCS_YML}: no parseable nav entries"]
    nav_paths = {relpath for _, relpath in nav}
    for _, relpath in nav:
        if not (DOCS_DIR / relpath).exists():
            warnings.append(f"mkdocs.yml: nav entry {relpath!r} has no file")
    for page in sorted(DOCS_DIR.rglob("*.md")):
        relpath = page.relative_to(DOCS_DIR).as_posix()
        if relpath.startswith("_site/"):
            continue
        if relpath not in nav_paths:
            warnings.append(f"docs/{relpath}: not reachable from the mkdocs.yml nav")

    headings_cache: Dict[Path, List[str]] = {}
    for _, relpath in nav:
        page = DOCS_DIR / relpath
        if page.exists():
            warnings.extend(
                check_links(page, page.read_text(encoding="utf-8"), headings_cache)
            )
    readme = REPO_ROOT / "README.md"
    warnings.extend(
        check_links(readme, readme.read_text(encoding="utf-8"), headings_cache)
    )

    reference = DOCS_DIR / "reference" / "cli.md"
    if reference.exists() and reference.read_text(encoding="utf-8") != _cli_reference():
        warnings.append(
            "docs/reference/cli.md is stale; regenerate with "
            "'PYTHONPATH=src python docs/build.py --write-cli-reference'"
        )
    if STATIC_ANALYSIS_PAGE.exists():
        text = STATIC_ANALYSIS_PAGE.read_text(encoding="utf-8")
        try:
            expected = replace_rule_catalogue(text, _rule_catalogue())
        except ValueError as exc:
            warnings.append(str(exc))
        else:
            if text != expected:
                warnings.append(
                    "docs/static-analysis.md rule catalogue is stale; regenerate "
                    "with 'PYTHONPATH=src python docs/build.py --write-rule-catalogue'"
                )
    if OBSERVABILITY_PAGE.exists():
        text = OBSERVABILITY_PAGE.read_text(encoding="utf-8")
        try:
            expected = replace_metric_catalogue(text, _metric_catalogue())
        except ValueError as exc:
            warnings.append(str(exc))
        else:
            if text != expected:
                warnings.append(
                    "docs/observability.md metric catalogue is stale; regenerate "
                    "with 'PYTHONPATH=src python docs/build.py --write-metric-catalogue'"
                )
    return warnings


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--strict", action="store_true", help="exit non-zero on any warning"
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_SITE_DIR, help="site output directory"
    )
    parser.add_argument(
        "--write-cli-reference",
        action="store_true",
        help="regenerate docs/reference/cli.md from the argparse definitions and exit",
    )
    parser.add_argument(
        "--write-rule-catalogue",
        action="store_true",
        help="regenerate the rule catalogue region of docs/static-analysis.md "
        "from the registered lint rules' docstrings and exit",
    )
    parser.add_argument(
        "--write-metric-catalogue",
        action="store_true",
        help="regenerate the metric catalogue region of docs/observability.md "
        "from the fleet metric specs and exit",
    )
    args = parser.parse_args(argv)

    if args.write_cli_reference:
        target = DOCS_DIR / "reference" / "cli.md"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(_cli_reference(), encoding="utf-8")
        print(f"wrote {target}")
        return 0

    if args.write_rule_catalogue:
        text = STATIC_ANALYSIS_PAGE.read_text(encoding="utf-8")
        STATIC_ANALYSIS_PAGE.write_text(
            replace_rule_catalogue(text, _rule_catalogue()), encoding="utf-8"
        )
        print(f"wrote {STATIC_ANALYSIS_PAGE}")
        return 0

    if args.write_metric_catalogue:
        text = OBSERVABILITY_PAGE.read_text(encoding="utf-8")
        OBSERVABILITY_PAGE.write_text(
            replace_metric_catalogue(text, _metric_catalogue()), encoding="utf-8"
        )
        print(f"wrote {OBSERVABILITY_PAGE}")
        return 0

    warnings = collect_warnings()
    build_site(args.out, parse_nav())
    for warning in warnings:
        print(f"WARNING: {warning}", file=sys.stderr)
    print(f"built {len(parse_nav())} pages into {args.out} ({len(warnings)} warning(s))")
    return 1 if (warnings and args.strict) else 0


if __name__ == "__main__":
    sys.exit(main())

"""Ablation benchmark — the decision-guard structure of ``A_{T,E}``.

DESIGN.md documents one implementation decision taken while transcribing
Algorithm 1: the decision test (line 9) is evaluated *independently* of the
``|HO| > T`` update guard (line 7), because the termination proof
(Proposition 3) only relies on receiving more than ``E`` equal values.  This
ablation quantifies the difference between the two readings:

* for the symmetric thresholds (``E = T``) the two variants behave
  identically — decisions require more than ``E = T`` receptions anyway;
* for parameterisations with ``T > E`` the nested reading delays or prevents
  decisions in exactly the situations the liveness predicate's last conjunct
  (``|SHO| > E`` but not necessarily ``|HO| > T``) describes.
"""

from repro.adversary import BoundedOmissionAdversary, PeriodicGoodRoundAdversary
from repro.algorithms import AteAlgorithm
from repro.core.parameters import AteParameters
from repro.simulation.engine import run_consensus
from repro.verification.properties import aggregate
from repro.workloads import generators


def _run_variant(nested: bool, params: AteParameters, n: int, runs: int, max_omissions: int):
    results = []
    for seed in range(runs):
        adversary = PeriodicGoodRoundAdversary(
            inner=BoundedOmissionAdversary(
                max_omissions_per_receiver=max_omissions, drop_probability=0.9, seed=seed
            ),
            period=5,
        )
        results.append(
            run_consensus(
                AteAlgorithm(params, nested_decision_guard=nested),
                generators.split(n),
                adversary,
                max_rounds=60,
            )
        )
    return aggregate(results)


def test_bench_ablation_symmetric_thresholds_identical(benchmark):
    """With E = T (Proposition 4 / OneThirdRule shape) the ablation is a no-op."""
    n = 9
    params = AteParameters.symmetric(n=n, alpha=1)

    def run_both():
        return (
            _run_variant(False, params, n, runs=6, max_omissions=1),
            _run_variant(True, params, n, runs=6, max_omissions=1),
        )

    independent, nested = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert independent.termination_rate == nested.termination_rate == 1.0
    assert independent.mean_decision_round == nested.mean_decision_round
    assert independent.all_safe and nested.all_safe


def test_bench_ablation_t_greater_than_e(benchmark):
    """With T > E the independent guard decides where the nested one stalls.

    The environment keeps ``|HO| <= T`` for most rounds (heavy bounded
    omissions) while still delivering more than ``E`` equal values, which is
    precisely the situation Proposition 3's argument needs the independent
    reading for.
    """
    n = 10
    # E = 6, T = 2(n + 2a - E) = 8 > E; both variants are safe, only liveness differs.
    params = AteParameters(n=n, alpha=0, threshold=8, enough=6)

    def run_both():
        return (
            _run_variant(False, params, n, runs=6, max_omissions=3),
            _run_variant(True, params, n, runs=6, max_omissions=3),
        )

    independent, nested = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert independent.all_safe and nested.all_safe
    assert independent.termination_rate >= nested.termination_rate
    if independent.mean_decision_round is not None and nested.mean_decision_round is not None:
        assert independent.mean_decision_round <= nested.mean_decision_round

"""Benchmark E7 — Section 4.3 resilience boundary of ``U_{T,E,alpha}`` (alpha < n/2)."""

from benchmarks.conftest import run_once
from repro.analysis.feasibility import ate_max_alpha, ute_max_alpha
from repro.experiments import ute_resilience_sweep


def test_bench_resilience_ute(benchmark, record_report):
    n = 9
    report = run_once(benchmark, ute_resilience_sweep, n=n, runs=12, seed=8, max_rounds=80)
    record_report(report)

    feasible_rows = [row for row in report.rows if row["feasible"]]
    infeasible_rows = [row for row in report.rows if not row["feasible"]]
    assert feasible_rows and infeasible_rows

    # Boundary at n/2: largest feasible integer alpha = 4 for n=9, versus 2 for A.
    assert max(row["alpha"] for row in feasible_rows) == ute_max_alpha(n) == 4
    assert ute_max_alpha(n) == 2 * ate_max_alpha(n)
    assert min(row["alpha"] for row in infeasible_rows) == 5

    for row in feasible_rows:
        assert row["agreement_rate"] == 1.0
        assert row["integrity_rate"] == 1.0
        assert row["agreement_rate_under_attack"] == 1.0

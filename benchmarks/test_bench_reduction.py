"""Benchmark: IPC volume and wall-clock of the in-worker reduction path.

``run_simulations`` ships the whole :class:`SimulationResult` (process
objects plus the n² × rounds heard-of collection) back through pickle
for every parallel run; ``run_reduced`` applies the reducer inside the
worker and ships only a compact :class:`ReducedRecord`.  This module

* measures the pickled payload per run for both paths at n ∈ {20, 50}
  (a predicate-taxonomy style campaign: corruption adversary, alpha-safe
  predicate evaluated per run) and asserts the reduction cuts the bytes
  shipped from workers by at least 5×, and
* times both paths through a ``jobs=4`` worker pool.

Measured payloads are recorded to ``benchmarks/results/reduction.json``
(see also ``benchmarks/RESULTS_reduction.md`` for a captured run).
"""

from __future__ import annotations

import json
import pickle

import pytest

from benchmarks.conftest import RESULTS_DIR
from repro.adversary import PeriodicGoodRoundAdversary, RandomCorruptionAdversary
from repro.algorithms import AteAlgorithm
from repro.core.predicates import AlphaSafePredicate
from repro.runner import CampaignRunner, PredicateReducer, RunTask
from repro.runner.executor import _execute_task, _reduced_worker
from repro.workloads import generators

MAX_ROUNDS = 20


def make_tasks(n: int, count: int = 1):
    return [
        RunTask(
            algorithm=AteAlgorithm.symmetric(n=n, alpha=1),
            adversary=PeriodicGoodRoundAdversary(
                inner=RandomCorruptionAdversary(
                    alpha=1, value_domain=(0, 1), seed=index
                ),
                period=4,
            ),
            initial_values=generators.split(n),
            max_rounds=MAX_ROUNDS,
            run_index=index,
        )
        for index in range(count)
    ]


def taxonomy_reducer() -> PredicateReducer:
    return PredicateReducer({"safe": AlphaSafePredicate(1)})


def payload_sizes(n: int):
    """Pickled bytes shipped from a worker: full result vs reduced record."""
    full = pickle.dumps(_execute_task(make_tasks(n)[0], None))
    _, reduced = _reduced_worker((0, make_tasks(n)[0], None, taxonomy_reducer(), None, False))
    return len(full), len(pickle.dumps(reduced))


@pytest.mark.parametrize("n", [20, 50])
def test_bench_reduced_payload_bytes(n):
    """The reduced path must ship ≥ 5× fewer bytes per run from workers."""
    full_bytes, reduced_bytes = payload_sizes(n)
    ratio = full_bytes / reduced_bytes
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out = RESULTS_DIR / "reduction.json"
    recorded = json.loads(out.read_text()) if out.exists() else {}
    recorded[f"n={n}"] = {
        "full_result_bytes_per_run": full_bytes,
        "reduced_record_bytes_per_run": reduced_bytes,
        "reduction_factor": round(ratio, 1),
        "max_rounds": MAX_ROUNDS,
    }
    out.write_text(json.dumps(recorded, indent=2))
    print(
        f"\nn={n}: full={full_bytes}B reduced={reduced_bytes}B "
        f"({ratio:.0f}x smaller)"
    )
    assert ratio >= 5.0


@pytest.mark.parametrize("n", [20, 50])
def test_bench_reduced_campaign_jobs4(benchmark, n):
    """Wall-clock of a 8-run reduced campaign across 4 worker processes."""
    with CampaignRunner(jobs=4) as runner:
        runner.run_reduced(make_tasks(n, count=1), taxonomy_reducer())  # warm the pool

        def reduced_campaign():
            return runner.run_reduced(make_tasks(n, count=8), taxonomy_reducer())

        records = benchmark.pedantic(reduced_campaign, rounds=1, iterations=1)
    assert len(records) == 8 and all(record.ok for record in records)


@pytest.mark.parametrize("n", [20, 50])
def test_bench_full_result_campaign_jobs4(benchmark, n):
    """Baseline: the same campaign shipping full results (the old path)."""
    with CampaignRunner(jobs=4) as runner:
        runner.run_simulations(make_tasks(n, count=1))  # warm the pool

        def full_campaign():
            return runner.run_simulations(make_tasks(n, count=8))

        results = benchmark.pedantic(full_campaign, rounds=1, iterations=1)
    assert len(results) == 8

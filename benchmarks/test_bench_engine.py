"""Benchmark E13 — simulator throughput (the reproduction's own substrate).

Unlike E1-E12 these are conventional micro/meso benchmarks: rounds-per-second
of the lockstep engine as ``n`` grows, the per-round cost of the corruption
adversary, and the overhead of the asyncio engine relative to the lockstep
engine for the same workload.
"""

import pytest

from repro.adversary import RandomCorruptionAdversary, ReliableAdversary
from repro.algorithms import AteAlgorithm, UteAlgorithm
from repro.simulation.engine import SimulationConfig, run_algorithm
from repro.simulation.async_engine import run_consensus_async
from repro.workloads import generators


def _run_fixed_rounds(algorithm, n, adversary, rounds):
    config = SimulationConfig(max_rounds=rounds, min_rounds=rounds, record_states=False)
    return run_algorithm(algorithm, generators.split(n), adversary, config=config)


@pytest.mark.parametrize("n", [8, 16, 32, 64])
def test_bench_lockstep_engine_scaling(benchmark, n):
    """Lockstep engine: 20 rounds of A_{T,E} under reliable delivery, varying n."""
    result = benchmark(
        lambda: _run_fixed_rounds(AteAlgorithm.symmetric(n=n, alpha=0), n, ReliableAdversary(), 20)
    )
    assert result.rounds_executed == 20


@pytest.mark.parametrize("alpha", [0, 2, 4])
def test_bench_corruption_adversary_overhead(benchmark, alpha):
    """Per-round cost of the alpha-bounded corruption adversary at n = 24."""
    n = 24
    result = benchmark(
        lambda: _run_fixed_rounds(
            AteAlgorithm.symmetric(n=n, alpha=alpha),
            n,
            RandomCorruptionAdversary(alpha=alpha, value_domain=(0, 1), seed=1),
            10,
        )
    )
    assert result.rounds_executed == 10


def test_bench_ute_engine(benchmark):
    """Phase-structured algorithm (U) under corruption at n = 16."""
    n = 16
    result = benchmark(
        lambda: _run_fixed_rounds(
            UteAlgorithm.minimal(n=n, alpha=2),
            n,
            RandomCorruptionAdversary(alpha=2, value_domain=(0, 1), seed=2),
            10,
        )
    )
    assert result.rounds_executed == 10


def test_bench_async_engine_overhead(benchmark):
    """Asyncio engine for the same consensus instance the lockstep engine runs in E13a."""
    n = 8
    result = benchmark.pedantic(
        lambda: run_consensus_async(
            AteAlgorithm.symmetric(n=n, alpha=0),
            generators.split(n),
            ReliableAdversary(),
            max_rounds=20,
        ),
        rounds=3,
        iterations=1,
    )
    assert result.all_satisfied

"""Benchmark: the vectorised batch backend vs per-run fast execution.

Times whole ``A_{T,E}`` seed sweeps through ``run_algorithm_batch``
(one vectorised kernel step per round across every live run) against
the same sweeps dispatched run by run on the ``fast`` backend:

* ``reliable-fixed-horizon`` — the acceptance cell: 1000 seeds at
  n = 40 on a fixed 30-round horizon, where kernel arithmetic dominates
  and the batch backend must be **≥ 5×** faster;
* ``random-omission`` / ``random-corruption`` — fault-injecting cells
  where plan decoding bounds the win; with the batch planners
  (array-at-a-time fault schedules over the RNG bridge) these must be
  **≥ 2.5×** faster, not merely break even.

Every sweep is first checked row-identical between the backends (the
batch engine is semantically invisible), then timed.  Results are
recorded to ``benchmarks/results/engine_batch.json``.
"""

from __future__ import annotations

import json
import time

import pytest

pytest.importorskip("numpy")

from benchmarks.conftest import RESULTS_DIR, peak_rss_mb
from repro.adversary import (
    RandomCorruptionAdversary,
    RandomOmissionAdversary,
    ReliableAdversary,
)
from repro.algorithms import AteAlgorithm
from repro.runner.records import RunRecord
from repro.simulation import SimulationConfig, run_simulation
from repro.simulation.batch_engine import SimulationRequest, run_algorithm_batch
from repro.workloads import generators

N = 40
MAX_ROUNDS = 30

#: name -> (runs, min_rounds, adversary factory, speedup floor)
CELLS = {
    "reliable-fixed-horizon": (1000, MAX_ROUNDS, lambda seed: ReliableAdversary(), 5.0),
    "random-omission": (
        300, MAX_ROUNDS,
        lambda seed: RandomOmissionAdversary(0.15, seed=seed), 2.5,
    ),
    "random-corruption": (
        300, MAX_ROUNDS,
        lambda seed: RandomCorruptionAdversary(alpha=1, value_domain=(0, 1), seed=seed),
        2.5,
    ),
}


def _requests(runs, min_rounds, adversary_factory):
    config = SimulationConfig(
        max_rounds=MAX_ROUNDS, min_rounds=min_rounds, record_states=False
    )
    return [
        SimulationRequest(
            algorithm=AteAlgorithm.symmetric(n=N, alpha=1),
            initial_values=generators.uniform_random(N, seed=seed),
            adversary=adversary_factory(seed),
            config=config,
        )
        for seed in range(runs)
    ]


def _rows(results):
    return [
        RunRecord.from_result(result, run_index=index).as_dict()
        for index, result in enumerate(results)
    ]


def test_bench_batch_engine_speedup():
    """Batch backend ≥ 5× over fast for the fixed-horizon 1000-seed cell."""
    measurements = {}
    for name, (runs, min_rounds, factory, floor) in CELLS.items():
        started = time.perf_counter()
        fast_results = [
            run_simulation(
                request.algorithm, request.initial_values, request.adversary,
                request.config, backend="fast",
            )
            for request in _requests(runs, min_rounds, factory)
        ]
        fast_seconds = time.perf_counter() - started

        started = time.perf_counter()
        batch_results = run_algorithm_batch(_requests(runs, min_rounds, factory))
        batch_seconds = time.perf_counter() - started
        peak_mb = peak_rss_mb()

        # Semantic invisibility first: identical rows, then the timing.
        assert _rows(fast_results) == _rows(batch_results), f"{name}: backends disagree"
        assert all(
            result.metadata.get("engine") == "batch" for result in batch_results
        ), f"{name}: batch engine did not engage"
        measurements[name] = {
            "runs": runs,
            "fast_seconds": round(fast_seconds, 4),
            "batch_seconds": round(batch_seconds, 4),
            "speedup": round(fast_seconds / batch_seconds, 2),
            "floor": floor,
            # Lifetime high-water mark up to this cell (ru_maxrss never
            # decreases), so regressions show as jumps in the first cell
            # that allocates more than everything before it.
            "peak_rss_mb": round(peak_mb, 1),
        }

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out = RESULTS_DIR / "engine_batch.json"
    payload = {
        "benchmark": "A_TE seed sweeps, per-run fast vs vectorised batch backend",
        "n": N,
        "max_rounds": MAX_ROUNDS,
        "record_states": False,
        "cells": measurements,
    }
    out.write_text(json.dumps(payload, indent=2))
    for name, row in measurements.items():
        print(
            f"\n{name}: fast={row['fast_seconds']}s "
            f"batch={row['batch_seconds']}s ({row['speedup']}x)"
        )

    for name, row in measurements.items():
        assert row["speedup"] >= row["floor"], (
            f"{name}: {row['speedup']}x below the {row['floor']}x floor"
        )

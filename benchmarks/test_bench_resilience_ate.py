"""Benchmark E6 — Section 3.3 resilience boundary of ``A_{T,E}`` (alpha < n/4).

Sweeps alpha across the n/4 boundary: analytically (do integer thresholds
exist?) and by simulation (split-vote attacks with exactly the allowed
per-receiver budget plus liveness-structured corruption runs).
"""

from benchmarks.conftest import run_once
from repro.analysis.feasibility import ate_max_alpha
from repro.experiments import ate_resilience_sweep


def test_bench_resilience_ate(benchmark, record_report):
    n = 12
    report = run_once(benchmark, ate_resilience_sweep, n=n, runs=12, seed=7, max_rounds=60)
    record_report(report)

    feasible_rows = [row for row in report.rows if row["feasible"]]
    infeasible_rows = [row for row in report.rows if not row["feasible"]]
    assert feasible_rows and infeasible_rows

    # The boundary sits exactly at n/4 (largest feasible integer alpha = 2 for n=12).
    assert max(row["alpha"] for row in feasible_rows) == ate_max_alpha(n) == 2
    assert min(row["alpha"] for row in infeasible_rows) == 3

    for row in feasible_rows:
        assert row["integer_threshold_pairs"] > 0
        assert row["agreement_rate"] == 1.0
        assert row["integrity_rate"] == 1.0
        assert row["agreement_rate_under_attack"] == 1.0
        assert row["termination_rate_live_env"] == 1.0
    for row in infeasible_rows:
        assert row["integer_threshold_pairs"] == 0

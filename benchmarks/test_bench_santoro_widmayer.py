"""Benchmark E8 — circumventing the Santoro–Widmayer bound (Section 5.1).

Regenerates the block-fault comparison: ``⌊n/2⌋`` corrupted transmissions per
round arranged as the outgoing links of a (rotating) victim never break
safety of either algorithm; termination returns as soon as sporadic good
rounds occur; and the per-round corruption absorbed in the heavy-corruption
configuration exceeds the ``⌊n/2⌋`` impossibility threshold by a wide margin
(the ~n²/4 capacity claim).
"""

from benchmarks.conftest import run_once
from repro.experiments import santoro_widmayer_circumvention


def test_bench_santoro_widmayer(benchmark, record_report):
    n = 10
    report = run_once(
        benchmark, santoro_widmayer_circumvention, n=n, runs=12, seed=9, max_rounds=60
    )
    record_report(report)

    # Safety in every configuration, including blocks with no good rounds.
    assert all(row["agreement_rate"] == 1.0 for row in report.rows)
    assert all(row["integrity_rate"] == 1.0 for row in report.rows)

    rows = {row["configuration"]: row for row in report.rows}
    with_good = rows["A_(T,E), blocks + sporadic good rounds"]
    heavy = rows["A_(T,E), heavy rotating corruption (alpha per receiver each round)"]

    assert with_good["termination_rate"] == 1.0
    # The heavy configuration absorbs strictly more corrupted receptions per
    # round than the floor(n/2) = 5 at which [18] proves impossibility.
    assert heavy["max_corrupted_receptions_in_a_round"] > heavy["sw_bound_per_round"]
    assert heavy["termination_rate"] == 1.0

"""Benchmark: massive-n sweeps on the packed batch tier.

Charts ``A_{T,E}`` decision latency and runtime at n ∈ {256, 512, 1024,
2048} under random omission — far beyond the paper's figures — and
pins the feasibility claim of the packed-bitset tier: the n = 1024
sweep must complete under a 2 GB ``REPRO_BATCH_MEMORY_BUDGET`` at
**≥ 3×** the ``fast`` backend's wall-clock.  The dense representation
would need ~4 GB of reception matrix per 1000 runs at this size; the
packed tier carries ~1/32 of that.

The ``fast`` backend is timed on a per-n probe subset (per-run planning
is quadratic in n, so timing every run per tier would dominate the
harness) and extrapolated linearly — the probe size is recorded in the
artefact.  Probe rows are checked byte-identical between the backends
before any timing is trusted.  Results go to
``benchmarks/results/massive_n.json`` with wall-clock, peak RSS,
chunk counts and first/last decision-round latency per n.
"""

from __future__ import annotations

import json
import os
import time

import pytest

pytest.importorskip("numpy")

from benchmarks.conftest import RESULTS_DIR, peak_rss_mb
from repro.adversary import RandomOmissionAdversary
from repro.algorithms import AteAlgorithm
from repro.runner.records import RunRecord
from repro.simulation import SimulationConfig, run_simulation
from repro.simulation.batch_engine import SimulationRequest, run_algorithm_batch
from repro.workloads import generators

MAX_ROUNDS = 10
P_DROP = 0.1

#: n -> (batch runs, fast probe runs, memory budget, speedup floor)
SWEEPS = {
    256: (24, 6, None, None),
    512: (16, 4, None, None),
    1024: (12, 3, "2g", 3.0),
    2048: (6, 2, None, None),
}


def _requests(n, runs):
    config = SimulationConfig(max_rounds=MAX_ROUNDS, min_rounds=1, record_states=False)
    return [
        SimulationRequest(
            algorithm=AteAlgorithm.symmetric(n=n, alpha=1),
            initial_values=generators.uniform_random(n, seed=seed),
            adversary=RandomOmissionAdversary(P_DROP, seed=seed),
            config=config,
        )
        for seed in range(runs)
    ]


def _rows(results):
    return [
        RunRecord.from_result(result, run_index=index).as_dict()
        for index, result in enumerate(results)
    ]


def _latency(records):
    firsts = [r["first_decision_round"] for r in records if r["first_decision_round"]]
    lasts = [r["last_decision_round"] for r in records if r["last_decision_round"]]
    return {
        "mean_first_decision_round": round(sum(firsts) / len(firsts), 2) if firsts else None,
        "max_last_decision_round": max(lasts) if lasts else None,
        "decided_runs": len(lasts),
    }


def test_bench_massive_n_packed_sweeps():
    """Packed tier ≥ 3× over fast at n = 1024 under a 2 GB budget."""
    measurements = {}
    for n, (runs, fast_runs, budget, floor) in SWEEPS.items():
        started = time.perf_counter()
        fast_results = [
            run_simulation(
                request.algorithm, request.initial_values, request.adversary,
                request.config, backend="fast",
            )
            for request in _requests(n, fast_runs)
        ]
        fast_probe_seconds = time.perf_counter() - started
        fast_seconds_est = fast_probe_seconds * (runs / fast_runs)

        previous = os.environ.get("REPRO_BATCH_MEMORY_BUDGET")
        if budget is not None:
            os.environ["REPRO_BATCH_MEMORY_BUDGET"] = budget
        try:
            started = time.perf_counter()
            batch_results = run_algorithm_batch(_requests(n, runs))
            batch_seconds = time.perf_counter() - started
        finally:
            if budget is not None:
                if previous is None:
                    del os.environ["REPRO_BATCH_MEMORY_BUDGET"]
                else:  # pragma: no cover - env hygiene
                    os.environ["REPRO_BATCH_MEMORY_BUDGET"] = previous

        # Semantic invisibility on the probe subset, then the timing.
        assert _rows(fast_results) == _rows(batch_results[:fast_runs]), (
            f"n={n}: backends disagree"
        )
        assert all(
            result.metadata.get("engine") == "batch" for result in batch_results
        ), f"n={n}: batch engine did not engage"

        batch_rows = _rows(batch_results)
        measurements[str(n)] = {
            "runs": runs,
            "fast_runs_measured": fast_runs,
            "fast_probe_seconds": round(fast_probe_seconds, 4),
            "fast_seconds_estimated": round(fast_seconds_est, 4),
            "batch_seconds": round(batch_seconds, 4),
            "speedup_vs_fast": round(fast_seconds_est / batch_seconds, 2),
            "floor": floor,
            "memory_budget": budget,
            "batch_chunks": sum(
                result.metadata.get("batch_chunks", 0) for result in batch_results
            ),
            "peak_rss_mb": round(peak_rss_mb(), 1),
            **_latency(batch_rows),
        }

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out = RESULTS_DIR / "massive_n.json"
    payload = {
        "benchmark": "A_TE massive-n sweeps, packed batch tier vs fast backend",
        "adversary": f"random-omission p={P_DROP}",
        "max_rounds": MAX_ROUNDS,
        "record_states": False,
        "sweeps": measurements,
    }
    out.write_text(json.dumps(payload, indent=2))
    for n, row in measurements.items():
        print(
            f"\nn={n}: fast~{row['fast_seconds_estimated']}s "
            f"batch={row['batch_seconds']}s ({row['speedup_vs_fast']}x) "
            f"peak_rss={row['peak_rss_mb']}MiB chunks={row['batch_chunks']}"
        )

    for n, row in measurements.items():
        if row["floor"] is not None:
            assert row["speedup_vs_fast"] >= row["floor"], (
                f"n={n}: {row['speedup_vs_fast']}x below the {row['floor']}x floor"
            )

"""Benchmark: the bitmask fast backend vs the reference lockstep engine.

Times an ``A_{T,E}`` sweep (``record_states=False``, random workloads,
fresh per-run seeds) on both engine backends across three adversary
environments:

* ``reliable`` — fault-free, native mask plan (the pure engine-overhead
  comparison); the acceptance bar: the fast backend must be **≥ 5×**
  faster at n ≥ 30;
* ``random-omission`` — native mask planner replaying the adversary's
  RNG stream;
* ``random-corruption`` — native planner for the paper's workhorse
  value-fault environment.

Every backend pair is first checked row-identical (the fast backend is
semantically invisible), then timed.  Measured speedups are recorded to
``benchmarks/results/engine_fast.json`` — the first entry of the
engine-performance trajectory.
"""

from __future__ import annotations

import json
import time

from benchmarks.conftest import RESULTS_DIR
from repro.adversary import (
    RandomCorruptionAdversary,
    RandomOmissionAdversary,
    ReliableAdversary,
)
from repro.algorithms import AteAlgorithm
from repro.runner.records import RunRecord
from repro.simulation import SimulationConfig, run_simulation
from repro.workloads import generators

N = 40
RUNS = 30
MAX_ROUNDS = 30

ENVIRONMENTS = {
    "reliable": lambda seed: ReliableAdversary(),
    "random-omission": lambda seed: RandomOmissionAdversary(0.15, seed=seed),
    "random-corruption": lambda seed: RandomCorruptionAdversary(
        alpha=1, value_domain=(0, 1), seed=seed
    ),
}


def _sweep(backend: str, adversary_factory):
    """One A_{T,E} sweep; returns (elapsed_seconds, per-run records)."""
    config = SimulationConfig(max_rounds=MAX_ROUNDS, record_states=False)
    records = []
    started = time.perf_counter()
    for index in range(RUNS):
        result = run_simulation(
            algorithm=AteAlgorithm.symmetric(n=N, alpha=1),
            initial_values=generators.uniform_random(N, seed=index),
            adversary=adversary_factory(index),
            config=config,
            backend=backend,
        )
        records.append(RunRecord.from_result(result, run_index=index).as_dict())
    return time.perf_counter() - started, records


def test_bench_fast_engine_speedup():
    """Fast backend ≥ 5× over reference for the fault-free A_{T,E} sweep."""
    measurements = {}
    for name, factory in ENVIRONMENTS.items():
        reference_seconds, reference_rows = _sweep("reference", factory)
        fast_seconds, fast_rows = _sweep("fast", factory)
        # Semantic invisibility first: identical rows, then the timing.
        assert reference_rows == fast_rows, f"{name}: backends disagree"
        measurements[name] = {
            "reference_seconds": round(reference_seconds, 4),
            "fast_seconds": round(fast_seconds, 4),
            "speedup": round(reference_seconds / fast_seconds, 2),
        }

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out = RESULTS_DIR / "engine_fast.json"
    payload = {
        "benchmark": "A_TE sweep, reference vs fast backend",
        "n": N,
        "runs": RUNS,
        "max_rounds": MAX_ROUNDS,
        "record_states": False,
        "environments": measurements,
    }
    out.write_text(json.dumps(payload, indent=2))
    for name, row in measurements.items():
        print(
            f"\n{name}: reference={row['reference_seconds']}s "
            f"fast={row['fast_seconds']}s ({row['speedup']}x)"
        )

    # The acceptance bar applies to the engine-overhead comparison; the
    # fault-injecting environments must at least never be slower.
    assert measurements["reliable"]["speedup"] >= 5.0
    assert measurements["random-omission"]["speedup"] >= 1.5
    assert measurements["random-corruption"]["speedup"] >= 1.5

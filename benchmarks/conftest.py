"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures by calling
the corresponding experiment driver under ``pytest-benchmark`` (a single
measured iteration — the drivers are full simulation sweeps, not
micro-benchmarks), printing the resulting table, and writing it as JSON
to ``benchmarks/results/`` so EXPERIMENTS.md can reference the artefacts.
"""

from __future__ import annotations

import resource
import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def peak_rss_mb() -> float:
    """The process's lifetime peak resident set size, in MiB.

    ``ru_maxrss`` is kibibytes on Linux and bytes on macOS; either way
    it is a high-water mark, so benchmarks that want a per-phase figure
    should read it immediately after the phase of interest (the value
    never decreases).
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        peak //= 1024
    return peak / 1024.0


def pytest_collection_modifyitems(items):
    """Mark everything under benchmarks/ so CI can (de)select it by marker.

    The hook receives the whole session's items, so filter by location —
    only the files next to this conftest get the marker.
    """
    here = Path(__file__).parent
    for item in items:
        if Path(str(item.fspath)).parent == here:
            item.add_marker(pytest.mark.bench)


@pytest.fixture
def record_report(capsys):
    """Return a callable that prints and persists an ExperimentReport."""

    def _record(report):
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        report.to_json(RESULTS_DIR / f"{report.experiment_id}.json")
        with capsys.disabled():
            print()
            print(report.render())
        return report

    return _record


def run_once(benchmark, func, **kwargs):
    """Run an experiment driver exactly once under the benchmark timer."""
    return benchmark.pedantic(lambda: func(**kwargs), rounds=1, iterations=1)

"""Benchmarks for the campaign runner: executor overhead, fast path, cache.

Measures (a) the runner's dispatch overhead relative to calling the
engine in a plain loop, (b) the engine fast path (``record_states=False``
plus trimmed metrics) against the snapshot-recording slow path, and
(c) how much a fully warmed result cache shortens a campaign re-run.
Parallel speedups are deliberately not benchmarked here — CI runners
have unpredictable core counts; serial equivalence is what the tests
pin down.
"""

import pytest

from repro.adversary import RandomCorruptionAdversary
from repro.algorithms import AteAlgorithm
from repro.runner import (
    AdversarySpec,
    AlgorithmSpec,
    CampaignRunner,
    CampaignSpec,
    PredicateSpec,
    ResultCache,
    WorkloadSpec,
)
from repro.simulation.engine import SimulationConfig, run_algorithm
from repro.workloads import generators


def _bench_spec(runs: int = 10) -> CampaignSpec:
    return CampaignSpec(
        campaign_id="bench",
        algorithms=[AlgorithmSpec("ate", {"alpha": 1})],
        adversaries=[AdversarySpec("corruption-good-rounds", {"alpha": 1, "period": 4})],
        predicates=[PredicateSpec("alpha-safe", {"alpha": 1})],
        ns=[9],
        runs=runs,
        base_seed=17,
        max_rounds=30,
        workload=WorkloadSpec("random"),
    )


def test_bench_campaign_serial_dispatch(benchmark):
    """Campaign of 10 runs through the single-process runner."""
    result = benchmark(lambda: CampaignRunner(jobs=1).run_campaign(_bench_spec()))
    assert len(result.records) == 10
    assert all(record.ok for record in result.records)


def test_bench_campaign_cache_hit_replay(benchmark, tmp_path):
    """Re-running a fully cached campaign: pure cache-read throughput."""
    spec = _bench_spec()
    CampaignRunner(cache=ResultCache(tmp_path)).run_campaign(spec)  # warm

    def replay():
        runner = CampaignRunner(cache=ResultCache(tmp_path))
        return runner.run_campaign(spec), runner

    result, runner = benchmark(replay)
    assert runner.stats.cache_hits >= 10 and runner.stats.executed == 0
    assert all(record.ok for record in result.records)


@pytest.mark.parametrize("record_states", [False, True])
def test_bench_engine_fast_path(benchmark, record_states):
    """Fast path (no snapshots, trimmed metrics) vs the recording slow path."""
    n = 16
    config = SimulationConfig(max_rounds=15, min_rounds=15, record_states=record_states)
    result = benchmark(
        lambda: run_algorithm(
            AteAlgorithm.symmetric(n=n, alpha=2),
            generators.split(n),
            RandomCorruptionAdversary(alpha=2, value_domain=(0, 1), seed=5),
            config=config,
        )
    )
    assert result.rounds_executed == 15
    assert bool(result.metrics.corruption_per_round) == record_states

"""Benchmark E5 — Figure 3 (corruption taxonomy).

Runs both algorithms against each corruption class of Figure 3 (benign,
symmetric/identical-Byzantine, dynamic transmission value faults, and
permanent equivocating Byzantine), reproducing the qualitative picture:
safety holds across the whole spectrum; termination of ``A_{T,E}`` needs
rounds with enough *safe* receptions (so permanent corruption blocks it),
while ``U_{T,E,alpha}`` rides out permanent corruption at ``alpha = f``.
"""

from benchmarks.conftest import run_once
from repro.experiments import corruption_taxonomy


def test_bench_fig3_taxonomy(benchmark, record_report):
    report = run_once(benchmark, corruption_taxonomy, n=9, f=2, runs=12, seed=5, max_rounds=60)
    record_report(report)

    assert len(report.rows) == 8  # 2 algorithms x 4 fault classes
    assert all(row["agreement_rate"] == 1.0 for row in report.rows)
    assert all(row["integrity_rate"] == 1.0 for row in report.rows)

    rows = {(row["algorithm"], row["fault_class"]): row for row in report.rows}
    benign_label = "benign (omissions only)"
    our_label = "our case (dynamic transmission value faults)"
    byz_label = "Byzantine (fixed senders, equivocating)"

    # Both algorithms terminate under benign faults and under dynamic value
    # faults with sporadic good rounds.
    assert rows[("A_(T,E)", benign_label)]["termination_rate"] == 1.0
    assert rows[("A_(T,E)", our_label)]["termination_rate"] == 1.0
    assert rows[("U_(T,E,alpha)", our_label)]["termination_rate"] == 1.0
    # Permanent corruption: U (alpha = f) still terminates; A cannot be
    # expected to (its liveness needs |SHO| > E rounds), mirroring F = 0.
    assert rows[("U_(T,E,alpha)", byz_label)]["termination_rate"] == 1.0
    assert rows[("A_(T,E)", byz_label)]["termination_rate"] < 1.0

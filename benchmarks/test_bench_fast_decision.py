"""Benchmark E9 — fast decision versus the Martin–Alvisi bound (Section 5.1).

Regenerates the decision-latency comparison: ``A_{T,E}`` decides in one round
from unanimous inputs and two rounds from split inputs in fault-free runs,
recovers within a few rounds of the first clean round after a corruption
burst, and does so while tolerating more per-round corrupting senders than
the static fast-Byzantine bound allows; phase-king pays its fixed
``2(f + 1)`` rounds.
"""

from benchmarks.conftest import run_once
from repro.analysis.bounds import martin_alvisi_max_faulty
from repro.analysis.feasibility import ate_max_alpha
from repro.experiments import fast_decision


def test_bench_fast_decision(benchmark, record_report):
    n = 9
    report = run_once(benchmark, fast_decision, n=n, runs=10, seed=10, max_rounds=30)
    record_report(report)

    rows = {(row["scenario"], row["algorithm"]): row for row in report.rows}
    unanimous = rows[("fault-free, unanimous initial values", "A_(T,E)")]
    split = rows[("fault-free, split initial values", "A_(T,E)")]
    burst = rows[("alpha corruptions/round for 3 rounds, then clean", "A_(T,E)")]
    phase_king = rows[("fault-free, split initial values", "PhaseKing(f=1)")]

    # The paper's fast-decision claims.
    assert unanimous["max_decision_round"] == 1
    assert split["max_decision_round"] == 2
    assert burst["termination_rate"] == 1.0
    assert burst["max_decision_round"] <= 6
    # Static baseline latency: 2(f+1) rounds, strictly slower than A_{T,E}.
    assert phase_king["max_decision_round"] == 4
    assert split["max_decision_round"] < phase_king["max_decision_round"]
    # And the corruption level A tolerates per round exceeds the static bound.
    assert ate_max_alpha(n) > martin_alvisi_max_faulty(n)

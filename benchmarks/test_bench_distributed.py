"""Benchmarks: distributed fleet scaling and work-stealing wall-clock.

Two fleet benchmarks, both over latency-bound campaigns (the
``latency`` adversary sleeps a fixed wall-clock delay per round,
modelling the network round-trip a real deployment pays — rounds are
I/O-bound, not CPU-bound, so a worker fleet parallelises even on a
single-core runner):

* **Scaling** — one uniform campaign executed serially and by a fleet
  of **4 worker processes** claiming batches from a shared queue
  directory.  The acceptance bar is **≥ 2.5×** at 4 workers — the
  remaining gap to the ideal 4× is the fleet's scheduling overhead
  (queue polling, lease traffic, result deposits), which this benchmark
  exists to keep bounded.
* **Straggler / work stealing** — a deliberately unbalanced campaign:
  one batch of cheap runs and one batch of expensive runs, at 4
  workers.  Without stealing, one worker grinds the expensive batch
  alone while its peers idle, so the straggler batch bounds campaign
  wall-clock.  With stealing (the default), idle workers split the
  straggler's unstarted tail via cut markers and share it.  The
  acceptance bar is **≥ 1.3×** steal-vs-no-steal at 4 workers.

Rows are checked byte-identical first (the distributed path — stolen or
not — is semantically invisible) and the stealing fleet's shared cache
must fully serve a serial re-run.  Results land in
``benchmarks/results/distributed.json``, one section per benchmark.
"""

from __future__ import annotations

import json
import multiprocessing
import time

from benchmarks.conftest import RESULTS_DIR
from repro.runner import (
    AdversarySpec,
    AlgorithmSpec,
    CampaignRunner,
    CampaignSpec,
    DistributedCampaignRunner,
    ResultCache,
    SharedStore,
    WorkQueue,
    fleet_status,
    run_worker,
)

mp = multiprocessing.get_context("fork")

WORKERS = 4
RUNS = 32
DELAY_PER_ROUND = 0.15
BATCH_SIZE = 2
SPEEDUP_FLOOR = 2.5

STRAGGLER_RUNS = 8  # per cell: one cheap cell + one expensive cell
STRAGGLER_FAST_DELAY = 0.005
STRAGGLER_SLOW_DELAY = 0.25
STRAGGLER_BATCH_SIZE = 8  # one batch per cell: the slow batch straggles
STEAL_SPEEDUP_FLOOR = 1.3


def _record_results(section: str, payload: dict) -> None:
    """Merge one benchmark's payload into results/distributed.json."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / "distributed.json"
    try:
        combined = json.loads(path.read_text())
        if not isinstance(combined, dict) or "benchmark" in combined:
            combined = {}
    except (OSError, ValueError):
        combined = {}
    combined[section] = payload
    path.write_text(json.dumps(combined, indent=2))


def _spec() -> CampaignSpec:
    return CampaignSpec(
        campaign_id="bench-distributed",
        algorithms=[AlgorithmSpec("ate", {"alpha": 0})],
        adversaries=[AdversarySpec("latency", {"delay_per_round": DELAY_PER_ROUND})],
        ns=[6],
        runs=RUNS,
        base_seed=17,
        max_rounds=12,
    )


def _straggler_spec() -> CampaignSpec:
    """A campaign whose grid expands into one cheap and one expensive
    cell, in that order — batched so the expensive cell is one big
    straggler batch."""
    return CampaignSpec(
        campaign_id="bench-straggler",
        algorithms=[AlgorithmSpec("ate", {"alpha": 0})],
        adversaries=[
            AdversarySpec("latency", {"delay_per_round": STRAGGLER_FAST_DELAY}),
            AdversarySpec("latency", {"delay_per_round": STRAGGLER_SLOW_DELAY}),
        ],
        ns=[6],
        runs=STRAGGLER_RUNS,
        base_seed=23,
        max_rounds=12,
    )


def _fleet(queue_dir, count, steal):
    workers = [
        mp.Process(
            target=run_worker,
            kwargs=dict(
                queue_dir=str(queue_dir),
                worker_id=f"bench-{'steal' if steal else 'nosteal'}-w{index}",
                ttl=30.0,
                poll_interval=0.02,
                max_idle=10.0,
                steal=steal,
            ),
            daemon=True,
        )
        for index in range(count)
    ]
    for worker in workers:
        worker.start()
    return workers


def _reap(workers):
    for worker in workers:
        worker.join(timeout=60)
        if worker.is_alive():
            worker.terminate()
            worker.join(timeout=5)


def _run_fleet(spec, queue_dir, batch_size, steal):
    """Execute ``spec`` on a fresh fleet; returns (result, seconds, runner)."""
    workers = _fleet(queue_dir, WORKERS, steal=steal)
    try:
        started = time.perf_counter()
        runner = DistributedCampaignRunner(queue_dir, batch_size=batch_size, wait_timeout=300)
        result = runner.run_campaign(spec)
        elapsed = time.perf_counter() - started
    finally:
        _reap(workers)
    return result, elapsed, runner


def test_bench_distributed_scaling(tmp_path):
    spec = _spec()

    started = time.perf_counter()
    serial_result = CampaignRunner().run_campaign(spec)
    serial_seconds = time.perf_counter() - started

    distributed_result, distributed_seconds, runner = _run_fleet(
        spec, tmp_path / "queue", BATCH_SIZE, steal=True
    )

    # Semantic invisibility first: byte-identical records, then timing.
    assert [record.as_dict() for record in serial_result.records] == [
        record.as_dict() for record in distributed_result.records
    ]

    # The fleet ran fully instrumented (in-memory counters are always
    # on, snapshot deposits default on), so the speedup floor below IS
    # the metrics-overhead bar.  Record the merged observability totals
    # beside the timings for trend inspection.
    totals = fleet_status(WorkQueue(tmp_path / "queue"))["totals"]
    fleet_counters = {
        key: totals.get(key, 0.0)
        for key in (
            "repro_worker_units_total",
            "repro_queue_claims_total",
            "repro_queue_deposits_total",
            "repro_worker_steals_total",
        )
    }
    assert fleet_counters["repro_worker_units_total"] >= 1, (
        "instrumented fleet deposited no metric snapshots"
    )

    speedup = serial_seconds / distributed_seconds
    _record_results(
        "scaling",
        {
            "benchmark": "latency-bound campaign, serial vs 4-worker distributed fleet",
            "workers": WORKERS,
            "runs": RUNS,
            "delay_per_round": DELAY_PER_ROUND,
            "batch_size": BATCH_SIZE,
            "serial_seconds": round(serial_seconds, 3),
            "distributed_seconds": round(distributed_seconds, 3),
            "speedup": round(speedup, 2),
            "workers_executed": {
                worker: stats.executed
                for worker, stats in sorted(runner.worker_stats.items())
            },
            "fleet_counters": fleet_counters,
        },
    )
    print(
        f"\nserial={serial_seconds:.2f}s distributed[{WORKERS} workers]="
        f"{distributed_seconds:.2f}s ({speedup:.2f}x)"
    )

    assert speedup >= SPEEDUP_FLOOR, (
        f"4-worker fleet only reached {speedup:.2f}x over serial "
        f"(floor {SPEEDUP_FLOOR}x); scheduling overhead regressed"
    )


def test_bench_straggler_work_stealing(tmp_path):
    spec = _straggler_spec()
    serial_result = CampaignRunner().run_campaign(spec)

    nosteal_result, nosteal_seconds, _ = _run_fleet(
        spec, tmp_path / "queue-nosteal", STRAGGLER_BATCH_SIZE, steal=False
    )
    steal_result, steal_seconds, _ = _run_fleet(
        spec, tmp_path / "queue-steal", STRAGGLER_BATCH_SIZE, steal=True
    )

    # Stolen or not, the fleet is semantically invisible.
    rows_serial = [record.as_dict() for record in serial_result.records]
    assert rows_serial == [record.as_dict() for record in nosteal_result.records]
    assert rows_serial == [record.as_dict() for record in steal_result.records]

    # The straggler batch was actually split: cut markers + part deposits.
    steal_queue = WorkQueue(tmp_path / "queue-steal")
    campaign_id = steal_queue.campaigns()[0]
    cuts = steal_queue.cuts(campaign_id)
    assert cuts, "stealing fleet recorded no cut markers on the straggler"
    assert any(len(parts) >= 2 for parts in steal_queue.parts(campaign_id).values())

    # Full cross-mode cache hits: a serial runner over the stealing
    # fleet's shared cache re-executes nothing and reads identical rows.
    cross = CampaignRunner(
        cache=ResultCache(store=SharedStore(tmp_path / "queue-steal" / "cache"))
    )
    cross_result = cross.run_campaign(spec)
    assert cross.stats.cache_hits == len(rows_serial) and cross.stats.executed == 0
    assert rows_serial == [record.as_dict() for record in cross_result.records]

    improvement = nosteal_seconds / steal_seconds
    _record_results(
        "straggler_steal",
        {
            "benchmark": (
                "straggler-bound campaign (one cheap + one expensive batch), "
                "4-worker fleet with vs without work stealing"
            ),
            "workers": WORKERS,
            "runs_per_cell": STRAGGLER_RUNS,
            "fast_delay_per_round": STRAGGLER_FAST_DELAY,
            "slow_delay_per_round": STRAGGLER_SLOW_DELAY,
            "batch_size": STRAGGLER_BATCH_SIZE,
            "no_steal_seconds": round(nosteal_seconds, 3),
            "steal_seconds": round(steal_seconds, 3),
            "improvement": round(improvement, 2),
            "cut_markers": {str(index): at for index, at in sorted(cuts.items())},
        },
    )
    print(
        f"\nno-steal={nosteal_seconds:.2f}s steal={steal_seconds:.2f}s "
        f"({improvement:.2f}x) cuts={cuts}"
    )

    assert improvement >= STEAL_SPEEDUP_FLOOR, (
        f"work stealing only improved the straggler-bound campaign by "
        f"{improvement:.2f}x (floor {STEAL_SPEEDUP_FLOOR}x)"
    )

"""Benchmark: distributed fleet scaling vs serial campaign execution.

Times one latency-bound campaign (the ``latency`` adversary sleeps a
fixed wall-clock delay per round, modelling the network round-trip a
real deployment pays — rounds are I/O-bound, not CPU-bound, so a worker
fleet parallelises even on a single-core runner) executed two ways:

* serially through a plain :class:`CampaignRunner`, and
* by a fleet of **4 worker processes** claiming batches from a shared
  queue directory through the lease-based work queue.

Rows are checked byte-identical first (the distributed path is
semantically invisible), then the wall-clock speedup is recorded to
``benchmarks/results/distributed.json``.  The acceptance bar is
**≥ 2.5×** at 4 workers — the remaining gap to the ideal 4× is the
fleet's scheduling overhead (queue polling, lease traffic, result
deposits), which this benchmark exists to keep bounded.
"""

from __future__ import annotations

import json
import multiprocessing
import time

from benchmarks.conftest import RESULTS_DIR
from repro.runner import (
    AdversarySpec,
    AlgorithmSpec,
    CampaignRunner,
    CampaignSpec,
    DistributedCampaignRunner,
    run_worker,
)

mp = multiprocessing.get_context("fork")

WORKERS = 4
RUNS = 32
DELAY_PER_ROUND = 0.15
BATCH_SIZE = 2
SPEEDUP_FLOOR = 2.5


def _spec() -> CampaignSpec:
    return CampaignSpec(
        campaign_id="bench-distributed",
        algorithms=[AlgorithmSpec("ate", {"alpha": 0})],
        adversaries=[AdversarySpec("latency", {"delay_per_round": DELAY_PER_ROUND})],
        ns=[6],
        runs=RUNS,
        base_seed=17,
        max_rounds=12,
    )


def test_bench_distributed_scaling(tmp_path):
    spec = _spec()

    started = time.perf_counter()
    serial_result = CampaignRunner().run_campaign(spec)
    serial_seconds = time.perf_counter() - started

    queue_dir = tmp_path / "queue"
    workers = [
        mp.Process(
            target=run_worker,
            kwargs=dict(
                queue_dir=str(queue_dir),
                worker_id=f"bench-w{index}",
                ttl=30.0,
                poll_interval=0.02,
                max_idle=10.0,
            ),
            daemon=True,
        )
        for index in range(WORKERS)
    ]
    for worker in workers:
        worker.start()
    try:
        started = time.perf_counter()
        runner = DistributedCampaignRunner(queue_dir, batch_size=BATCH_SIZE, wait_timeout=300)
        distributed_result = runner.run_campaign(spec)
        distributed_seconds = time.perf_counter() - started
    finally:
        for worker in workers:
            worker.join(timeout=60)
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=5)

    # Semantic invisibility first: byte-identical records, then timing.
    assert [record.as_dict() for record in serial_result.records] == [
        record.as_dict() for record in distributed_result.records
    ]

    speedup = serial_seconds / distributed_seconds
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    payload = {
        "benchmark": "latency-bound campaign, serial vs 4-worker distributed fleet",
        "workers": WORKERS,
        "runs": RUNS,
        "delay_per_round": DELAY_PER_ROUND,
        "batch_size": BATCH_SIZE,
        "serial_seconds": round(serial_seconds, 3),
        "distributed_seconds": round(distributed_seconds, 3),
        "speedup": round(speedup, 2),
        "workers_executed": {
            worker: stats.executed for worker, stats in sorted(runner.worker_stats.items())
        },
    }
    (RESULTS_DIR / "distributed.json").write_text(json.dumps(payload, indent=2))
    print(
        f"\nserial={serial_seconds:.2f}s distributed[{WORKERS} workers]="
        f"{distributed_seconds:.2f}s ({speedup:.2f}x)"
    )

    assert speedup >= SPEEDUP_FLOOR, (
        f"4-worker fleet only reached {speedup:.2f}x over serial "
        f"(floor {SPEEDUP_FLOOR}x); scheduling overhead regressed"
    )

"""Benchmark E2 — Table 1, ``U_{T,E,alpha}`` row.

Regenerates the ``U_{T,E,alpha}`` row of Table 1 under the full predicate
conjunction ``P_alpha ∧ P^{U,safe} ∧ P^{U,live}`` and asserts the row's
claim, including that U tolerates strictly more corruption than A.
"""

from benchmarks.conftest import run_once
from repro.experiments import validate_ute_row


def test_bench_table1_ute_row(benchmark, record_report):
    report = run_once(benchmark, validate_ute_row, n=9, runs=20, seed=2, max_rounds=80)
    record_report(report)

    in_range = [row for row in report.rows if row["in_range"]]
    assert in_range
    for row in in_range:
        assert row["agreement_rate"] == 1.0
        assert row["integrity_rate"] == 1.0
        assert row["termination_rate"] == 1.0
        assert row["theorem_2_satisfied"]
    # The alpha < n/2 limit: for n=9 the largest in-range integer alpha is 4 —
    # twice the A_{T,E} limit of 2 reproduced in E1.
    assert max(row["alpha"] for row in in_range) == 4

"""Benchmark E11 — classical Byzantine assumptions as predicates (Section 5.2).

Regenerates the comparison under a static, permanently corrupted set of ``f``
senders: the generated runs satisfy both Section 5.2 encodings of the
classical model (``|SK| >= n − f`` and ``|HO| >= n − f ∧ |AS| <= f``) as well
as ``P^perm_f`` and ``P_f``; ``U_{T,E,alpha=f}`` both stays safe and
terminates; ``A_{T,E}`` stays safe; phase-king needs its fixed latency.
"""

from benchmarks.conftest import run_once
from repro.experiments import byzantine_predicates


def test_bench_byzantine_predicates(benchmark, record_report):
    report = run_once(benchmark, byzantine_predicates, n=10, f=2, runs=10, seed=12, max_rounds=60)
    record_report(report)

    rows = {row["algorithm"]: row for row in report.rows}
    assert all(row["predicates_hold"] for row in report.rows)
    assert all(row["agreement_rate"] == 1.0 for row in report.rows)
    assert all(row["integrity_rate"] == 1.0 for row in report.rows)

    assert rows["U_(T,E,alpha=f)"]["termination_rate"] == 1.0
    assert rows["PhaseKing(f=2)"]["termination_rate"] == 1.0
    assert rows["PhaseKing(f=2)"]["mean_decision_round"] == 6.0
    # A_{T,E} is not expected to terminate under permanent corruption (F = 0).
    assert rows["A_(T,E) with alpha=f"]["termination_rate"] < 1.0

"""Benchmark E10 — attainment of Lamport's ``N > 2Q + F + 2M`` bound (Section 5.1).

For a sweep of system sizes, checks analytically that both algorithms attain
the bound exactly (U: safe-only with M = (n-1)/2; A: safe-and-fast with
M = Q = (n-1)/4; F = 0 for both) and validates the extreme configurations by
simulation.
"""

from benchmarks.conftest import run_once
from repro.experiments import lamport_attainment


def test_bench_lamport_bound(benchmark, record_report):
    report = run_once(benchmark, lamport_attainment, ns=(5, 9, 13, 17, 21), runs=6, seed=11, max_rounds=40)
    record_report(report)

    assert len(report.rows) == 5
    for row in report.rows:
        assert row["ate_bound_satisfied"] and row["ate_tight"]
        assert row["ute_bound_satisfied"] and row["ute_tight"]
        assert row["ate_safety_rate_sim"] == 1.0
        assert row["ute_safety_rate_sim"] == 1.0

"""Benchmark E12 — benign baselines and the alpha = 0 degeneration.

Regenerates the baseline comparison the paper departs from: the literal
equivalence of ``A_{2n/3,2n/3}`` with OneThirdRule, and the behaviour of all
four algorithms (two baselines, two alpha = 0 instances) across benign
omission rates.
"""

from benchmarks.conftest import run_once
from repro.experiments import benign_baselines


def test_bench_benign_baselines(benchmark, record_report):
    report = run_once(
        benchmark,
        benign_baselines,
        n=9,
        runs=12,
        seed=13,
        max_rounds=60,
        drop_probabilities=(0.0, 0.1, 0.3),
    )
    record_report(report)

    equivalence = [row for row in report.rows if "OneThirdRule" in str(row.get("check", ""))]
    assert equivalence and equivalence[0]["mismatches"] == 0

    sweep = [row for row in report.rows if row.get("check") == "omission sweep"]
    assert len(sweep) == 12  # 4 algorithms x 3 drop probabilities
    assert all(row["agreement_rate"] == 1.0 for row in sweep)
    assert all(row["integrity_rate"] == 1.0 for row in sweep)
    assert all(row["termination_rate"] == 1.0 for row in sweep)

    # Fault-free decision latency: OneThirdRule-style algorithms decide within
    # two rounds, UniformVoting-style within two phases (four rounds).
    clean = {row["algorithm"]: row for row in sweep if row["drop_probability"] == 0.0}
    assert clean["OneThirdRule"]["mean_decision_round"] <= 2
    assert clean["A_(T,E) alpha=0"]["mean_decision_round"] <= 2
    assert clean["UniformVoting"]["mean_decision_round"] <= 4
    assert clean["U_(T,E,alpha) alpha=0"]["mean_decision_round"] <= 4

"""Benchmark E4 — Figure 2 (``P^{U,live}``).

Regenerates the liveness comparison for ``U_{T,E,alpha}``: the clean
three-round phase window of Figure 2 versus environments without it.
"""

from benchmarks.conftest import run_once
from repro.experiments import ulive_predicate_effect


def test_bench_fig2_ulive_predicate(benchmark, record_report):
    report = run_once(
        benchmark, ulive_predicate_effect, n=9, alpha=2, runs=15, seed=4, max_rounds=60
    )
    record_report(report)

    rows = {row["environment"]: row for row in report.rows}
    assert all(row["agreement_rate"] == 1.0 for row in report.rows)
    assert all(row["integrity_rate"] == 1.0 for row in report.rows)
    assert rows["good-phases (P^U,live holds)"]["termination_rate"] == 1.0
    # Starving every process below E receptions blocks termination entirely,
    # yet safety is untouched.
    assert rows["starved (|HO| never exceeds E)"]["termination_rate"] == 0.0

"""Benchmark E1 — Table 1, ``A_{T,E}`` row.

Regenerates the ``A_{T,E}`` row of Table 1 by sweeping alpha from 0 to the
feasibility limit (plus one value beyond it) under ``P_alpha``-bounded
corruption with sporadic good rounds, and asserts the row's claim: every
in-range parameterisation satisfies all three consensus clauses in every run.
"""

from benchmarks.conftest import run_once
from repro.experiments import validate_ate_row


def test_bench_table1_ate_row(benchmark, record_report):
    report = run_once(benchmark, validate_ate_row, n=9, runs=20, seed=1, max_rounds=60)
    record_report(report)

    in_range = [row for row in report.rows if row["in_range"]]
    assert in_range, "at least one feasible alpha expected"
    for row in in_range:
        assert row["agreement_rate"] == 1.0
        assert row["integrity_rate"] == 1.0
        assert row["termination_rate"] == 1.0
        assert row["counterexamples"] == 0
    # The sweep reaches the paper's alpha < n/4 limit: for n=9 that is alpha = 2.
    assert max(row["alpha"] for row in in_range) == 2
    # Decision latency grows with alpha (more corruption -> more rounds), the
    # qualitative shape the paper's fast-decision discussion implies.
    latencies = [row["mean_decision_round"] for row in in_range]
    assert latencies[0] <= latencies[-1]

"""Benchmark E3 — Figure 1 (``P^{A,live}``).

Regenerates the liveness comparison of Figure 1's predicate: identical
corruption levels, with and without the sporadic uniformisation rounds the
predicate demands.  Termination follows the predicate; safety never depends
on it.
"""

from benchmarks.conftest import run_once
from repro.experiments import alive_predicate_effect


def test_bench_fig1_alive_predicate(benchmark, record_report):
    report = run_once(
        benchmark, alive_predicate_effect, n=9, alpha=1, runs=15, seed=3, max_rounds=50
    )
    record_report(report)

    rows = {row["environment"]: row for row in report.rows}
    good = rows["good-rounds (P^A,live holds)"]
    starved = rows["starved (no good rounds)"]
    late = rows["late good rounds (transient bad prefix)"]

    # Safety everywhere.
    assert all(row["agreement_rate"] == 1.0 for row in report.rows)
    assert all(row["integrity_rate"] == 1.0 for row in report.rows)
    # Termination exactly where the liveness structure exists.
    assert good["termination_rate"] == 1.0
    assert starved["termination_rate"] == 0.0
    # Transient faults: a bad prefix followed by good rounds still terminates —
    # the "liveness relies only on sporadic conditions" message of the paper.
    assert late["termination_rate"] == 1.0

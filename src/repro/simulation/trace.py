"""Trace serialisation and replay.

A run's heard-of collection fully determines its communication (who
received what from whom at which round, and what should have been
received).  This module serialises collections and results to plain
dictionaries / JSON files (experiment artifacts), and provides a
:class:`ReplayAdversary` that reproduces the exact delivery decisions of
a recorded run — handy for regression tests and for re-examining a
counterexample found by a randomised sweep.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

from repro.adversary.base import Adversary, IntendedMatrix, ReceivedMatrix
from repro.core.heardof import HeardOfCollection, ReceptionVector, RoundRecord
from repro.core.process import Payload


# ----------------------------------------------------------------------
# Serialisation
# ----------------------------------------------------------------------
def _payload_to_jsonable(payload: Payload) -> object:
    """Encode a payload so it survives a JSON round-trip unambiguously."""
    if payload is None or isinstance(payload, (bool, int, float, str)):
        return {"t": "v", "v": payload}
    return {"t": "repr", "v": repr(payload)}


def _payload_from_jsonable(obj: object) -> Payload:
    if isinstance(obj, dict) and obj.get("t") == "v":
        return obj["v"]
    if isinstance(obj, dict) and obj.get("t") == "repr":
        return obj["v"]
    return obj


def reception_vector_to_dict(rv: ReceptionVector) -> Dict[str, object]:
    """JSON-able encoding of one receiver's per-round reception."""
    return {
        "receiver": rv.receiver,
        "received": {str(s): _payload_to_jsonable(v) for s, v in rv.received.items()},
        "intended": {str(s): _payload_to_jsonable(v) for s, v in rv.intended.items()},
    }


def reception_vector_from_dict(data: Dict[str, object]) -> ReceptionVector:
    """Rebuild a :class:`ReceptionVector` from its dict encoding."""
    return ReceptionVector(
        receiver=int(data["receiver"]),
        received={int(s): _payload_from_jsonable(v) for s, v in data["received"].items()},
        intended={int(s): _payload_from_jsonable(v) for s, v in data["intended"].items()},
    )


def round_record_to_dict(record: RoundRecord) -> Dict[str, object]:
    """JSON-able encoding of one round's full reception record."""
    return {
        "round_num": record.round_num,
        "receptions": {
            str(pid): reception_vector_to_dict(rv) for pid, rv in record.receptions.items()
        },
    }


def round_record_from_dict(data: Dict[str, object]) -> RoundRecord:
    """Rebuild a :class:`RoundRecord` from its dict encoding."""
    return RoundRecord(
        round_num=int(data["round_num"]),
        receptions={
            int(pid): reception_vector_from_dict(rv) for pid, rv in data["receptions"].items()
        },
    )


def collection_to_dict(collection: HeardOfCollection) -> Dict[str, object]:
    """Serialise a heard-of collection to a JSON-compatible dictionary."""
    return {
        "n": collection.n,
        "rounds": [round_record_to_dict(record) for record in collection],
    }


def collection_from_dict(data: Dict[str, object]) -> HeardOfCollection:
    """Rebuild a heard-of collection from :func:`collection_to_dict` output."""
    return HeardOfCollection(
        n=int(data["n"]),
        rounds=[round_record_from_dict(record) for record in data["rounds"]],
    )


def save_trace(collection: HeardOfCollection, path: Union[str, Path]) -> Path:
    """Write a collection to a JSON file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(collection_to_dict(collection), handle, indent=2, default=repr)
    return path


def load_trace(path: Union[str, Path]) -> HeardOfCollection:
    """Read a collection previously written by :func:`save_trace`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return collection_from_dict(json.load(handle))


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
class ReplayAdversary(Adversary):
    """Replays the delivery decisions of a recorded heard-of collection.

    For every (round, sender, receiver) the adversary applies the same
    *decision* as in the recorded run: drop if the message was dropped,
    deliver the recorded (possibly corrupted) payload if the recorded
    payload differed from what was intended, and deliver the current
    intended payload otherwise.  Replaying a run of a deterministic
    algorithm from the same initial values therefore reproduces the
    original run exactly (asserted by ``tests/simulation/test_trace.py``).

    Rounds beyond the recorded horizon are delivered reliably.
    """

    def __init__(self, collection: HeardOfCollection, seed: Optional[int] = None) -> None:
        super().__init__(seed)
        self.collection = collection
        self.name = f"replay({collection.num_rounds} rounds)"

    def deliver_round(self, round_num: int, intended: IntendedMatrix) -> ReceivedMatrix:
        received: ReceivedMatrix = {}
        recorded = None
        if 1 <= round_num <= self.collection.num_rounds:
            recorded = self.collection[round_num]
        for sender, per_receiver in intended.items():
            for receiver, payload in per_receiver.items():
                if recorded is None:
                    received.setdefault(receiver, {})[sender] = payload
                    continue
                rv = recorded.receptions.get(receiver)
                if rv is None or sender not in rv.received:
                    # dropped in the recorded run
                    received.setdefault(receiver, {})
                    continue
                recorded_payload = rv.received[sender]
                recorded_intended = rv.intended.get(sender)
                if recorded_payload == recorded_intended:
                    received.setdefault(receiver, {})[sender] = payload
                else:
                    received.setdefault(receiver, {})[sender] = recorded_payload
        return received

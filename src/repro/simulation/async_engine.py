"""The asyncio engine: communication-closed rounds over an asynchronous network.

The lockstep engine (:mod:`repro.simulation.engine`) executes rounds as
a single loop.  This engine runs every process as its own asyncio task;
processes communicate only through an :class:`~repro.simulation.network.AsyncNetwork`
whose per-message delays interleave deliveries arbitrarily.  A round
coordinator provides communication closedness: it gathers the intended
messages of a round from all processes, lets the adversary decide each
message's fate (exactly as in the lockstep engine, so HO/SHO bookkeeping
is identical), hands the surviving messages to the network, and releases
each process once its round is closed.

The engine exists to demonstrate — executably — the paper's remark that
the round structure does not constrain the asynchrony of the system: the
two engines produce the same heard-of collections for the same
algorithm, adversary and seeds (covered by
``tests/simulation/test_async_engine.py``).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.adversary.base import Adversary, ReliableAdversary
from repro.core.algorithm import HOAlgorithm
from repro.core.consensus import ConsensusSpec, DecisionRecord
from repro.core.heardof import HeardOfCollection, ReceptionVector, RoundRecord
from repro.core.process import HOProcess, Payload, ProcessId, Value
from repro.simulation.engine import SimulationConfig, SimulationResult
from repro.simulation.metrics import metrics_from_collection
from repro.simulation.network import AsyncNetwork, DelayModel, NetworkMessage


@dataclass
class AsyncSimulationConfig(SimulationConfig):
    """Configuration of the asyncio engine (extends the lockstep config).

    ``network_seed`` seeds the network's per-message delay RNG; when
    ``None`` it is derived deterministically from the run's adversary
    seed (see :func:`derive_network_seed`), so async runs are
    reproducible by default.
    """

    delay_model: Optional[DelayModel] = None
    network_seed: Optional[int] = None


def derive_network_seed(run_seed: Optional[int]) -> int:
    """Deterministic default network seed for a run seeded with ``run_seed``.

    Uses the campaign runner's SHA-256 seed-derivation scheme
    (:func:`repro.runner.spec.derive_seed`) with a fixed cell label, so
    the network RNG is statistically independent of the adversary's RNG
    while remaining a pure function of the run seed.  An unseeded run
    (``run_seed is None``) maps to base seed 0 — still deterministic.
    """
    # Imported lazily: repro.runner imports the simulation package, so a
    # module-level import here would be circular at package-init time.
    from repro.runner.spec import derive_seed

    return derive_seed(run_seed if run_seed is not None else 0, "async-network", 0)


class _RoundCoordinator:
    """Implements communication-closed rounds on top of the async network."""

    def __init__(
        self,
        n: int,
        adversary: Adversary,
        network: AsyncNetwork,
        record_states: bool,
    ) -> None:
        self.n = n
        self.adversary = adversary
        self.network = network
        self.record_states = record_states
        self.collection = HeardOfCollection(n)
        self.stop = False
        self._submissions: Dict[int, Dict[ProcessId, Dict[ProcessId, Payload]]] = {}
        self._round_complete: Dict[int, asyncio.Event] = {}
        self._reception: Dict[int, Dict[ProcessId, Dict[ProcessId, Payload]]] = {}
        self._states_before: Dict[int, Dict[ProcessId, Dict[str, object]]] = {}
        self._transitions_done: Dict[int, int] = {}
        self._transition_events: Dict[int, asyncio.Event] = {}
        self.processes: Mapping[ProcessId, HOProcess] = {}

    def _event(self, round_num: int) -> asyncio.Event:
        if round_num not in self._round_complete:
            self._round_complete[round_num] = asyncio.Event()
        return self._round_complete[round_num]

    async def submit(
        self,
        round_num: int,
        sender: ProcessId,
        messages: Dict[ProcessId, Payload],
        state_before: Dict[str, object],
    ) -> None:
        """A process hands in its round-``round_num`` messages."""
        per_round = self._submissions.setdefault(round_num, {})
        per_round[sender] = messages
        self._states_before.setdefault(round_num, {})[sender] = state_before
        if len(per_round) == self.n:
            await self._close_round(round_num)

    async def _close_round(self, round_num: int) -> None:
        """All processes submitted: apply the adversary and deliver."""
        intended = self._submissions[round_num]
        received = self.adversary.deliver_round(round_num, intended)

        # Ship the surviving messages through the asynchronous network.
        send_tasks = []
        for receiver, inbox in received.items():
            for sender, payload in inbox.items():
                send_tasks.append(
                    self.network.send(
                        NetworkMessage(
                            sender=sender,
                            receiver=receiver,
                            round_num=round_num,
                            payload=payload,
                        )
                    )
                )
        if send_tasks:
            await asyncio.gather(*send_tasks)
        for receiver in range(self.n):
            await self.network.close_round(receiver, round_num)

        # Collect what each receiver got, build the round record.
        reception: Dict[ProcessId, Dict[ProcessId, Payload]] = {}
        vectors: Dict[ProcessId, ReceptionVector] = {}
        for receiver in range(self.n):
            inbox = await self.network.collect_round(receiver, round_num)
            reception[receiver] = inbox
            intended_for_receiver = {
                sender: intended[sender][receiver] for sender in intended
            }
            vectors[receiver] = ReceptionVector(
                receiver=receiver,
                received={s: v for s, v in inbox.items() if s in intended_for_receiver},
                intended=intended_for_receiver,
            )
        self._reception[round_num] = reception

        record = RoundRecord(
            round_num=round_num,
            receptions=vectors,
            states_before=self._states_before.get(round_num, {}) if self.record_states else {},
            states_after={},
        )
        self.collection.append(record)
        self._event(round_num).set()

    async def reception_for(self, round_num: int, receiver: ProcessId) -> Dict[ProcessId, Payload]:
        await self._event(round_num).wait()
        return self._reception[round_num].get(receiver, {})

    async def finish_round(self, round_num: int, config: "AsyncSimulationConfig") -> bool:
        """Barrier after the transitions of ``round_num``.

        Every process calls this once its transition is done.  When the
        last process arrives, the stop condition is evaluated exactly
        once, so all processes observe the same verdict and stop at the
        same round boundary (otherwise a fast process could run ahead
        into a round that slower, already-decided processes never join,
        deadlocking the coordinator).
        """
        done = self._transitions_done.setdefault(round_num, 0) + 1
        self._transitions_done[round_num] = done
        event = self._transition_events.setdefault(round_num, asyncio.Event())
        if done == self.n:
            if (
                config.stop_when_all_decided
                and round_num >= config.min_rounds
                and all(p.decided for p in self.processes.values())
            ):
                self.stop = True
            event.set()
        else:
            await event.wait()
        return self.stop


async def _process_loop(
    pid: ProcessId,
    proc: HOProcess,
    coordinator: _RoundCoordinator,
    config: AsyncSimulationConfig,
) -> None:
    for round_num in range(1, config.max_rounds + 1):
        messages = {
            receiver: proc.send_to(round_num, receiver) for receiver in range(coordinator.n)
        }
        state_before = proc.state_snapshot() if config.record_states else {}
        await coordinator.submit(round_num, pid, messages, state_before)
        reception = await coordinator.reception_for(round_num, pid)
        proc.transition(round_num, reception)
        # Barrier: all processes evaluate the stop condition at the same
        # round boundary, so every round runs for everyone or for no one.
        should_stop = await coordinator.finish_round(round_num, config)
        if should_stop:
            break


async def run_algorithm_async(
    algorithm: HOAlgorithm,
    initial_values: Mapping[ProcessId, Value],
    adversary: Optional[Adversary] = None,
    config: Optional[AsyncSimulationConfig] = None,
    spec: Optional[ConsensusSpec] = None,
) -> SimulationResult:
    """Asyncio counterpart of :func:`repro.simulation.engine.run_algorithm`."""
    adversary = adversary if adversary is not None else ReliableAdversary()
    config = config if config is not None else AsyncSimulationConfig()
    spec = spec if spec is not None else ConsensusSpec()

    processes = algorithm.create_all(initial_values)
    n = len(processes)
    network_seed = (
        config.network_seed
        if config.network_seed is not None
        else derive_network_seed(adversary.seed)
    )
    network = AsyncNetwork(n, delay_model=config.delay_model, seed=network_seed)
    coordinator = _RoundCoordinator(
        n=n, adversary=adversary, network=network, record_states=config.record_states
    )
    coordinator.processes = processes

    await asyncio.gather(
        *(_process_loop(pid, proc, coordinator, config) for pid, proc in processes.items())
    )

    decisions: List[DecisionRecord] = [
        DecisionRecord(process=pid, value=proc.decision, round_num=proc.decision_round)
        for pid, proc in sorted(processes.items())
        if proc.decided
    ]
    rounds_executed = coordinator.collection.num_rounds
    outcome = spec.evaluate(
        initial_values=initial_values,
        decisions=decisions,
        rounds_executed=rounds_executed,
        metadata={
            "algorithm": algorithm.describe(),
            "adversary": adversary.describe(),
            "engine": "asyncio",
        },
    )
    metrics = metrics_from_collection(
        coordinator.collection, {d.process: d.round_num for d in decisions}
    )
    return SimulationResult(
        processes=processes,
        collection=coordinator.collection,
        outcome=outcome,
        metrics=metrics,
        config=config,
        algorithm_name=algorithm.describe(),
        adversary_name=adversary.describe(),
        metadata={"engine": "asyncio"},
    )


def run_consensus_async(
    algorithm: HOAlgorithm,
    initial_values: Mapping[ProcessId, Value],
    adversary: Optional[Adversary] = None,
    max_rounds: int = 100,
    delay_model: Optional[DelayModel] = None,
    network_seed: Optional[int] = None,
    record_states: bool = False,
) -> SimulationResult:
    """Blocking convenience wrapper around :func:`run_algorithm_async`."""
    config = AsyncSimulationConfig(
        max_rounds=max_rounds,
        record_states=record_states,
        delay_model=delay_model,
        network_seed=network_seed,
    )
    return asyncio.run(
        run_algorithm_async(
            algorithm=algorithm,
            initial_values=initial_values,
            adversary=adversary,
            config=config,
        )
    )

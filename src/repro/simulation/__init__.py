"""Simulation engines, network models, traces and metrics.

Two execution substrates are provided:

* the lockstep engine (:mod:`repro.simulation.engine`) — deterministic,
  fast, used by the bulk of tests and benchmarks;
* the asyncio engine (:mod:`repro.simulation.async_engine`) — the same
  communication-closed round semantics layered over an asynchronous
  message-passing network with randomised per-message delays.
"""

from repro.simulation.async_engine import (
    AsyncSimulationConfig,
    run_algorithm_async,
    run_consensus_async,
)
from repro.simulation.engine import (
    SimulationConfig,
    SimulationResult,
    execute_round,
    run_algorithm,
    run_consensus,
    run_machine,
    run_many,
)
from repro.simulation.metrics import RunMetrics, metrics_from_collection
from repro.simulation.network import (
    AsyncNetwork,
    DelayModel,
    ExponentialDelay,
    NetworkMessage,
    NoDelay,
    UniformDelay,
)
from repro.simulation.trace import (
    ReplayAdversary,
    collection_from_dict,
    collection_to_dict,
    load_trace,
    save_trace,
)

__all__ = [
    "AsyncNetwork",
    "AsyncSimulationConfig",
    "DelayModel",
    "ExponentialDelay",
    "NetworkMessage",
    "NoDelay",
    "ReplayAdversary",
    "RunMetrics",
    "SimulationConfig",
    "SimulationResult",
    "UniformDelay",
    "collection_from_dict",
    "collection_to_dict",
    "execute_round",
    "load_trace",
    "metrics_from_collection",
    "run_algorithm",
    "run_algorithm_async",
    "run_consensus",
    "run_consensus_async",
    "run_machine",
    "run_many",
    "save_trace",
]

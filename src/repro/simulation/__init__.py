"""Simulation engines, network models, traces and metrics.

Four execution substrates are provided behind one pluggable
:class:`~repro.simulation.backends.EngineBackend` protocol
(:func:`~repro.simulation.backends.run_simulation` selects by name,
:func:`~repro.simulation.backends.run_simulations_batched` dispatches
whole request lists):

* the ``reference`` lockstep engine (:mod:`repro.simulation.engine`) —
  deterministic, supports everything, the semantic baseline;
* the ``fast`` engine (:mod:`repro.simulation.fast_engine`) — whole
  rounds on bitmask kernels and mask-level adversary plans, falling
  back to the reference engine for runs it cannot take;
* the ``batch`` engine (:mod:`repro.simulation.batch_engine`) — whole
  *sweeps* at once on NumPy arrays shaped ``(runs, n)``, one vectorised
  kernel step per round across every live run; degrades to ``fast``
  when NumPy is missing or a run is not batchable;
* the ``async`` engine (:mod:`repro.simulation.async_engine`) — the
  same communication-closed round semantics layered over an
  asynchronous message-passing network with randomised per-message
  delays.
"""

from repro.simulation.async_engine import (
    AsyncSimulationConfig,
    derive_network_seed,
    run_algorithm_async,
    run_consensus_async,
)
from repro.simulation.backends import (
    AsyncBackend,
    BatchBackend,
    EngineBackend,
    FastBackend,
    ReferenceBackend,
    available_backends,
    get_backend,
    register_backend,
    run_simulation,
    run_simulations_batched,
)
from repro.simulation.batch_engine import (
    SimulationRequest,
    batch_supported,
    numpy_available,
    run_algorithm_batch,
)
from repro.simulation.fast_engine import fast_supported, run_algorithm_fast
from repro.simulation.engine import (
    SimulationConfig,
    SimulationResult,
    execute_round,
    run_algorithm,
    run_consensus,
    run_machine,
    run_many,
)
from repro.simulation.metrics import RunMetrics, metrics_from_collection
from repro.simulation.network import (
    AsyncNetwork,
    DelayModel,
    ExponentialDelay,
    NetworkMessage,
    NoDelay,
    UniformDelay,
)
from repro.simulation.trace import (
    ReplayAdversary,
    collection_from_dict,
    collection_to_dict,
    load_trace,
    save_trace,
)

__all__ = [
    "AsyncBackend",
    "AsyncNetwork",
    "AsyncSimulationConfig",
    "BatchBackend",
    "DelayModel",
    "EngineBackend",
    "ExponentialDelay",
    "FastBackend",
    "NetworkMessage",
    "NoDelay",
    "ReferenceBackend",
    "ReplayAdversary",
    "RunMetrics",
    "SimulationConfig",
    "SimulationRequest",
    "SimulationResult",
    "UniformDelay",
    "available_backends",
    "batch_supported",
    "collection_from_dict",
    "collection_to_dict",
    "derive_network_seed",
    "execute_round",
    "fast_supported",
    "get_backend",
    "load_trace",
    "metrics_from_collection",
    "numpy_available",
    "register_backend",
    "run_algorithm",
    "run_algorithm_async",
    "run_algorithm_batch",
    "run_algorithm_fast",
    "run_consensus",
    "run_consensus_async",
    "run_machine",
    "run_many",
    "run_simulation",
    "run_simulations_batched",
    "save_trace",
]

"""Run metrics: what the benchmark harness measures about each run.

The paper's evaluation is about *which parameterisations solve consensus
under which communication assumptions* and *how fast* (number of rounds
to decision), so the metrics collected here centre on decision latency
and on the amount of loss/corruption the environment injected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.heardof import HeardOfCollection
from repro.core.process import ProcessId


@dataclass
class RunMetrics:
    """Aggregate measurements of a single simulated run."""

    n: int
    rounds_executed: int = 0
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    messages_corrupted: int = 0
    decision_rounds: Dict[ProcessId, int] = field(default_factory=dict)
    corruption_per_round: List[int] = field(default_factory=list)
    omission_per_round: List[int] = field(default_factory=list)

    # -- derived -----------------------------------------------------------------
    @property
    def first_decision_round(self) -> Optional[int]:
        if not self.decision_rounds:
            return None
        return min(self.decision_rounds.values())

    @property
    def last_decision_round(self) -> Optional[int]:
        if not self.decision_rounds:
            return None
        return max(self.decision_rounds.values())

    @property
    def decided_count(self) -> int:
        return len(self.decision_rounds)

    @property
    def all_decided(self) -> bool:
        return self.decided_count == self.n

    @property
    def corruption_rate(self) -> float:
        """Fraction of sent messages that were delivered corrupted."""
        if self.messages_sent == 0:
            return 0.0
        return self.messages_corrupted / self.messages_sent

    @property
    def omission_rate(self) -> float:
        """Fraction of sent messages that were not delivered."""
        if self.messages_sent == 0:
            return 0.0
        return self.messages_dropped / self.messages_sent

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary used by the experiment reports and benchmarks."""
        return {
            "n": self.n,
            "rounds_executed": self.rounds_executed,
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "messages_corrupted": self.messages_corrupted,
            "decided_count": self.decided_count,
            "first_decision_round": self.first_decision_round,
            "last_decision_round": self.last_decision_round,
            "corruption_rate": self.corruption_rate,
            "omission_rate": self.omission_rate,
        }


def metrics_from_collection(
    collection: HeardOfCollection,
    decision_rounds: Dict[ProcessId, int],
    include_profiles: bool = True,
) -> RunMetrics:
    """Build :class:`RunMetrics` from a recorded heard-of collection.

    ``include_profiles=False`` is the fast path used by campaign sweeps:
    the per-round corruption/omission profile lists are left empty (the
    scalar totals are always populated), saving one full pass over the
    collection per run.
    """
    n = collection.n
    rounds = collection.num_rounds
    sent = n * n * rounds
    dropped = collection.total_omissions()
    corrupted = collection.total_corruptions()
    delivered = sent - dropped
    return RunMetrics(
        n=n,
        rounds_executed=rounds,
        messages_sent=sent,
        messages_delivered=delivered,
        messages_dropped=dropped,
        messages_corrupted=corrupted,
        decision_rounds=dict(decision_rounds),
        corruption_per_round=collection.corruption_profile() if include_profiles else [],
        omission_per_round=(
            [record.total_omissions() for record in collection] if include_profiles else []
        ),
    )

"""The fast lockstep backend: whole rounds on bitmask kernels.

Executes the same communication-closed round semantics as the reference
engine (:mod:`repro.simulation.engine`) but represents a round as flat
data — per-sender broadcast payloads, per-receiver ``HO``/``SHO``
bitmasks, corrupted payloads only where they exist — instead of
dict-of-dict message matrices and per-process objects:

* the algorithm runs as a :class:`repro.algorithms.kernels.StepKernel`
  over flat state arrays,
* the adversary plans rounds at the mask level
  (:mod:`repro.adversary.plan`), natively where a planner is
  registered and through the matrix adapter otherwise,
* the heard-of collection records
  :class:`~repro.core.heardof.MaskRoundRecord` rounds, which expose the
  identical read API (and materialise full reception vectors lazily).

The backend is *semantically invisible*: decisions, decision rounds and
the per-round ``HO``/``SHO``/``AHO`` sets are identical to the
reference engine for every supported run, so records, reduced records
and cache rows are byte-identical and cache entries are shared between
backends.  :func:`fast_supported` says whether a run can take this
path; the dispatcher (:mod:`repro.simulation.backends`) falls back to
the reference engine otherwise.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from repro.adversary.base import Adversary, ReliableAdversary
from repro.adversary.plan import planner_for
from repro.algorithms.kernels import has_kernel, make_kernel
from repro.core.algorithm import HOAlgorithm
from repro.core.consensus import ConsensusSpec, DecisionRecord
from repro.core.heardof import HeardOfCollection, MaskRoundRecord
from repro.core.process import ProcessId, Value
from repro.simulation.engine import RoundObserver, SimulationConfig, SimulationResult
from repro.simulation.metrics import metrics_from_collection


def fast_supported(
    algorithm: HOAlgorithm,
    adversary: Optional[Adversary] = None,
    config: Optional[SimulationConfig] = None,
    observers: Optional[Sequence[RoundObserver]] = None,
) -> bool:
    """Whether a run can execute on the fast backend.

    Requires a registered step kernel for the algorithm's exact class,
    no per-round state snapshots (kernels keep flat state, not process
    objects) and no observers (observers receive process objects every
    round).  Every adversary is supported — those without a native
    planner run through the matrix adapter.
    """
    if observers:
        return False
    # No config means the engine default, which records state snapshots.
    if config is None or config.record_states:
        return False
    return has_kernel(algorithm)


def run_algorithm_fast(
    algorithm: HOAlgorithm,
    initial_values: Mapping[ProcessId, Value],
    adversary: Optional[Adversary] = None,
    config: Optional[SimulationConfig] = None,
    observers: Optional[Sequence[RoundObserver]] = None,
    spec: Optional[ConsensusSpec] = None,
) -> SimulationResult:
    """Fast-backend counterpart of :func:`repro.simulation.engine.run_algorithm`.

    Raises :class:`ValueError` when the run is not fast-capable; use
    :func:`fast_supported` (or the ``backend="fast"`` dispatcher, which
    falls back automatically) to avoid the exception.
    """
    adversary = adversary if adversary is not None else ReliableAdversary()
    config = config if config is not None else SimulationConfig()
    spec = spec if spec is not None else ConsensusSpec()

    if not fast_supported(algorithm, adversary, config, observers):
        raise ValueError(
            f"run is not fast-capable (algorithm={algorithm.describe()}, "
            f"record_states={config.record_states}, observers={bool(observers)}); "
            f"use the reference backend"
        )

    # Same construction (and the same validation errors) as the
    # reference engine; the objects only receive the final kernel state.
    processes = algorithm.create_all(initial_values)
    n = len(processes)
    kernel = make_kernel(algorithm, initial_values)
    assert kernel is not None  # guaranteed by fast_supported
    planner = planner_for(adversary, n)
    collection = HeardOfCollection(n)
    full = (1 << n) - 1
    full_tuple = (full,) * n
    zeros_tuple = (0,) * n
    nones_tuple = (None,) * n

    rounds_executed = 0
    stop_when_all_decided = config.stop_when_all_decided
    min_rounds = config.min_rounds
    for round_num in range(1, config.max_rounds + 1):
        sent = kernel.sends(round_num)
        plan = planner.plan_round(round_num, sent)

        drop_masks = plan.drop_masks
        corrupt_masks = plan.corrupt_masks
        if drop_masks == zeros_tuple and corrupt_masks == zeros_tuple:
            # Perfect round: every receiver's multiset IS the sent list
            # and the record assembles from shared tuples — no per-
            # receiver mask walk, no ho/sho/corrupt list builds.
            for receiver in range(n):
                kernel.step(round_num, receiver, sent)
            collection.append(
                MaskRoundRecord(
                    round_num=round_num,
                    n=n,
                    sent=tuple(sent),
                    ho_masks=full_tuple,
                    sho_masks=full_tuple,
                    corrupt=nones_tuple,
                )
            )
            rounds_executed = round_num
            if stop_when_all_decided and round_num >= min_rounds and kernel.all_decided:
                break
            continue

        ho_masks: List[int] = []
        sho_masks: List[int] = []
        corrupt: List[Optional[dict]] = []
        corrupt_values = plan.corrupt_values
        for receiver in range(n):
            ho = full & ~drop_masks[receiver]
            cmask = corrupt_masks[receiver] & ho
            if cmask:
                cvals = corrupt_values[receiver]
                kept = {}
                values = []
                mask = ho
                while mask:
                    low = mask & -mask
                    sender = low.bit_length() - 1
                    mask ^= low
                    if low & cmask:
                        payload = cvals[sender]
                        kept[sender] = payload
                    else:
                        payload = sent[sender]
                    values.append(payload)
                corrupt.append(kept)
            elif ho == full:
                values = sent
                corrupt.append(None)
            else:
                values = []
                mask = ho
                while mask:
                    low = mask & -mask
                    values.append(sent[low.bit_length() - 1])
                    mask ^= low
                corrupt.append(None)
            ho_masks.append(ho)
            sho_masks.append(ho & ~cmask)
            kernel.step(round_num, receiver, values)

        collection.append(
            MaskRoundRecord(
                round_num=round_num,
                n=n,
                sent=tuple(sent),
                ho_masks=tuple(ho_masks),
                sho_masks=tuple(sho_masks),
                corrupt=tuple(corrupt),
            )
        )
        rounds_executed = round_num

        if stop_when_all_decided and round_num >= min_rounds and kernel.all_decided:
            break

    kernel.apply_to(processes)

    decisions: List[DecisionRecord] = [
        DecisionRecord(
            process=pid, value=kernel.decisions[pid], round_num=kernel.decision_rounds[pid]
        )
        for pid in range(n)
        if kernel.decisions[pid] is not None
    ]
    outcome = spec.evaluate(
        initial_values=initial_values,
        decisions=decisions,
        rounds_executed=rounds_executed,
        metadata={
            "algorithm": algorithm.describe(),
            "adversary": adversary.describe(),
        },
    )
    metrics = metrics_from_collection(
        collection,
        {d.process: d.round_num for d in decisions},
        include_profiles=config.record_states,
    )

    return SimulationResult(
        processes=processes,
        collection=collection,
        outcome=outcome,
        metrics=metrics,
        config=config,
        algorithm_name=algorithm.describe(),
        adversary_name=adversary.describe(),
        metadata={"engine": "fast"},
    )

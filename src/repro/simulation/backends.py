"""Pluggable engine backends behind one :class:`EngineBackend` protocol.

The simulation stack has four execution substrates with identical
round semantics:

* ``reference`` — the lockstep loop of :mod:`repro.simulation.engine`;
  deterministic, supports everything (observers, state snapshots), the
  semantic baseline every other backend is tested against.
* ``fast`` — :mod:`repro.simulation.fast_engine`; whole rounds on
  bitmask kernels and mask-level adversary plans.  Only algorithms
  with a registered step kernel, no observers, no state snapshots;
  unsupported runs **fall back to the reference backend
  automatically**, so ``backend="fast"`` is always safe to request.
* ``batch`` — :mod:`repro.simulation.batch_engine`; entire seed sweeps
  vectorised across the run axis with NumPy.  The only *batch-capable*
  backend (``supports_batch``/``run_batch``): handed a whole group of
  runs it executes them simultaneously.  NumPy is optional — without
  it the backend stays registered but supports nothing, so every run
  degrades to the ``fast`` fallback.
* ``async`` — :mod:`repro.simulation.async_engine`; the same rounds
  over an asyncio message-passing network.

:func:`run_simulation` is the single entry point that selects a backend
by name (or accepts an :class:`EngineBackend` instance — the instance
is used as-is, never re-resolved through the registry, even when its
``name`` shadows a registered backend); the campaign runner
(``CampaignRunner(backend=...)``, ``CampaignSpec.backend``) and the CLI
(``repro-ho run/campaign --backend``) route through it.
:func:`run_simulations_batched` is its batch-first sibling: it hands
every run the chosen backend can take to ``run_batch`` as one group and
falls back to per-run dispatch for the rest, preserving request order.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Protocol, Sequence, Union, runtime_checkable

from repro.adversary.base import Adversary
from repro.core.algorithm import HOAlgorithm
from repro.core.consensus import ConsensusSpec
from repro.core.process import ProcessId, Value
from repro.core.registries import guard_builtin_overwrite, unknown_key_error
from repro.simulation.batch_engine import (
    SimulationRequest,
    batch_supported,
    numpy_available,
    run_algorithm_batch,
)
from repro.simulation.engine import (
    RoundObserver,
    SimulationConfig,
    SimulationResult,
    run_algorithm,
)
from repro.simulation.fast_engine import fast_supported, run_algorithm_fast


@runtime_checkable
class EngineBackend(Protocol):
    """One execution substrate for communication-closed HO rounds.

    Implementations realise the same round semantics; those that are
    also *result-identical* to the reference engine for every supported
    run (same decisions, decision rounds and per-round
    ``HO``/``SHO``/``AHO`` sets) declare it via
    :attr:`equivalent_to_reference`, which gates participation in the
    backend-independent result cache.

    ``supports_batch``/``run_batch`` are *optional* members: the
    dispatcher probes them with ``getattr`` (default: not
    batch-capable), so existing backends that predate the batch API
    keep working unchanged.  A backend that executes whole groups of
    runs at once sets ``supports_batch = True`` and overrides
    :meth:`run_batch`; the default implementation is the single-run
    loop.
    """

    #: Registry name (``backend=`` argument value).
    name: str

    #: Name of the backend to fall back to when :meth:`supports` says
    #: no, or ``None`` to raise instead.
    fallback: Optional[str]

    #: True iff the backend is *result-identical* to the reference
    #: engine for every supported run (same decisions, rounds and
    #: HO/SHO/AHO sets).  Only such backends may share the
    #: backend-independent result cache: the campaign runner refuses to
    #: cache records produced by (or serve cached records to) backends
    #: where this is False.  The ``async`` engine is the canonical
    #: False case — its adversary sees submissions in event-loop
    #: arrival order, so seeded fault schedules can diverge from the
    #: lockstep engines.
    equivalent_to_reference: bool

    #: Whether :meth:`run_batch` executes whole run groups natively.
    #: Optional — absent means False.
    supports_batch: bool = False

    def supports(
        self,
        algorithm: HOAlgorithm,
        adversary: Optional[Adversary],
        config: Optional[SimulationConfig],
        observers: Optional[Sequence[RoundObserver]],
    ) -> bool:
        """Whether this backend can execute the run natively."""
        ...

    def run(
        self,
        algorithm: HOAlgorithm,
        initial_values: Mapping[ProcessId, Value],
        adversary: Optional[Adversary],
        config: Optional[SimulationConfig],
        observers: Optional[Sequence[RoundObserver]],
        spec: Optional[ConsensusSpec],
    ) -> SimulationResult:
        """Execute the run and return its full result."""
        ...

    def run_batch(
        self, requests: Sequence[SimulationRequest]
    ) -> List[SimulationResult]:
        """Execute a batch of runs, in order.

        Default implementation: the single-run loop through
        :func:`run_simulation` (honouring this backend's fallback
        chain).  Batch-capable backends override this with a genuinely
        simultaneous execution.
        """
        return [
            run_simulation(
                algorithm=request.algorithm,
                initial_values=request.initial_values,
                adversary=request.adversary,
                config=request.config,
                observers=request.observers,
                spec=request.spec,
                backend=self,
            )
            for request in requests
        ]


class ReferenceBackend:
    """The lockstep loop: supports every algorithm, adversary and option."""

    name = "reference"
    fallback: Optional[str] = None
    equivalent_to_reference = True

    def supports(self, algorithm, adversary, config, observers) -> bool:
        return True

    def run(self, algorithm, initial_values, adversary, config, observers, spec):
        return run_algorithm(
            algorithm=algorithm,
            initial_values=initial_values,
            adversary=adversary,
            config=config,
            observers=observers,
            spec=spec,
        )


class FastBackend:
    """Bitmask kernel rounds; falls back to ``reference`` when unsupported."""

    name = "fast"
    fallback: Optional[str] = "reference"
    equivalent_to_reference = True

    def supports(self, algorithm, adversary, config, observers) -> bool:
        return fast_supported(algorithm, adversary, config, observers)

    def run(self, algorithm, initial_values, adversary, config, observers, spec):
        return run_algorithm_fast(
            algorithm=algorithm,
            initial_values=initial_values,
            adversary=adversary,
            config=config,
            observers=observers,
            spec=spec,
        )


class BatchBackend:
    """Vectorised NumPy sweeps; falls back to ``fast`` when unsupported.

    Always registered — when NumPy is not importable, :meth:`supports`
    answers False for every run and the dispatcher degrades to the
    ``fast`` fallback, so ``--backend batch`` is safe to request in any
    environment and the CLI choices stay stable.
    """

    name = "batch"
    fallback: Optional[str] = "fast"
    equivalent_to_reference = True
    supports_batch = True

    def supports(self, algorithm, adversary, config, observers) -> bool:
        return batch_supported(algorithm, adversary, config, observers)

    def run(self, algorithm, initial_values, adversary, config, observers, spec):
        return self.run_batch(
            [
                SimulationRequest(
                    algorithm=algorithm,
                    initial_values=initial_values,
                    adversary=adversary,
                    config=config,
                    observers=observers,
                    spec=spec,
                )
            ]
        )[0]

    def run_batch(self, requests: Sequence[SimulationRequest]) -> List[SimulationResult]:
        return run_algorithm_batch(requests)


class AsyncBackend:
    """The asyncio engine driven to completion from synchronous code."""

    name = "async"
    fallback: Optional[str] = None
    equivalent_to_reference = False

    def supports(self, algorithm, adversary, config, observers) -> bool:
        # The coordinator has no observer hook (processes run as tasks),
        # and it never records post-transition snapshots, so a
        # record_states run would silently return empty states_after —
        # refuse it instead (config=None means the record_states default).
        if observers:
            return False
        return config is not None and not config.record_states

    def run(self, algorithm, initial_values, adversary, config, observers, spec):
        import asyncio

        from repro.simulation.async_engine import AsyncSimulationConfig, run_algorithm_async

        if config is None:
            async_config = AsyncSimulationConfig()
        elif isinstance(config, AsyncSimulationConfig):
            async_config = config
        else:
            async_config = AsyncSimulationConfig(
                max_rounds=config.max_rounds,
                min_rounds=config.min_rounds,
                stop_when_all_decided=config.stop_when_all_decided,
                record_states=config.record_states,
            )
        return asyncio.run(
            run_algorithm_async(
                algorithm=algorithm,
                initial_values=initial_values,
                adversary=adversary,
                config=async_config,
                spec=spec,
            )
        )


_BACKENDS: Dict[str, EngineBackend] = {
    backend.name: backend
    for backend in (ReferenceBackend(), FastBackend(), BatchBackend(), AsyncBackend())
}

#: The backends that ship with the package; :func:`register_backend`
#: refuses to silently shadow these names.
_BUILTIN_BACKEND_NAMES = frozenset(_BACKENDS)


def available_backends() -> list:
    """The backend names accepted by :func:`run_simulation`."""
    return sorted(_BACKENDS)


def register_backend(backend=None, *, overwrite: bool = False):
    """Register a backend under ``backend.name``.

    Accepts an :class:`EngineBackend` instance or a zero-argument
    backend class, directly (``register_backend(MyBackend())``) or as a
    class decorator (``@register_backend``, or
    ``@register_backend(overwrite=True)``); either form returns its
    argument.  Registering over a built-in name (``reference``,
    ``fast``, ``batch``, ``async``) raises unless ``overwrite=True`` is
    passed explicitly — silently shadowing ``fast`` would change
    semantics for every caller in the process.

    The registry is *per process*: worker processes of a parallel
    :class:`~repro.runner.executor.CampaignRunner` re-import this module
    and only see registrations performed at import time.  To use a
    custom backend with ``jobs > 1``, register it at module level in a
    module that the workers import (e.g. next to the backend class),
    not from ``if __name__ == "__main__"`` code.
    """

    def _register(obj):
        instance = obj() if isinstance(obj, type) else obj
        guard_builtin_overwrite(
            "engine backend",
            repr(instance.name),
            instance.name in _BUILTIN_BACKEND_NAMES,
            overwrite,
        )
        _BACKENDS[instance.name] = instance
        return obj

    if backend is None:
        return _register
    return _register(backend)


def get_backend(name: str) -> EngineBackend:
    """Look up a backend by name, with a did-you-mean on typos."""
    backend = _BACKENDS.get(name)
    if backend is None:
        raise unknown_key_error("engine backend", name, _BACKENDS)
    return backend


def _resolve_backend(backend: Union[str, EngineBackend]) -> EngineBackend:
    """Resolve a name through the registry; use an instance as-is.

    An instance is never re-resolved by name — a backend whose ``name``
    shadows a registered one still runs itself (its fallback chain, if
    taken, resolves through the registry as documented).
    """
    return get_backend(backend) if isinstance(backend, str) else backend


def run_simulation(
    algorithm: HOAlgorithm,
    initial_values: Mapping[ProcessId, Value],
    adversary: Optional[Adversary] = None,
    config: Optional[SimulationConfig] = None,
    observers: Optional[Sequence[RoundObserver]] = None,
    spec: Optional[ConsensusSpec] = None,
    backend: Union[str, EngineBackend] = "reference",
) -> SimulationResult:
    """Run one simulation on the selected engine backend.

    ``backend`` is a registry name (``"reference"``, ``"fast"``,
    ``"batch"``, ``"async"``) or an :class:`EngineBackend` instance
    (used as-is, never re-resolved through the registry).  A backend
    that does not support the run either falls back (``batch`` →
    ``fast`` → ``reference``) or raises :class:`ValueError`.
    """
    chosen = _resolve_backend(backend)
    visited = set()
    while not chosen.supports(algorithm, adversary, config, observers):
        visited.add(chosen.name)
        if chosen.fallback is None:
            raise ValueError(
                f"backend {chosen.name!r} does not support this run "
                f"(algorithm={algorithm.describe()}, observers={bool(observers)}, "
                f"record_states={config.record_states if config else 'default'}) "
                f"and has no fallback"
            )
        if chosen.fallback in visited:
            raise ValueError(
                f"backend fallback cycle: {' -> '.join(sorted(visited))} "
                f"-> {chosen.fallback}; no registered backend supports this run"
            )
        chosen = get_backend(chosen.fallback)
    return chosen.run(algorithm, initial_values, adversary, config, observers, spec)


def run_simulations_batched(
    requests: Sequence[SimulationRequest],
    backend: Union[str, EngineBackend] = "batch",
) -> List[SimulationResult]:
    """Run many simulations, batching wherever the backend allows.

    The batch-first sibling of :func:`run_simulation`: requests the
    chosen backend both batch-executes (``supports_batch``) and
    supports are handed to :meth:`~EngineBackend.run_batch` as one
    group; every other request dispatches per run through
    :func:`run_simulation` on the same backend, walking its fallback
    chain as usual.  Results come back in request order and are
    identical to per-run execution.

    A non-batch-capable backend (or a numpy-less environment, where the
    ``batch`` backend supports nothing) degrades to the plain per-run
    loop — the call is always safe.
    """
    chosen = _resolve_backend(backend)
    results: List[Optional[SimulationResult]] = [None] * len(requests)
    batchable: List[int] = []
    rest: List[int] = []
    can_batch = bool(getattr(chosen, "supports_batch", False))
    for index, request in enumerate(requests):
        if can_batch and chosen.supports(
            request.algorithm, request.adversary, request.config, request.observers
        ):
            batchable.append(index)
        else:
            rest.append(index)
    if batchable:
        for index, result in zip(
            batchable, chosen.run_batch([requests[i] for i in batchable])
        ):
            results[index] = result
    for index in rest:
        request = requests[index]
        results[index] = run_simulation(
            algorithm=request.algorithm,
            initial_values=request.initial_values,
            adversary=request.adversary,
            config=request.config,
            observers=request.observers,
            spec=request.spec,
            backend=chosen,
        )
    return results  # type: ignore[return-value]

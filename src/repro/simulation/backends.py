"""Pluggable engine backends behind one :class:`EngineBackend` protocol.

The simulation stack has three execution substrates with identical
round semantics:

* ``reference`` — the lockstep loop of :mod:`repro.simulation.engine`;
  deterministic, supports everything (observers, state snapshots), the
  semantic baseline every other backend is tested against.
* ``fast`` — :mod:`repro.simulation.fast_engine`; whole rounds on
  bitmask kernels and mask-level adversary plans.  Only algorithms
  with a registered step kernel, no observers, no state snapshots;
  unsupported runs **fall back to the reference backend
  automatically**, so ``backend="fast"`` is always safe to request.
* ``async`` — :mod:`repro.simulation.async_engine`; the same rounds
  over an asyncio message-passing network.

:func:`run_simulation` is the single entry point that selects a backend
by name (or accepts an :class:`EngineBackend` instance); the campaign
runner (``CampaignRunner(backend=...)``, ``CampaignSpec.backend``) and
the CLI (``repro-ho run/campaign --backend``) route through it.  The
protocol is also the seam for future *distributed* execution: a remote
backend only has to implement ``supports``/``run``.
"""

from __future__ import annotations

import difflib
from typing import Dict, Mapping, Optional, Protocol, Sequence, Union, runtime_checkable

from repro.adversary.base import Adversary
from repro.core.algorithm import HOAlgorithm
from repro.core.consensus import ConsensusSpec
from repro.core.process import ProcessId, Value
from repro.simulation.engine import (
    RoundObserver,
    SimulationConfig,
    SimulationResult,
    run_algorithm,
)
from repro.simulation.fast_engine import fast_supported, run_algorithm_fast


@runtime_checkable
class EngineBackend(Protocol):
    """One execution substrate for communication-closed HO rounds.

    Implementations realise the same round semantics; those that are
    also *result-identical* to the reference engine for every supported
    run (same decisions, decision rounds and per-round
    ``HO``/``SHO``/``AHO`` sets) declare it via
    :attr:`equivalent_to_reference`, which gates participation in the
    backend-independent result cache.
    """

    #: Registry name (``backend=`` argument value).
    name: str

    #: Name of the backend to fall back to when :meth:`supports` says
    #: no, or ``None`` to raise instead.
    fallback: Optional[str]

    #: True iff the backend is *result-identical* to the reference
    #: engine for every supported run (same decisions, rounds and
    #: HO/SHO/AHO sets).  Only such backends may share the
    #: backend-independent result cache: the campaign runner refuses to
    #: cache records produced by (or serve cached records to) backends
    #: where this is False.  The ``async`` engine is the canonical
    #: False case — its adversary sees submissions in event-loop
    #: arrival order, so seeded fault schedules can diverge from the
    #: lockstep engines.
    equivalent_to_reference: bool

    def supports(
        self,
        algorithm: HOAlgorithm,
        adversary: Optional[Adversary],
        config: Optional[SimulationConfig],
        observers: Optional[Sequence[RoundObserver]],
    ) -> bool:
        """Whether this backend can execute the run natively."""
        ...

    def run(
        self,
        algorithm: HOAlgorithm,
        initial_values: Mapping[ProcessId, Value],
        adversary: Optional[Adversary],
        config: Optional[SimulationConfig],
        observers: Optional[Sequence[RoundObserver]],
        spec: Optional[ConsensusSpec],
    ) -> SimulationResult:
        """Execute the run and return its full result."""
        ...


class ReferenceBackend:
    """The lockstep loop: supports every algorithm, adversary and option."""

    name = "reference"
    fallback: Optional[str] = None
    equivalent_to_reference = True

    def supports(self, algorithm, adversary, config, observers) -> bool:
        return True

    def run(self, algorithm, initial_values, adversary, config, observers, spec):
        return run_algorithm(
            algorithm=algorithm,
            initial_values=initial_values,
            adversary=adversary,
            config=config,
            observers=observers,
            spec=spec,
        )


class FastBackend:
    """Bitmask kernel rounds; falls back to ``reference`` when unsupported."""

    name = "fast"
    fallback: Optional[str] = "reference"
    equivalent_to_reference = True

    def supports(self, algorithm, adversary, config, observers) -> bool:
        return fast_supported(algorithm, adversary, config, observers)

    def run(self, algorithm, initial_values, adversary, config, observers, spec):
        return run_algorithm_fast(
            algorithm=algorithm,
            initial_values=initial_values,
            adversary=adversary,
            config=config,
            observers=observers,
            spec=spec,
        )


class AsyncBackend:
    """The asyncio engine driven to completion from synchronous code."""

    name = "async"
    fallback: Optional[str] = None
    equivalent_to_reference = False

    def supports(self, algorithm, adversary, config, observers) -> bool:
        # The coordinator has no observer hook (processes run as tasks),
        # and it never records post-transition snapshots, so a
        # record_states run would silently return empty states_after —
        # refuse it instead (config=None means the record_states default).
        if observers:
            return False
        return config is not None and not config.record_states

    def run(self, algorithm, initial_values, adversary, config, observers, spec):
        import asyncio

        from repro.simulation.async_engine import AsyncSimulationConfig, run_algorithm_async

        if config is None:
            async_config = AsyncSimulationConfig()
        elif isinstance(config, AsyncSimulationConfig):
            async_config = config
        else:
            async_config = AsyncSimulationConfig(
                max_rounds=config.max_rounds,
                min_rounds=config.min_rounds,
                stop_when_all_decided=config.stop_when_all_decided,
                record_states=config.record_states,
            )
        return asyncio.run(
            run_algorithm_async(
                algorithm=algorithm,
                initial_values=initial_values,
                adversary=adversary,
                config=async_config,
                spec=spec,
            )
        )


_BACKENDS: Dict[str, EngineBackend] = {
    backend.name: backend for backend in (ReferenceBackend(), FastBackend(), AsyncBackend())
}


def available_backends() -> list:
    """The backend names accepted by :func:`run_simulation`."""
    return sorted(_BACKENDS)


def register_backend(backend: EngineBackend) -> None:
    """Register (or replace) a backend under ``backend.name``.

    The registry is *per process*: worker processes of a parallel
    :class:`~repro.runner.executor.CampaignRunner` re-import this module
    and only see registrations performed at import time.  To use a
    custom backend with ``jobs > 1``, register it at module level in a
    module that the workers import (e.g. next to the backend class),
    not from ``if __name__ == "__main__"`` code.
    """
    _BACKENDS[backend.name] = backend


def get_backend(name: str) -> EngineBackend:
    """Look up a backend by name, with a did-you-mean on typos."""
    backend = _BACKENDS.get(name)
    if backend is None:
        suggestion = difflib.get_close_matches(name, _BACKENDS, n=1)
        hint = f" (did you mean {suggestion[0]!r}?)" if suggestion else ""
        raise ValueError(
            f"unknown engine backend {name!r}{hint}; "
            f"available: {', '.join(available_backends())}"
        )
    return backend


def run_simulation(
    algorithm: HOAlgorithm,
    initial_values: Mapping[ProcessId, Value],
    adversary: Optional[Adversary] = None,
    config: Optional[SimulationConfig] = None,
    observers: Optional[Sequence[RoundObserver]] = None,
    spec: Optional[ConsensusSpec] = None,
    backend: Union[str, EngineBackend] = "reference",
) -> SimulationResult:
    """Run one simulation on the selected engine backend.

    ``backend`` is a registry name (``"reference"``, ``"fast"``,
    ``"async"``) or an :class:`EngineBackend` instance.  A backend that
    does not support the run either falls back (``fast`` →
    ``reference``) or raises :class:`ValueError`.
    """
    chosen = get_backend(backend) if isinstance(backend, str) else backend
    visited = set()
    while not chosen.supports(algorithm, adversary, config, observers):
        visited.add(chosen.name)
        if chosen.fallback is None:
            raise ValueError(
                f"backend {chosen.name!r} does not support this run "
                f"(algorithm={algorithm.describe()}, observers={bool(observers)}, "
                f"record_states={config.record_states if config else 'default'}) "
                f"and has no fallback"
            )
        if chosen.fallback in visited:
            raise ValueError(
                f"backend fallback cycle: {' -> '.join(sorted(visited))} "
                f"-> {chosen.fallback}; no registered backend supports this run"
            )
        chosen = get_backend(chosen.fallback)
    return chosen.run(algorithm, initial_values, adversary, config, observers, spec)

"""The batch backend: whole seed sweeps as vectorised NumPy kernels.

The fast engine (:mod:`repro.simulation.fast_engine`) removed the
per-message dict traffic of the reference engine but still executes one
run at a time: a 1000-seed campaign cell pays the per-receiver Python
``Counter`` loop 1000 times.  This module executes an entire batch of
runs *simultaneously*:

* process state lives in NumPy arrays shaped ``(runs, n)`` of integer
  *value codes* (a per-group codebook maps arbitrary hashable payloads
  to dense codes and back);
* reception is a ``(runs, n, n)`` boolean matrix built from the packed
  HO bitmasks of each run's :class:`~repro.adversary.plan.RoundPlan`;
* the ``A_{T,E}`` and ``U_{T,E,alpha}`` step kernels are vectorised
  across the run axis — received-multiset counts come from one stacked
  ``matmul`` of the reception matrix with one-hot sent codes, sparse
  corruption adjustments are applied with :func:`numpy.add.at`, and the
  exact ``min``-by-key tie-breaks of the scalar kernels are reproduced
  with per-code rank arrays (one for the value order of ``_sort_key``,
  one for the decision order of ``_decision_key``);
* runs exit early through an *active-runs* mask: a run whose processes
  have all decided stops planning rounds, stops appending records and
  is never mutated again, exactly like its single-run execution.

Adversary planning is two-tier.  Runs whose exact adversary class has
a registered :class:`~repro.adversary.plan.BatchPlanner` are planned
*array-at-a-time*: one planner instance covers every such run in the
group, producing per-round drop bit-matrices and corrupt-edge COO
arrays that this engine consumes directly — ``HO`` masks come out of
one :func:`numpy.packbits` pass and reception rows are scattered in
bulk, with each run's RNG stream still consumed bit-exactly (via the
:mod:`~repro.adversary.rng_bridge` where draws vectorise, scalar
replay where they cannot).  Every other run keeps its own per-run
RNG-stream-exact :class:`~repro.adversary.plan.MaskPlanner`, called
once per round per active run.  Either way fault schedules (and
therefore the ``HO``/``SHO`` collections) are bit-for-bit identical to
the other lockstep engines; the ``REPRO_BATCH_PLANNING`` environment
knob (``off`` to disable) forces the per-run tier so CI can diff the
two paths.  For :class:`~repro.adversary.base.ReliableAdversary`
planning is free and the whole round is a single vectorised step.

Reception has two representations.  Below ``n = 128`` it is the dense
``(runs, n, n)`` float32 matrix described above and counts come from the
stacked ``matmul``.  At larger ``n`` (or with ``REPRO_BATCH_PACKED=on``)
the engine switches to the *packed tier*: reception is carried as
``(runs, n, ceil(n / 64))`` uint64 words in the
:func:`~repro.core.heardof.pack_mask_rows` layout, senders of each value
code pack into per-run bit-planes, and ``count(v heard by p)`` is
``popcount(recv_words & plane)`` — ~32x less memory and O(n/64) word
ops per tally instead of O(n) floats.  Batch planners emit drop
schedules directly as packed words (scattering ``edge -> word index +
bit shift``), so no dense ``(m, n, n)`` intermediate is ever built.  On
top of either tier, the ``REPRO_BATCH_MEMORY_BUDGET`` knob (bytes, with
``k``/``m``/``g`` suffixes) chunks a group's *run axis* so the peak
working set stays under budget; per-run RNG streams make the split
invisible in the records, and the runner reports splits as its
``batch_chunks`` stat.

Like the fast engine, the backend is *semantically invisible*:
decisions, decision rounds, per-round ``HO``/``SHO``/``AHO`` sets,
payloads and final process states are identical to the reference engine
for every supported run, so records and reduced records are
byte-identical and cache entries are shared across backends — asserted
by the differential grid in
``tests/simulation/test_batch_engine.py``.

NumPy is an *optional* dependency: the module imports without it,
:func:`batch_supported` then answers ``False`` for every run, and the
``batch`` backend (which is always registered) degrades to its ``fast``
fallback.

Two rare value shapes force a run group off the vectorised path and
through a per-run fast-engine replay (after resetting each adversary's
seeded schedule): payloads that are ``==``-equal across runs but of
different types (``1`` vs ``True`` — the scalar engines keep each run's
own first-encountered representative, a global codebook cannot), and
payload domains that are not totally ordered under the kernels' sort
keys (``nan``).  Both are detected, never silently mis-executed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

try:  # NumPy is optional: without it the batch backend just reports
    import numpy as np  # unsupported and the dispatcher falls back.
except ImportError:  # pragma: no cover - exercised by the numpy-less CI leg
    np = None

from repro.adversary.base import Adversary, ReliableAdversary
from repro.adversary.plan import BatchPlanner, MaskPlanner, batch_planner_for, planner_for
from repro.algorithms.kernels import (
    AteKernel,
    UteKernel,
    _decision_key,
    registered_kernel_factory,
)
from repro.algorithms.ute import QUESTION_MARK
from repro.algorithms.voting import _sort_key
from repro.core.algorithm import HOAlgorithm
from repro.core.consensus import ConsensusSpec, DecisionRecord
from repro.core.heardof import (
    HeardOfCollection,
    MaskRoundRecord,
    pack_mask_rows,
    unpack_mask_rows,
    words_per_mask,
    words_to_mask,
)
from repro.core.process import ProcessId, Value
from repro.simulation.engine import RoundObserver, SimulationConfig, SimulationResult
from repro.simulation.fast_engine import fast_supported, run_algorithm_fast
from repro.simulation.metrics import metrics_from_collection


def numpy_available() -> bool:
    """Whether the optional NumPy dependency is importable."""
    return np is not None


#: Below this system size the packed tier's per-word bookkeeping costs
#: more than the dense matmul it replaces; ``REPRO_BATCH_PACKED=auto``
#: switches representations here.
_PACKED_AUTO_MIN_N = 128

if np is not None and not hasattr(np, "bitwise_count"):
    # Pre-2.x NumPy has no popcount ufunc: count per byte through a
    # 256-entry table instead (same result, one extra temp).
    _BYTE_BITS = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def _word_counts(words: "np.ndarray") -> "np.ndarray":
    """Popcount summed over the trailing word axis, as int64.

    ``words`` is a little-endian uint64 array ``(..., W)``; the result
    is the per-row set-bit count ``(...,)`` — the packed tier's
    cardinality primitive (``|HO|``, per-value tallies).
    """
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(words).sum(axis=-1, dtype=np.int64)
    as_bytes = np.ascontiguousarray(words).view(np.uint8)
    return _BYTE_BITS[as_bytes].sum(axis=-1, dtype=np.int64)


def _packed_tier(n: int) -> bool:
    """Whether groups of size ``n`` execute on the packed uint64 tier.

    ``REPRO_BATCH_PACKED`` forces the answer (``on``/``off``); the
    default ``auto`` packs from ``n >= 128``, where reception words are
    ~256x smaller than the dense float matrix, and stays dense below it,
    where the matmul kernel is faster.  Both tiers are byte-identical —
    the differential grid pins them against each other.
    """
    mode = os.environ.get("REPRO_BATCH_PACKED", "auto").strip().lower()
    if mode in {"on", "1", "yes", "true"}:
        return True
    if mode in {"off", "0", "no", "false"}:
        return False
    return n >= _PACKED_AUTO_MIN_N


def _memory_budget_bytes() -> Optional[int]:
    """The run-chunking budget from ``REPRO_BATCH_MEMORY_BUDGET``, in bytes.

    Accepts a plain byte count or a ``k``/``m``/``g`` suffix
    (``512m``, ``2g``).  Unset, empty or non-positive means no budget:
    every group executes as one sweep.
    """
    raw = os.environ.get("REPRO_BATCH_MEMORY_BUDGET", "").strip().lower()
    if not raw:
        return None
    scale = 1
    if raw[-1] in "kmg":
        scale = {"k": 1024, "m": 1024**2, "g": 1024**3}[raw[-1]]
        raw = raw[:-1].strip()
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            "REPRO_BATCH_MEMORY_BUDGET must be a byte count with an "
            f"optional k/m/g suffix, got {os.environ['REPRO_BATCH_MEMORY_BUDGET']!r}"
        ) from None
    budget = int(value * scale)
    return budget if budget > 0 else None


def _per_run_bytes(n: int, packed: bool) -> int:
    """Estimated peak per-run working set of one group member, in bytes.

    Deliberately a coarse model — it only has to make the chunk count
    scale correctly with ``n`` and the representation:

    * packed: the uint64 reception row (``n * W * 8``), one popcount
      band temporary of the same shape, the planner's drop words and
      pad (x4 total), plus per-receiver count/heard columns (~96 bytes
      per receiver covers a dozen value codes at int64).
    * dense: the float32 reception matrix plus the one-hot operand,
      matmul temporaries and count output, ~10 floats per edge.
    """
    if packed:
        return 4 * n * words_per_mask(n) * 8 + 96 * n
    return 10 * n * n * 4


@dataclass
class SimulationRequest:
    """One run of a batch: the argument tuple of ``run_simulation``.

    ``run_batch`` implementations receive a sequence of these;
    :func:`repro.simulation.backends.run_simulations_batched` builds
    them for callers that hold plain argument tuples.
    """

    algorithm: HOAlgorithm
    initial_values: Mapping[ProcessId, Value]
    adversary: Optional[Adversary] = None
    config: Optional[SimulationConfig] = None
    observers: Optional[Sequence[RoundObserver]] = None
    spec: Optional[ConsensusSpec] = None

    def normalised(self) -> "SimulationRequest":
        """A copy with the same defaults the engines apply."""
        return SimulationRequest(
            algorithm=self.algorithm,
            initial_values=self.initial_values,
            adversary=self.adversary if self.adversary is not None else ReliableAdversary(),
            config=self.config if self.config is not None else SimulationConfig(),
            observers=self.observers,
            spec=self.spec if self.spec is not None else ConsensusSpec(),
        )


def _family_of(algorithm: HOAlgorithm) -> Optional[str]:
    """Which vectorised kernel family executes ``algorithm``, if any.

    The batch engine vectorises the two built-in kernel families; an
    algorithm whose registered factory is *not* the stock
    :class:`AteKernel`/:class:`UteKernel` (a custom kernel registered
    over it, or a third-party algorithm) is refused so it cannot
    silently diverge from its scalar kernel.
    """
    factory = registered_kernel_factory(type(algorithm))
    if factory is AteKernel:
        return "ate"
    if factory is UteKernel:
        return "ute"
    return None


def batch_supported(
    algorithm: HOAlgorithm,
    adversary: Optional[Adversary] = None,
    config: Optional[SimulationConfig] = None,
    observers: Optional[Sequence[RoundObserver]] = None,
) -> bool:
    """Whether a run can execute on the batch backend.

    Requires NumPy, everything :func:`fast_supported` requires, and an
    algorithm executed by one of the two vectorised kernel families.
    """
    if np is None:
        return False
    if not fast_supported(algorithm, adversary, config, observers):
        return False
    return _family_of(algorithm) is not None


class _BatchFallback(Exception):
    """Raised when a run group's values defeat vectorisation.

    Carries no data: the group is re-executed run by run on the fast
    engine after resetting each adversary's seeded schedule.
    """


class _Codebook:
    """Bidirectional map between payload objects and dense int codes.

    Lookup is by equality (like ``Counter``), so ``==``-equal payloads
    share a code and the stored representative is the first one
    encountered — which is also what ``Counter`` keeps.  A collision
    between equal values of *different* types (``1`` vs ``True``) is
    refused with :class:`_BatchFallback`: the scalar kernels would keep
    per-run representatives that a group-wide codebook cannot.
    """

    def __init__(self) -> None:
        self.values: List[Value] = []
        self._codes: Dict[Value, int] = {}
        self._sort_ranks = None
        self._decision_ranks = None

    def encode(self, value: Value) -> int:
        code = self._codes.get(value, -1)
        if code >= 0:
            existing = self.values[code]
            if existing is value or type(existing) is type(value):
                return code
            raise _BatchFallback(
                f"equal payloads of different types ({existing!r} vs {value!r})"
            )
        code = len(self.values)
        self.values.append(value)
        self._codes[value] = code
        self._sort_ranks = None
        self._decision_ranks = None
        return code

    @property
    def none_code(self) -> int:
        """The code of a ``None`` payload, or ``-2`` if never encoded.

        ``-2`` can never equal a stored decision code (codes are >= 0,
        "undecided" is ``-1``), so comparisons against it are safe.
        """
        return self._codes.get(None, -2)

    def _ranks(self, key) -> "np.ndarray":
        keys = [key(value) for value in self.values]
        order = sorted(range(len(keys)), key=keys.__getitem__)
        # The scalar kernels take min() over *iteration order*; a rank
        # array reproduces that only if the key is a strict total order
        # over the codebook.  nan-like or repr-colliding values are not
        # — fall back to per-run execution rather than guess.
        for left, right in zip(order, order[1:]):
            if not keys[left] < keys[right]:
                raise _BatchFallback(
                    f"payload domain is not totally ordered "
                    f"({self.values[left]!r} vs {self.values[right]!r})"
                )
        ranks = np.empty(len(keys), dtype=np.int64)
        ranks[order] = np.arange(len(keys), dtype=np.int64)
        return ranks

    def sort_ranks(self) -> "np.ndarray":
        """Per-code ranks under the x-update order (``_sort_key``)."""
        if self._sort_ranks is None or len(self._sort_ranks) != len(self.values):
            self._sort_ranks = self._ranks(_sort_key)
        return self._sort_ranks

    def decision_ranks(self) -> "np.ndarray":
        """Per-code ranks under the decision order (``_decision_key``)."""
        if self._decision_ranks is None or len(self._decision_ranks) != len(self.values):
            self._decision_ranks = self._ranks(_decision_key)
        return self._decision_ranks


def _select_min(mask, ranks, sentinel):
    """Per (run, receiver): the code with minimal rank among ``mask``.

    Returns ``(has_candidate, code)``; ``code`` is meaningless where
    ``has_candidate`` is False (callers mask it out).
    """
    has = mask.any(axis=2)
    code = np.where(mask, ranks[None, None, :], sentinel).argmin(axis=2)
    return has, code


class _BatchKernel:
    """Decision bookkeeping shared by both vectorised kernel families.

    Decision state is two ``(runs, n)`` arrays: ``dec_code`` (``-1`` =
    never decided; the codebook's None code marks the degenerate
    "decided None" state that leaves a process formally undecided) and
    ``dec_round``.
    """

    def __init__(self, runs: int, n: int, book: _Codebook) -> None:
        self.runs = runs
        self.n = n
        self.book = book
        self.dec_code = np.full((runs, n), -1, dtype=np.int64)
        self.dec_round = np.full((runs, n), -1, dtype=np.int64)

    def all_decided(self) -> "np.ndarray":
        """Per run: has every process *really* decided (non-None value)?"""
        none_code = self.book.none_code
        real = (self.dec_code != -1) & (self.dec_code != none_code)
        return real.all(axis=1)

    def _counts(self, sent_act, recv, adjust, writable=False):
        """Received-value counts ``(A, n|1, V)`` plus heard counts.

        ``recv`` is ``None`` when no active run dropped anything this
        round: every receiver of a run then sees the same multiset, so
        counts collapse to ``(A, 1, V)`` and broadcast — the fully
        vectorised path a reliable sweep stays on.  A uint64 ``recv``
        is the packed tier's word array ``(A, n, W)``: counts come out
        of popcounts against per-value sender bit-planes instead of the
        dense matmul (see :meth:`_packed_counts`).  Corruption arrives
        as sparse COO adjustments (``-1`` at the intended code, ``+1``
        at the injected one, per corrupted edge).

        Dense counts are float32, packed counts int64; both are exact
        (tallies are small integers, thresholds compare identically in
        either dtype), so the two tiers decide byte-identically.
        """
        V = len(self.book.values)
        A = sent_act.shape[0]
        codes = np.arange(V, dtype=sent_act.dtype)
        if recv is not None and recv.dtype == np.uint64:
            return self._packed_counts(sent_act, recv, adjust, codes)
        onehot = (sent_act[:, :, None] == codes).astype(np.float32)
        if recv is None:
            counts = onehot.sum(axis=1)[:, None, :]
            if adjust is not None:
                counts = np.repeat(counts, self.n, axis=1)
            heard = np.full((A, 1), float(self.n), dtype=np.float32)
        else:
            counts = recv @ onehot
            heard = recv.sum(axis=2)
        if adjust is not None:
            runs_ix, recv_ix, code_ix, deltas = adjust
            np.add.at(
                counts,
                (np.asarray(runs_ix), np.asarray(recv_ix), np.asarray(code_ix)),
                np.asarray(deltas, dtype=np.float32),
            )
        elif writable and not counts.flags.writeable:  # pragma: no cover - safety
            counts = counts.copy()
        return counts, heard

    def _packed_counts(self, sent_act, recv, adjust, codes):
        """Count-space tallies from packed reception words.

        Per value code ``v`` the senders broadcasting ``v`` pack into a
        per-run bit-plane ``(A, W)``; ``count(v heard by p)`` is then
        ``popcount(recv_words[p] & plane)`` — ``O(V * n/64)`` per
        receiver with no dense intermediate.  The loop is over the
        handful of distinct value codes, so the big operands stay
        array-shaped; the one ``(A, n, W)`` band temporary is the peak
        allocation and is reused by the garbage collector between
        values.
        """
        A = sent_act.shape[0]
        V = codes.size
        counts = np.empty((A, self.n, V), dtype=np.int64)
        for v in range(V):
            plane = pack_mask_rows(sent_act == codes[v])  # (A, W)
            counts[:, :, v] = _word_counts(recv & plane[:, None, :])
        heard = _word_counts(recv)
        if adjust is not None:
            runs_ix, recv_ix, code_ix, deltas = adjust
            np.add.at(
                counts,
                (np.asarray(runs_ix), np.asarray(recv_ix), np.asarray(code_ix)),
                np.asarray(deltas, dtype=np.int64),
            )
        return counts, heard

    def _decide(self, act, eligible, win_mask, round_num):
        """Apply the shared decide step: min-by-decision-key winners."""
        has, code = _select_min(win_mask, self.book.decision_ranks(), len(self.book.values))
        decide = eligible & has
        dec = self.dec_code[act]
        self.dec_code[act] = np.where(decide, code, dec)
        self.dec_round[act] = np.where(decide, round_num, self.dec_round[act])

    def _decision_eligible(self, act):
        """Processes whose ``decisions[p] is None`` (never or None-decided)."""
        dec = self.dec_code[act]
        return (dec == -1) | (dec == self.book.none_code)

    def _apply_decision(self, proc, code: int, round_num: int, values: List[Value]) -> None:
        # Mirrors StepKernel._apply_decision: a real decision flips the
        # process, a degenerate None decision only records the round.
        if code == -1:
            return
        value = values[code]
        if value is not None:
            proc._decide(value, round_num)
        else:
            proc._decision_round = round_num

    def decision_records(self, run: int) -> List[DecisionRecord]:
        values = self.book.values
        dec_row = self.dec_code[run].tolist()
        rnd_row = self.dec_round[run].tolist()
        return [
            DecisionRecord(process=pid, value=values[dec_row[pid]], round_num=rnd_row[pid])
            for pid in range(self.n)
            if dec_row[pid] != -1 and values[dec_row[pid]] is not None
        ]


class _BatchAteKernel(_BatchKernel):
    """``A_{T,E}`` across the run axis (mirrors :class:`AteKernel`)."""

    def __init__(self, requests: Sequence[SimulationRequest], n: int, book: _Codebook) -> None:
        super().__init__(len(requests), n, book)
        self.threshold = np.array(
            [[float(r.algorithm.params.threshold)] for r in requests], dtype=np.float32
        )
        self.enough = np.array(
            [[float(r.algorithm.params.enough)] for r in requests], dtype=np.float32
        )
        self.nested = np.array(
            [[bool(r.algorithm.nested_decision_guard)] for r in requests], dtype=bool
        )
        self.xs = np.array(
            [
                [book.encode(r.initial_values[p]) for p in range(n)]
                for r in requests
            ],
            dtype=np.int64,
        )

    def sends(self, round_num: int) -> "np.ndarray":
        return self.xs

    def step_round(self, round_num, act, recv, adjust, sent_act) -> None:
        counts, heard = self._counts(sent_act, recv, adjust)
        update_flag = heard > self.threshold[act]
        x_update = update_flag & (heard > 0)
        best = counts.max(axis=2)
        candidates = (counts == best[..., None]) & (counts > 0)
        _, x_code = _select_min(candidates, self.book.sort_ranks(), len(self.book.values))
        self.xs[act] = np.where(x_update, x_code, self.xs[act])

        eligible = self._decision_eligible(act) & (update_flag | ~self.nested[act])
        win_mask = (counts > self.enough[act][..., None]) & (counts > 0)
        self._decide(act, eligible, win_mask, round_num)

    def finalise(self, run: int, processes) -> None:
        values = self.book.values
        xs_row = self.xs[run].tolist()
        dec_row = self.dec_code[run].tolist()
        rnd_row = self.dec_round[run].tolist()
        for pid in range(self.n):
            proc = processes[pid]
            proc.x = values[xs_row[pid]]
            self._apply_decision(proc, dec_row[pid], rnd_row[pid], values)


class _BatchUteKernel(_BatchKernel):
    """``U_{T,E,alpha}`` across the run axis (mirrors :class:`UteKernel`)."""

    def __init__(self, requests: Sequence[SimulationRequest], n: int, book: _Codebook) -> None:
        super().__init__(len(requests), n, book)
        self.threshold = np.array(
            [[float(r.algorithm.params.threshold)] for r in requests], dtype=np.float32
        )
        self.enough = np.array(
            [[float(r.algorithm.params.enough)] for r in requests], dtype=np.float32
        )
        self.witness_floor = np.array(
            [[float(r.algorithm.params.alpha) + 1.0] for r in requests], dtype=np.float32
        )
        self.default_code = np.array(
            [[book.encode(r.algorithm.default_value)] for r in requests], dtype=np.int64
        )
        self.qmark_code = book.encode(QUESTION_MARK)
        self.xs = np.array(
            [
                [book.encode(r.initial_values[p]) for p in range(n)]
                for r in requests
            ],
            dtype=np.int64,
        )
        self.votes = np.full((self.runs, n), self.qmark_code, dtype=np.int64)

    def sends(self, round_num: int) -> "np.ndarray":
        return self.xs if round_num % 2 == 1 else self.votes

    def step_round(self, round_num, act, recv, adjust, sent_act) -> None:
        counts, _heard = self._counts(sent_act, recv, adjust, writable=True)
        # "Proper" values exclude the QUESTION_MARK placeholder; zeroing
        # its column after the corruption adjustments matches the
        # isinstance filter of the scalar kernel (an adversary may
        # inject the placeholder itself).
        counts[..., self.qmark_code] = 0.0

        if round_num % 2 == 1:
            win_mask = (counts > self.threshold[act][..., None]) & (counts > 0)
            has, code = _select_min(
                win_mask, self.book.decision_ranks(), len(self.book.values)
            )
            self.votes[act] = np.where(has, code, self.votes[act])
            return

        witnessed = (counts >= self.witness_floor[act][..., None]) & (counts > 0)
        best = np.where(witnessed, counts, -1.0).max(axis=2)
        candidates = witnessed & (counts == best[..., None])
        has_witness, x_code = _select_min(
            candidates, self.book.decision_ranks(), len(self.book.values)
        )
        self.xs[act] = np.where(has_witness, x_code, self.default_code[act])

        eligible = self._decision_eligible(act)
        win_mask = (counts > self.enough[act][..., None]) & (counts > 0)
        self._decide(act, eligible, win_mask, round_num)

        self.votes[act] = self.qmark_code

    def finalise(self, run: int, processes) -> None:
        values = self.book.values
        xs_row = self.xs[run].tolist()
        votes_row = self.votes[run].tolist()
        dec_row = self.dec_code[run].tolist()
        rnd_row = self.dec_round[run].tolist()
        for pid in range(self.n):
            proc = processes[pid]
            proc.x = values[xs_row[pid]]
            proc.vote = values[votes_row[pid]]
            self._apply_decision(proc, dec_row[pid], rnd_row[pid], values)


_BATCH_KERNELS = {"ate": _BatchAteKernel, "ute": _BatchUteKernel}


def _batch_planning_enabled() -> bool:
    """Whether run groups may plan through registered batch planners.

    On by default; set the ``REPRO_BATCH_PLANNING`` environment
    variable to ``off`` (or ``0``/``no``/``false``) to force every run
    onto its per-run planner while keeping the vectorised kernel — the
    CI equivalence smoke diffs the two paths byte-for-byte.
    """
    return os.environ.get("REPRO_BATCH_PLANNING", "on").strip().lower() not in {
        "off",
        "0",
        "no",
        "false",
    }


def _rows_from_words(words: "np.ndarray") -> List[List[int]]:
    """Per-member, per-receiver HO mask ints from ``(m, n, W)`` uint64 words.

    Bit ``s`` of ``out[member][receiver]`` is bit ``s & 63`` of word
    ``s >> 6`` — the :func:`repro.core.heardof.pack_mask_rows` layout.
    Single-word masks fall straight out of the array; wider masks
    recombine across words per cell.
    """
    if words.shape[-1] == 1:
        return words[:, :, 0].tolist()
    rows = words.tolist()
    return [
        [words_to_mask(cell) for cell in row]
        for row in rows
    ]


def _run_group(
    family: str,
    requests: Sequence[SimulationRequest],
    packed: bool = False,
) -> List[SimulationResult]:
    """Execute one same-shape group of runs vectorised.

    All requests share the kernel family, ``n`` and the loop-control
    config fields (grouping key of :func:`run_algorithm_batch`); the
    algorithm *parameters*, adversaries, initial values and specs may
    differ per run — parameters live in per-run arrays, adversaries in
    batch or per-run planners.

    With ``packed`` the reception state is ``(A, n, W)`` uint64 words
    (``W = ceil(n / 64)``, :func:`~repro.core.heardof.pack_mask_rows`
    layout) instead of the dense ``(A, n, n)`` float32 matrix, and the
    kernels tally by popcount against per-value sender bit-planes —
    same decisions, ~32x smaller working set at large ``n``.
    """
    # Same construction (and the same validation errors) as the scalar
    # engines, before any adversary RNG is consumed.
    processes_list = [r.algorithm.create_all(r.initial_values) for r in requests]
    n = len(processes_list[0])
    runs = len(requests)
    config = requests[0].config

    book = _Codebook()
    kernel = _BATCH_KERNELS[family](requests, n, book)
    collections = [HeardOfCollection(n) for _ in range(runs)]

    # Two planner tiers: runs whose exact adversary class has a
    # registered batch planner share one array-at-a-time planner per
    # class; everything else keeps its per-run planner.  Partitions are
    # per exact class, in first-appearance order, so the member lists
    # (and therefore per-member RNG consumption) are deterministic.
    batch_parts: List[Tuple[BatchPlanner, List[int]]] = []
    is_batch_planned = [False] * runs
    if _batch_planning_enabled():
        by_class: Dict[type, List[int]] = {}
        for index, request in enumerate(requests):
            by_class.setdefault(type(request.adversary), []).append(index)
        for members in by_class.values():
            planner = batch_planner_for([requests[i].adversary for i in members], n)
            if planner is None:
                continue
            batch_parts.append((planner, members))
            for i in members:
                is_batch_planned[i] = True
    planners: Dict[int, MaskPlanner] = {
        i: planner_for(r.adversary, n)
        for i, r in enumerate(requests)
        if not is_batch_planned[i]
    }
    batch_planned_rounds = [0] * runs

    full = (1 << n) - 1
    full_tuple = (full,) * n
    zeros_tuple = (0,) * n
    nones_tuple = (None,) * n
    width = words_per_mask(n)
    # The full mask's word row doubles as the packed reception template
    # (pad bits beyond ``n`` stay zero everywhere, so XOR with it turns
    # drop words straight into HO words).
    word_full = np.frombuffer(full.to_bytes(width * 8, "little"), dtype="<u8")

    def fresh_recv() -> "np.ndarray":
        if packed:
            out = np.empty((act.size, n, width), dtype=np.uint64)
            out[:] = word_full
            return out
        return np.ones((act.size, n, n), dtype=np.float32)

    active = np.ones(runs, dtype=bool)
    rounds_executed = np.zeros(runs, dtype=np.int64)
    stop_when_all_decided = config.stop_when_all_decided
    min_rounds = config.min_rounds

    for round_num in range(1, config.max_rounds + 1):
        act = np.flatnonzero(active)
        if act.size == 0:
            break
        act_list = act.tolist()
        sent_codes = kernel.sends(round_num)
        values_of = book.values
        recv = None
        adj_run: List[int] = []
        adj_recv: List[int] = []
        adj_code: List[int] = []
        adj_delta: List[float] = []
        adj_parts: List[Tuple] = []

        for a_pos, i in enumerate(act_list) if planners else ():
            if is_batch_planned[i]:
                continue
            row = sent_codes[i].tolist()
            values = [values_of[c] for c in row]
            plan = planners[i].plan_round(round_num, values)
            drop_masks = plan.drop_masks
            corrupt_masks = plan.corrupt_masks
            if drop_masks == zeros_tuple and corrupt_masks == zeros_tuple:
                # Perfect round: reception template untouched, record
                # assembled from shared tuples.
                collections[i].append(
                    MaskRoundRecord(
                        round_num=round_num,
                        n=n,
                        sent=tuple(values),
                        ho_masks=full_tuple,
                        sho_masks=full_tuple,
                        corrupt=nones_tuple,
                    )
                )
                continue

            corrupt_values = plan.corrupt_values
            ho_masks: List[int] = []
            sho_masks: List[int] = []
            corrupt: List[Optional[dict]] = []
            for receiver in range(n):
                ho = full & ~drop_masks[receiver]
                cmask = corrupt_masks[receiver] & ho
                ho_masks.append(ho)
                sho_masks.append(ho & ~cmask)
                if cmask:
                    cvals = corrupt_values[receiver]
                    kept = {}
                    mask = cmask
                    while mask:
                        low = mask & -mask
                        sender = low.bit_length() - 1
                        mask ^= low
                        payload = cvals[sender]
                        kept[sender] = payload
                        adj_run.append(a_pos)
                        adj_recv.append(receiver)
                        adj_code.append(row[sender])
                        adj_delta.append(-1.0)
                        adj_run.append(a_pos)
                        adj_recv.append(receiver)
                        adj_code.append(book.encode(payload))
                        adj_delta.append(1.0)
                    corrupt.append(kept)
                else:
                    corrupt.append(None)
            collections[i].append(
                MaskRoundRecord(
                    round_num=round_num,
                    n=n,
                    sent=tuple(values),
                    ho_masks=tuple(ho_masks),
                    sho_masks=tuple(sho_masks),
                    corrupt=tuple(corrupt),
                )
            )
            if drop_masks != zeros_tuple:
                if recv is None:
                    recv = fresh_recv()
                # The mask ints' little-endian bytes ARE the packed word
                # row; the dense tier unpacks the same bytes to bits.
                ho_words_row = np.frombuffer(
                    b"".join(m.to_bytes(width * 8, "little") for m in ho_masks),
                    dtype="<u8",
                ).reshape(n, width)
                if packed:
                    recv[a_pos] = ho_words_row
                else:
                    recv[a_pos] = unpack_mask_rows(ho_words_row, n)

        if batch_parts:
            a_pos_of = {i: a_pos for a_pos, i in enumerate(act_list)}
            for planner, members in batch_parts:
                # ``live`` indexes the partition's member list (the
                # planner's own adversary indices); ``live_runs`` maps
                # those back to run indices within the group.
                live = [pos for pos, i in enumerate(members) if active[i]]
                if not live:
                    continue
                live_runs = [members[pos] for pos in live]
                live_arr = np.asarray(live_runs, dtype=np.int64)
                codes_mat = sent_codes[live_arr]
                sent_rows = [
                    [values_of[c] for c in code_row] for code_row in codes_mat.tolist()
                ]
                plan = planner.plan_rounds(
                    round_num, sent_rows, live, book.encode, codes_mat, values_of
                )
                for i in live_runs:
                    batch_planned_rounds[i] += 1
                drop = plan.drop
                drop_words = plan.drop_words
                edges = plan.corrupt

                if drop is None and drop_words is None and edges is None:
                    # Perfect round for the whole partition: reception
                    # template untouched, records from shared tuples.
                    for pos, i in enumerate(live_runs):
                        collections[i].append(
                            MaskRoundRecord(
                                round_num=round_num,
                                n=n,
                                sent=tuple(sent_rows[pos]),
                                ho_masks=full_tuple,
                                sho_masks=full_tuple,
                                corrupt=nones_tuple,
                            )
                        )
                    continue

                if drop_words is None and drop is not None:
                    # Third-party planners may still emit dense drop
                    # bits; canonicalise to the packed word form once.
                    drop_words = pack_mask_rows(drop)
                if drop_words is not None:
                    ho_words = np.bitwise_xor(drop_words, word_full)
                    ho_rows = _rows_from_words(ho_words)
                    if recv is None:
                        recv = fresh_recv()
                    positions = [a_pos_of[i] for i in live_runs]
                    if packed:
                        recv[positions] = ho_words
                    else:
                        recv[positions] = unpack_mask_rows(ho_words, n)
                else:
                    ho_rows = None

                # Corrupt edges arrive as COO columns sorted ascending
                # by sender within each (member, receiver).  The
                # kernel's count adjustments (-1 intended, +1 injected)
                # assemble as whole arrays; only the per-member record
                # dicts still walk the edges in Python.
                cmask_of: Dict[int, Dict[int, int]] = {}
                cvals_of: Dict[int, Dict[int, dict]] = {}
                if edges is not None:
                    e_pos = np.asarray(edges[0], dtype=np.int64)
                    e_recv = np.asarray(edges[1], dtype=np.int64)
                    e_send = np.asarray(edges[2], dtype=np.int64)
                    e_code = np.asarray(edges[3], dtype=np.int64)
                    a_pos_arr = np.asarray(
                        [a_pos_of[i] for i in live_runs], dtype=np.int64
                    )[e_pos]
                    intended = codes_mat[e_pos, e_send]
                    n_edges = len(e_code)
                    deltas = np.empty(2 * n_edges, dtype=np.float32)
                    deltas[:n_edges] = -1.0
                    deltas[n_edges:] = 1.0
                    adj_parts.append(
                        (
                            np.concatenate([a_pos_arr, a_pos_arr]),
                            np.concatenate([e_recv, e_recv]),
                            np.concatenate([intended, e_code]),
                            deltas,
                        )
                    )
                    # Planners may emit the columns as arrays; the
                    # record walk wants plain ints (mask shifts must not
                    # wrap in fixed-width integer arithmetic).  Edges
                    # usually arrive grouped by member, so the member
                    # dicts are re-looked-up only on a position change.
                    prev_pos = -1
                    masks: Dict[int, int] = {}
                    member_vals: Dict[int, dict] = {}
                    for pos, receiver, sender, code in zip(
                        e_pos.tolist(), e_recv.tolist(), e_send.tolist(), e_code.tolist()
                    ):
                        if pos != prev_pos:
                            masks = cmask_of.setdefault(pos, {})
                            member_vals = cvals_of.setdefault(pos, {})
                            prev_pos = pos
                        masks[receiver] = masks.get(receiver, 0) | (1 << sender)
                        member_vals.setdefault(receiver, {})[sender] = values_of[code]

                for pos, i in enumerate(live_runs):
                    ho_t = full_tuple if ho_rows is None else tuple(ho_rows[pos])
                    masks = cmask_of.get(pos)
                    if not masks:
                        sho_t = ho_t
                        corrupt_t: Tuple[Optional[dict], ...] = nones_tuple
                    else:
                        sho_l = list(ho_t)
                        corrupt_l: List[Optional[dict]] = [None] * n
                        member_vals = cvals_of[pos]
                        for receiver, cmask in masks.items():
                            sho_l[receiver] &= ~cmask
                            corrupt_l[receiver] = member_vals[receiver]
                        sho_t = tuple(sho_l)
                        corrupt_t = tuple(corrupt_l)
                    collections[i].append(
                        MaskRoundRecord(
                            round_num=round_num,
                            n=n,
                            sent=tuple(sent_rows[pos]),
                            ho_masks=ho_t,
                            sho_masks=sho_t,
                            corrupt=corrupt_t,
                        )
                    )

        if adj_run:
            adj_parts.append(
                (
                    np.asarray(adj_run, dtype=np.int64),
                    np.asarray(adj_recv, dtype=np.int64),
                    np.asarray(adj_code, dtype=np.int64),
                    np.asarray(adj_delta, dtype=np.float32),
                )
            )
        if not adj_parts:
            adjust = None
        elif len(adj_parts) == 1:
            adjust = adj_parts[0]
        else:
            adjust = tuple(np.concatenate(cols) for cols in zip(*adj_parts))
        sent_act = sent_codes[act]  # fancy index: a pre-mutation snapshot
        kernel.step_round(round_num, act, recv, adjust, sent_act)
        rounds_executed[act] = round_num

        if stop_when_all_decided and round_num >= min_rounds:
            done = kernel.all_decided()[act]
            if done.any():
                active[act[done]] = False

    # Write bridged RNG state back so every adversary's random.Random
    # ends the group exactly where a per-run execution would leave it.
    for planner, _members in batch_parts:
        planner.finish()

    results: List[SimulationResult] = []
    for pos, request in enumerate(requests):
        processes = processes_list[pos]
        kernel.finalise(pos, processes)
        decisions = kernel.decision_records(pos)
        outcome = request.spec.evaluate(
            initial_values=request.initial_values,
            decisions=decisions,
            rounds_executed=int(rounds_executed[pos]),
            metadata={
                "algorithm": request.algorithm.describe(),
                "adversary": request.adversary.describe(),
            },
        )
        metrics = metrics_from_collection(
            collections[pos],
            {d.process: d.round_num for d in decisions},
            include_profiles=request.config.record_states,
        )
        results.append(
            SimulationResult(
                processes=processes,
                collection=collections[pos],
                outcome=outcome,
                metrics=metrics,
                config=request.config,
                algorithm_name=request.algorithm.describe(),
                adversary_name=request.adversary.describe(),
                # batch_planned_rounds feeds the runner's batch_planned
                # stat; it never enters records, so byte-identity across
                # backends is unaffected.
                metadata={
                    "engine": "batch",
                    "batch_planned_rounds": batch_planned_rounds[pos],
                },
            )
        )
    return results


def _run_group_fallback(requests: Sequence[SimulationRequest]) -> List[SimulationResult]:
    """Per-run fast-engine replay of a group vectorisation refused.

    The group may have consumed adversary RNG before the refusal, so
    every adversary's seeded schedule is reset first — the documented
    replay contract of :meth:`~repro.adversary.base.Adversary.reset`.
    """
    for request in requests:
        request.adversary.reset()
    return [
        run_algorithm_fast(
            algorithm=request.algorithm,
            initial_values=request.initial_values,
            adversary=request.adversary,
            config=request.config,
            observers=request.observers,
            spec=request.spec,
        )
        for request in requests
    ]


def run_algorithm_batch(
    requests: Sequence[SimulationRequest],
) -> List[SimulationResult]:
    """Execute a batch of runs on the vectorised engine, in order.

    Requests are grouped by *cacheable shape* — kernel family, ``n``
    and the loop-control config fields (``max_rounds``, ``min_rounds``,
    ``stop_when_all_decided``) — and each group executes as one
    vectorised sweep; algorithm parameters, adversaries, workloads and
    specs may vary freely within a group.  Results come back in request
    order.  Raises :class:`ValueError` when any request is not
    batch-capable (use :func:`batch_supported`, or the dispatcher,
    which partitions and falls back automatically).
    """
    if np is None:
        raise ValueError(
            "the batch engine requires numpy, which is not importable; "
            "use backend='fast' (or let the dispatcher fall back)"
        )
    normalised = [request.normalised() for request in requests]
    groups: Dict[Tuple, List[int]] = {}
    for index, request in enumerate(normalised):
        if request.observers or request.config.record_states:
            raise ValueError(
                "request is not batch-capable (observers or record_states); "
                "use batch_supported() or the backend dispatcher"
            )
        family = _family_of(request.algorithm)
        if family is None:
            raise ValueError(
                f"algorithm {request.algorithm.describe()} has no vectorised "
                f"kernel; use batch_supported() or the backend dispatcher"
            )
        config = request.config
        key = (
            family,
            len(request.initial_values),
            config.max_rounds,
            config.min_rounds,
            config.stop_when_all_decided,
        )
        groups.setdefault(key, []).append(index)

    results: List[Optional[SimulationResult]] = [None] * len(normalised)
    budget = _memory_budget_bytes()
    for (family, n, *_), indices in groups.items():
        packed = _packed_tier(n)
        # REPRO_BATCH_MEMORY_BUDGET splits the run axis so each chunk's
        # working set stays under budget.  Chunking is invisible in the
        # records: per-run RNG streams are independent, batch planners
        # consume each member's stream identically whichever chunk it
        # lands in, and codebooks are internal to a chunk.
        capacity = len(indices)
        if budget is not None:
            capacity = max(1, budget // max(1, _per_run_bytes(n, packed)))
        for start in range(0, len(indices), capacity):
            chunk = indices[start : start + capacity]
            chunk_requests = [normalised[i] for i in chunk]
            try:
                chunk_results = _run_group(family, chunk_requests, packed=packed)
            except _BatchFallback:
                chunk_results = _run_group_fallback(chunk_requests)
            if start:
                # One marker per extra chunk; the runner sums these into
                # its batch_chunks stat (k chunks -> k - 1 splits).
                # Metadata never enters records, so byte-identity across
                # chunked and unchunked sweeps is unaffected.
                chunk_results[0].metadata["batch_chunks"] = 1
            for index, result in zip(chunk, chunk_results):
                results[index] = result
    return results  # type: ignore[return-value]

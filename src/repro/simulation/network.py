"""An asynchronous message-passing network for the asyncio engine.

The HO model's round structure "does not imply limits on the asynchrony
of the system" (Section 1): rounds are a *logical* structure layered on
top of whatever the transport does.  This module provides the transport
for :mod:`repro.simulation.async_engine`: messages travel through
per-receiver queues with randomised per-message delays, so deliveries
within a round interleave arbitrarily across processes — yet the
communication-closed-round semantics (and hence the HO/SHO bookkeeping)
is exactly the same as in the lockstep engine.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.process import Payload, ProcessId


# ----------------------------------------------------------------------
# Delay models
# ----------------------------------------------------------------------
class DelayModel:
    """Samples a per-message delivery delay (in seconds of simulated sleep)."""

    def sample(self, rng: random.Random) -> float:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class NoDelay(DelayModel):
    """Deliver immediately (still yields to the event loop)."""

    def sample(self, rng: random.Random) -> float:
        return 0.0


@dataclass
class UniformDelay(DelayModel):
    """Delay drawn uniformly from ``[low, high]`` seconds."""

    low: float = 0.0
    high: float = 0.002

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise ValueError("require 0 <= low <= high")

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def describe(self) -> str:
        return f"uniform({self.low}, {self.high})"


@dataclass
class ExponentialDelay(DelayModel):
    """Delay drawn from an exponential distribution with the given mean."""

    mean: float = 0.001

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ValueError("mean must be positive")

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean)

    def describe(self) -> str:
        return f"exponential(mean={self.mean})"


# ----------------------------------------------------------------------
# Messages and the network
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NetworkMessage:
    """A message in flight: sender, receiver, round tag and payload."""

    sender: ProcessId
    receiver: ProcessId
    round_num: int
    payload: Payload


@dataclass(frozen=True)
class EndOfRound:
    """Marker telling a receiver that round ``round_num`` delivered everything it will."""

    receiver: ProcessId
    round_num: int


class AsyncNetwork:
    """Per-receiver queues with randomised delivery delays.

    The network is *reliable by itself*: loss and corruption are decided
    by the adversary before messages are handed to the network (the
    adversary realises the HO model's transmission faults; the network
    realises asynchrony).
    """

    def __init__(self, n: int, delay_model: Optional[DelayModel] = None, seed: Optional[int] = None) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        self.n = n
        self.delay_model = delay_model if delay_model is not None else NoDelay()
        self.rng = random.Random(seed)
        self._inboxes: Dict[ProcessId, asyncio.Queue] = {}
        self.delivered_count = 0

    def _inbox(self, receiver: ProcessId) -> asyncio.Queue:
        if receiver not in self._inboxes:
            self._inboxes[receiver] = asyncio.Queue()
        return self._inboxes[receiver]

    async def send(self, message: NetworkMessage) -> None:
        """Deliver ``message`` to its receiver after a sampled delay."""
        delay = self.delay_model.sample(self.rng)
        if delay > 0:
            await asyncio.sleep(delay)
        else:
            await asyncio.sleep(0)
        await self._inbox(message.receiver).put(message)
        self.delivered_count += 1

    async def close_round(self, receiver: ProcessId, round_num: int) -> None:
        """Tell ``receiver`` that no more round-``round_num`` messages will arrive."""
        await self._inbox(receiver).put(EndOfRound(receiver=receiver, round_num=round_num))

    async def collect_round(self, receiver: ProcessId, round_num: int) -> Dict[ProcessId, Payload]:
        """Receive messages until the end-of-round marker for ``round_num``.

        Messages tagged with a different round number would indicate a
        violation of communication closedness and raise immediately —
        they cannot occur with the coordinator in
        :mod:`repro.simulation.async_engine`, but the check keeps the
        transport honest.
        """
        inbox = self._inbox(receiver)
        received: Dict[ProcessId, Payload] = {}
        while True:
            item = await inbox.get()
            if isinstance(item, EndOfRound):
                if item.round_num != round_num:
                    raise RuntimeError(
                        f"receiver {receiver} got end-of-round for {item.round_num} "
                        f"while collecting round {round_num}"
                    )
                return received
            if item.round_num != round_num:
                raise RuntimeError(
                    f"receiver {receiver} got a round-{item.round_num} message while "
                    f"collecting round {round_num}: communication closedness violated"
                )
            received[item.sender] = item.payload

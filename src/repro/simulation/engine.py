"""The synchronous lockstep simulation engine.

This is the primary execution substrate of the reproduction: it runs an
HO algorithm round by round, letting an adversary decide the fate of
every message, and records the complete heard-of collection of the run
so that communication predicates and consensus properties can be checked
afterwards (or online by observers).

The model's rounds are *communication-closed*: a message sent at round
``r`` can only be received at round ``r``.  The lockstep engine realises
this directly; the asyncio engine
(:mod:`repro.simulation.async_engine`) realises the same semantics on
top of an asynchronous message-passing substrate, demonstrating that the
round structure "does not imply limits on the asynchrony of the system"
(Section 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Protocol, Sequence

from repro.adversary.base import Adversary, ReliableAdversary
from repro.core.algorithm import HOAlgorithm
from repro.core.consensus import ConsensusOutcome, ConsensusSpec, DecisionRecord
from repro.core.heardof import HeardOfCollection, ReceptionVector, RoundRecord
from repro.core.machine import HOMachine, MachineVerdict
from repro.core.predicates import CommunicationPredicate
from repro.core.process import HOProcess, ProcessId, Value
from repro.simulation.metrics import RunMetrics, metrics_from_collection


class RoundObserver(Protocol):
    """Callback interface for online monitors (e.g. lemma invariant checks)."""

    def on_round(self, record: RoundRecord, processes: Mapping[ProcessId, HOProcess]) -> None:
        """Called after every simulated round."""
        ...


@dataclass
class SimulationConfig:
    """Configuration of a lockstep simulation.

    Attributes
    ----------
    max_rounds:
        Horizon of the run.  Liveness is judged within this horizon.
    min_rounds:
        Run at least this many rounds even if every process has decided
        (useful when checking that decisions stay stable / that late
        corruption cannot break Agreement).
    stop_when_all_decided:
        Stop as soon as every process has decided (after ``min_rounds``).
    record_states:
        Record per-process state snapshots before and after each round
        (needed by the lemma-level invariant monitors; adds overhead).
    """

    max_rounds: int = 100
    min_rounds: int = 0
    stop_when_all_decided: bool = True
    record_states: bool = True

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {self.max_rounds}")
        if self.min_rounds < 0:
            raise ValueError(f"min_rounds must be >= 0, got {self.min_rounds}")
        if self.min_rounds > self.max_rounds:
            raise ValueError(
                f"min_rounds ({self.min_rounds}) must not exceed max_rounds "
                f"({self.max_rounds}); the run can never satisfy both bounds"
            )


@dataclass
class SimulationResult:
    """Everything produced by one simulated run."""

    processes: Dict[ProcessId, HOProcess]
    collection: HeardOfCollection
    outcome: ConsensusOutcome
    metrics: RunMetrics
    config: SimulationConfig
    algorithm_name: str = ""
    adversary_name: str = ""
    metadata: Dict[str, object] = field(default_factory=dict)

    # -- convenience proxies (what most callers want to read) ----------------------
    @property
    def agreement(self) -> bool:
        return self.outcome.agreement

    @property
    def integrity(self) -> bool:
        return self.outcome.integrity

    @property
    def termination(self) -> bool:
        return self.outcome.termination

    @property
    def validity(self) -> bool:
        return self.outcome.validity

    @property
    def all_satisfied(self) -> bool:
        return self.outcome.all_satisfied

    @property
    def safe(self) -> bool:
        return self.outcome.safe

    @property
    def decision_values(self):
        return self.outcome.decision_values

    @property
    def rounds_executed(self) -> int:
        return self.outcome.rounds_executed

    @property
    def last_decision_round(self) -> Optional[int]:
        return self.outcome.last_decision_round

    @property
    def first_decision_round(self) -> Optional[int]:
        return self.outcome.first_decision_round

    def check_predicate(self, predicate: CommunicationPredicate) -> bool:
        """Whether ``predicate`` held over this run's heard-of collection."""
        return predicate.holds(self.collection)

    def verdict(self, machine: HOMachine) -> MachineVerdict:
        """Evaluate the correctness claim of ``machine`` against this run."""
        return machine.check(self.collection, self.outcome)

    def summary(self) -> str:
        return (
            f"[{self.algorithm_name} vs {self.adversary_name}] " + self.outcome.summary()
        )


# ----------------------------------------------------------------------
# The engine proper
# ----------------------------------------------------------------------
def _snapshot_all(processes: Mapping[ProcessId, HOProcess]) -> Dict[ProcessId, Dict[str, object]]:
    return {pid: proc.state_snapshot() for pid, proc in processes.items()}


def execute_round(
    processes: Mapping[ProcessId, HOProcess],
    round_num: int,
    adversary: Adversary,
    record_states: bool = True,
    pids: Optional[Sequence[ProcessId]] = None,
) -> RoundRecord:
    """Execute one communication-closed round and return its record.

    Steps (Section 2.1): every process applies its sending function; the
    adversary (the "environment") determines the reception vectors; every
    process applies its transition function.

    ``pids`` lets callers that execute many rounds (the run loop, the
    campaign runner) pass the sorted process ids once instead of
    re-sorting every round; ``record_states=False`` skips the two full
    state-snapshot passes — together these make up the engine fast path
    used by sweeps.
    """
    if pids is None:
        pids = sorted(processes)
    pid_set = frozenset(pids)

    intended: Dict[ProcessId, Dict[ProcessId, object]] = {
        sender: {receiver: processes[sender].send_to(round_num, receiver) for receiver in pids}
        for sender in pids
    }

    states_before = _snapshot_all(processes) if record_states else {}

    received = adversary.deliver_round(round_num, intended)

    reception_vectors: Dict[ProcessId, ReceptionVector] = {}
    for receiver in pids:
        # Copy the adversary's inbox, refusing receptions invented for
        # non-existent senders (one fused pass instead of copy + filter).
        inbox = {s: v for s, v in received.get(receiver, {}).items() if s in pid_set}
        reception_vectors[receiver] = ReceptionVector(
            receiver=receiver,
            received=inbox,
            intended={sender: intended[sender][receiver] for sender in pids},
        )

    for pid in pids:
        processes[pid].transition(round_num, dict(reception_vectors[pid].received))

    states_after = _snapshot_all(processes) if record_states else {}

    return RoundRecord(
        round_num=round_num,
        receptions=reception_vectors,
        states_before=states_before,
        states_after=states_after,
    )


def run_algorithm(
    algorithm: HOAlgorithm,
    initial_values: Mapping[ProcessId, Value],
    adversary: Optional[Adversary] = None,
    config: Optional[SimulationConfig] = None,
    observers: Optional[Sequence[RoundObserver]] = None,
    spec: Optional[ConsensusSpec] = None,
) -> SimulationResult:
    """Run ``algorithm`` against ``adversary`` from ``initial_values``.

    Returns a :class:`SimulationResult` containing the process objects
    (final states), the full heard-of collection, the consensus verdict
    and the run metrics.
    """
    adversary = adversary if adversary is not None else ReliableAdversary()
    config = config if config is not None else SimulationConfig()
    spec = spec if spec is not None else ConsensusSpec()
    observers = list(observers or [])

    processes = algorithm.create_all(initial_values)
    n = len(processes)
    pids = sorted(processes)
    process_list = [processes[pid] for pid in pids]
    collection = HeardOfCollection(n)

    rounds_executed = 0
    for round_num in range(1, config.max_rounds + 1):
        record = execute_round(processes, round_num, adversary, config.record_states, pids=pids)
        collection.append(record)
        rounds_executed = round_num

        for observer in observers:
            observer.on_round(record, processes)

        if (
            config.stop_when_all_decided
            and round_num >= config.min_rounds
            and all(proc.decided for proc in process_list)
        ):
            break

    decisions: List[DecisionRecord] = [
        DecisionRecord(process=pid, value=proc.decision, round_num=proc.decision_round)
        for pid, proc in sorted(processes.items())
        if proc.decided
    ]
    outcome = spec.evaluate(
        initial_values=initial_values,
        decisions=decisions,
        rounds_executed=rounds_executed,
        metadata={
            "algorithm": algorithm.describe(),
            "adversary": adversary.describe(),
        },
    )
    # Fast path: sweeps run with record_states=False and do not consume the
    # per-round fault profiles, so skip building them (the scalar totals in
    # RunMetrics are kept either way).
    metrics = metrics_from_collection(
        collection,
        {d.process: d.round_num for d in decisions},
        include_profiles=config.record_states,
    )

    return SimulationResult(
        processes=processes,
        collection=collection,
        outcome=outcome,
        metrics=metrics,
        config=config,
        algorithm_name=algorithm.describe(),
        adversary_name=adversary.describe(),
    )


def run_machine(
    machine: HOMachine,
    initial_values: Mapping[ProcessId, Value],
    adversary: Optional[Adversary] = None,
    config: Optional[SimulationConfig] = None,
    observers: Optional[Sequence[RoundObserver]] = None,
) -> MachineVerdict:
    """Run an HO machine ``⟨A, P⟩`` once and evaluate its correctness claim.

    The returned :class:`~repro.core.machine.MachineVerdict` reports both
    whether the predicate held for the generated run and whether the
    consensus clauses were satisfied; the machine's claim is refuted only
    when the predicate held but consensus failed
    (:attr:`~repro.core.machine.MachineVerdict.counterexample`).
    """
    result = run_algorithm(
        algorithm=machine.algorithm,
        initial_values=initial_values,
        adversary=adversary,
        config=config,
        observers=observers,
    )
    return result.verdict(machine)


def run_consensus(
    algorithm: HOAlgorithm,
    initial_values: Mapping[ProcessId, Value],
    adversary: Optional[Adversary] = None,
    max_rounds: int = 100,
    min_rounds: int = 0,
    record_states: bool = False,
    observers: Optional[Sequence[RoundObserver]] = None,
) -> SimulationResult:
    """Convenience wrapper: run once with the most common configuration.

    State snapshots are off by default here (they are only needed by the
    invariant monitors), which makes this the fastest entry point for
    sweeps and benchmarks.
    """
    config = SimulationConfig(
        max_rounds=max_rounds,
        min_rounds=min_rounds,
        stop_when_all_decided=True,
        record_states=record_states,
    )
    return run_algorithm(
        algorithm=algorithm,
        initial_values=initial_values,
        adversary=adversary,
        config=config,
        observers=observers,
    )


def run_many(
    algorithm_factory,
    initial_values_list: Iterable[Mapping[ProcessId, Value]],
    adversary_factory,
    max_rounds: int = 100,
    record_states: bool = False,
) -> List[SimulationResult]:
    """Run a batch of independent simulations.

    ``algorithm_factory`` and ``adversary_factory`` are callables taking
    the run index, so each run gets fresh process and adversary state
    (adversaries are stateful).
    """
    results = []
    for index, initial_values in enumerate(initial_values_list):
        algorithm = algorithm_factory(index)
        adversary = adversary_factory(index)
        results.append(
            run_consensus(
                algorithm=algorithm,
                initial_values=initial_values,
                adversary=adversary,
                max_rounds=max_rounds,
                record_states=record_states,
            )
        )
    return results

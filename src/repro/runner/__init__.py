"""Parallel campaign runner.

Scales the lockstep engine from single sweeps to declarative campaigns:
grids of (algorithm × adversary × predicate × n × seeds) executed
serially or across worker processes, with per-run timeouts,
deterministic seed derivation and an on-disk result cache keyed by
stable configuration hashes (re-running a campaign is incremental).

Entry points
------------
* :class:`CampaignRunner` — the executor; plug one into
  :func:`repro.experiments.common.run_batch` or any experiment driver
  (``driver(runner=CampaignRunner(jobs=4))``) to parallelise its sweep.
* :class:`CampaignSpec` — declarative grid; run with
  :meth:`CampaignRunner.run_campaign` and fold into a report with
  :func:`campaign_report`.
* ``repro-ho campaign`` — the CLI surface over both.
"""

from repro.runner.aggregate import (
    batch_report_from_records,
    campaign_report,
    group_by_cell,
)
from repro.runner.cache import ResultCache
from repro.runner.executor import (
    CampaignResult,
    CampaignRunner,
    RunTask,
    RunTimeoutError,
)
from repro.runner.factories import (
    available_adversaries,
    build_adversary,
    build_algorithm,
    build_predicate,
    build_workload,
)
from repro.runner.records import RunRecord, RunnerStats
from repro.runner.spec import (
    CACHE_SCHEMA_VERSION,
    AdversarySpec,
    AlgorithmSpec,
    CampaignSpec,
    PredicateSpec,
    RunSpec,
    WorkloadSpec,
    cell_cache_key,
    derive_seed,
    stable_hash,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "AdversarySpec",
    "AlgorithmSpec",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "PredicateSpec",
    "ResultCache",
    "RunRecord",
    "RunSpec",
    "RunTask",
    "RunTimeoutError",
    "RunnerStats",
    "WorkloadSpec",
    "available_adversaries",
    "batch_report_from_records",
    "build_adversary",
    "build_algorithm",
    "build_predicate",
    "build_workload",
    "campaign_report",
    "cell_cache_key",
    "derive_seed",
    "group_by_cell",
    "stable_hash",
]

"""Parallel campaign runner.

Scales the lockstep engine from single sweeps to declarative campaigns:
grids of (algorithm × adversary × predicate × n × seeds) executed
serially or across worker processes, with per-run timeouts,
deterministic seed derivation and an on-disk result cache keyed by
stable configuration hashes (re-running a campaign is incremental).

Entry points
------------
* :class:`CampaignRunner` — the executor; plug one into
  :func:`repro.experiments.common.run_batch` or any experiment driver
  (``driver(runner=CampaignRunner(jobs=4))``) to parallelise its sweep.
* :meth:`CampaignRunner.run_reduced` — in-worker reduction: apply a
  :class:`Reducer` inside the worker process and ship back only compact
  :class:`ReducedRecord`s (what the E3-E12 drivers route through).
* :class:`CampaignSpec` — declarative grid; run with
  :meth:`CampaignRunner.run_campaign` (or ``run_reduced_campaign``) and
  fold into a report with :func:`campaign_report`
  (:func:`reduced_campaign_report`).
* ``repro-ho campaign`` — the CLI surface over both (``--reduce`` picks
  the in-worker reducer for ``--spec`` campaigns).
"""

from repro.runner.aggregate import (
    batch_report_from_records,
    campaign_report,
    group_by_cell,
    reduced_campaign_report,
)
from repro.runner.cache import ResultCache
from repro.runner.distributed import (
    DistributedCampaignResult,
    DistributedCampaignRunner,
    DistributedReducedCampaignResult,
    IncompleteCampaignError,
    Lease,
    Supervisor,
    SupervisorStats,
    Worker,
    WorkQueue,
    fleet_status,
    metrics_enabled,
    run_worker,
)
from repro.runner.executor import (
    CampaignResult,
    CampaignRunner,
    ReducedCampaignResult,
    RunTask,
    RunTimeoutError,
    cacheable_key,
    task_from_spec,
)
from repro.runner.factories import (
    available_adversaries,
    build_adversary,
    build_algorithm,
    build_predicate,
    build_workload,
)
from repro.runner.metrics import (
    Counter,
    CounterFamily,
    Gauge,
    GaugeFamily,
    Histogram,
    HistogramFamily,
    MetricsRegistry,
    fleet_registry,
    metric_catalogue_markdown,
)
from repro.runner.records import RunRecord, RunnerStats
from repro.runner.reduce import (
    DecisionReducer,
    FaultProfileReducer,
    PredicateReducer,
    ReducedRecord,
    Reducer,
    batch_report_from_reduced,
    make_reducer,
    outcome_fields,
    reduced_cache_key,
    reduced_data,
)
from repro.runner.store import (
    CacheStore,
    FsspecObjectClient,
    InMemoryObjectClient,
    LocalDirStore,
    ObjectClient,
    ObjectStore,
    PrefixStore,
    SharedStore,
)
from repro.runner.spec import (
    CACHE_SCHEMA_VERSION,
    AdversarySpec,
    AlgorithmSpec,
    CampaignSpec,
    PredicateSpec,
    RunSpec,
    WorkloadSpec,
    cell_cache_key,
    derive_seed,
    stable_hash,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "AdversarySpec",
    "AlgorithmSpec",
    "CacheStore",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "Counter",
    "CounterFamily",
    "DecisionReducer",
    "DistributedCampaignResult",
    "DistributedCampaignRunner",
    "DistributedReducedCampaignResult",
    "FsspecObjectClient",
    "Gauge",
    "GaugeFamily",
    "Histogram",
    "HistogramFamily",
    "InMemoryObjectClient",
    "IncompleteCampaignError",
    "Lease",
    "LocalDirStore",
    "MetricsRegistry",
    "ObjectClient",
    "ObjectStore",
    "PrefixStore",
    "Supervisor",
    "SupervisorStats",
    "FaultProfileReducer",
    "PredicateReducer",
    "PredicateSpec",
    "ReducedCampaignResult",
    "ReducedRecord",
    "Reducer",
    "ResultCache",
    "RunRecord",
    "RunSpec",
    "RunTask",
    "RunTimeoutError",
    "RunnerStats",
    "SharedStore",
    "WorkQueue",
    "Worker",
    "WorkloadSpec",
    "available_adversaries",
    "batch_report_from_records",
    "batch_report_from_reduced",
    "build_adversary",
    "build_algorithm",
    "build_predicate",
    "build_workload",
    "cacheable_key",
    "campaign_report",
    "cell_cache_key",
    "derive_seed",
    "fleet_registry",
    "fleet_status",
    "group_by_cell",
    "make_reducer",
    "metric_catalogue_markdown",
    "metrics_enabled",
    "outcome_fields",
    "reduced_cache_key",
    "reduced_campaign_report",
    "reduced_data",
    "run_worker",
    "stable_hash",
    "task_from_spec",
]

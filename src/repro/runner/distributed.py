"""Broker-less distributed campaign execution over a shared store.

A campaign can be executed by a fleet of independent worker processes —
on one machine or many — coordinated **only** through a directory on a
shared filesystem (the *queue dir*, backed by
:class:`~repro.runner.store.SharedStore`) or any other
:class:`~repro.runner.store.CacheStore` (e.g. an
:class:`~repro.runner.store.ObjectStore` over an S3-style service).
There is no broker, no server and no network protocol: every
coordination primitive is an atomic store operation (exclusive create,
atomic replace), so any host that can reach the store can join the
fleet.

Layout of a queue dir::

    <queue-dir>/
      cache/                        # the fleet-shared ResultCache
        <aa>/<sha256>.json          #   (same sharded layout as local caches)
      campaigns/<campaign-id>/
        manifest.json               # kind, batch count, pickled reducer
        batches/<NNNNN>.json        # pickled RunTask payloads, in order
        splits/<NNNNN>.<SSSS>.json  # cut markers: work-stealing split points
        leases/<NNNNN>.p<AAAAA>.json  # live claims: worker, heartbeat, progress
        results/<NNNNN>.p<AAAAA>-<CCCCC>.json  # part deposits: records for
                                    #   tasks [AAAAA, AAAAA+CCCCC) of the batch
      control/
        retire/<worker-id>.json     # supervisor → worker shutdown requests

Scheduling is *lease-based*: a worker claims a batch interval by
exclusively creating its lease file and keeps the claim alive by
heartbeating it (publishing how far into the interval it has reserved
work); a lease whose heartbeat is older than its TTL is considered
abandoned (crashed or partitioned worker) and any other worker may
break it and re-claim the interval.

**Work stealing** makes the fleet elastic across batch boundaries: an
idle worker that finds no unclaimed work inspects live leases and
splits the largest in-progress batch by exclusively creating a *cut
marker* (first-writer-wins, crash-atomic — the same exclusive-create
discipline as leases) at a point inside the lease holder's unstarted
tail, then claims and executes the interval after the cut.  Cut markers
are pure **scheduling hints**: correctness rests on the deposit
protocol.  Workers deposit the records they actually executed as a
*part* file naming its interval (``results/<batch>.p<start>-<count>``),
the collector assembles records position-first-wins, and a batch is
complete when its deposited parts cover every task.  Runs are
deterministic and records content-addressed, so overlapping execution
after any race (a stale progress read, a broken lease, a lost or torn
cut marker) produces byte-identical records and never corrupts a
campaign — duplicate work is the only cost.

Execution is **byte-identical to serial runs**: batches enumerate tasks
in submission order, workers execute them through the ordinary
:class:`~repro.runner.executor.CampaignRunner`, results ship as the
same JSON encoding the result cache uses, and the submitter reassembles
records in task order before aggregating through the existing
``batch_report_from_records`` / ``batch_report_from_reduced`` paths.
Completed runs land in the shared cache under their usual
reducer-fingerprinted keys, so serial, ``--jobs N`` and distributed
executions of one campaign all hit each other's cache entries.

Entry points
------------
* :class:`DistributedCampaignRunner` — the submitter.  Implements the
  same execution surface as :class:`CampaignRunner`
  (``run_tasks``/``run_reduced``/``run_campaign``/
  ``run_reduced_campaign``), so every experiment driver accepts it via
  the existing ``runner=`` kwarg.
* :class:`Worker` / :func:`run_worker` — the claiming loop
  (``repro-ho worker --queue-dir ...``), stealing by default.
* :class:`Supervisor` — auto-scales a local worker fleet from queue
  depth (``repro-ho supervise``, ``campaign --distributed --autoscale``).
* :class:`WorkQueue` — the shared-store protocol all of them speak.
"""

from __future__ import annotations

import base64
import json
import logging
import math
import os
import pickle
import re
import socket
import subprocess
import sys
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.runner.cache import ResultCache
from repro.runner.executor import (
    CampaignResult,
    CampaignRunner,
    ReducedCampaignResult,
    RunTask,
    RunTimeoutError,
    _require_complete,
    cacheable_key,
    materialise_specs,
)
from repro.runner.metrics import UNIT_SECONDS_BUCKETS, MetricsRegistry, fleet_registry
from repro.runner.records import RunRecord, RunnerStats
from repro.runner.reduce import ReducedRecord, Reducer, reduced_cache_key
from repro.runner.spec import CampaignSpec, stable_hash
from repro.runner.store import CacheStore, PrefixStore, SharedStore
from repro.simulation.backends import get_backend

logger = logging.getLogger(__name__)

#: Bump when the queue file formats change incompatibly.  Version 2
#: introduced interval part deposits and cut markers (work stealing);
#: fleets must not mix members speaking different versions.
QUEUE_SCHEMA_VERSION = 2

#: Default lease time-to-live: a lease whose heartbeat is older than
#: this is treated as abandoned and may be re-claimed by another worker.
DEFAULT_LEASE_TTL = 60.0

#: Smallest unstarted remainder (in tasks) worth splitting off a live
#: lease: below this, stealing costs more scheduling than it saves.
DEFAULT_MIN_STEAL = 2


class IncompleteCampaignError(RuntimeError):
    """A campaign's results were incomplete at collect time.

    Raised when a batch's deposited parts do not cover all of its tasks
    (or a deposit was unreadable, now discarded) — e.g. a concurrent
    submitter requeued a failed batch between our ``wait`` and
    ``collect``.  The submitter reacts by waiting again; the uncovered
    interval re-executes and a later collect succeeds.
    """


def _require_equivalent_backend(backend: str) -> str:
    """Distributed execution is only defined for backends that are
    result-identical to the reference engine: the whole contract is
    byte-identical records regardless of which fleet member ran a batch
    (and completed runs feed the backend-independent shared cache)."""
    if not get_backend(backend).equivalent_to_reference:
        raise ValueError(
            f"backend {backend!r} is not result-identical to the reference "
            f"engine, so it cannot take part in distributed execution "
            f"(its records would depend on which worker ran them)"
        )
    return backend


def _encode_pickle(obj: object) -> str:
    # Protocol pinned so every fleet member (3.10-3.12) reads every
    # other member's payloads.
    return base64.b64encode(pickle.dumps(obj, protocol=4)).decode("ascii")


def _decode_pickle(text: str) -> object:
    return pickle.loads(base64.b64decode(text.encode("ascii")))


def _manifest_path(campaign_id: str) -> str:
    return f"campaigns/{campaign_id}/manifest.json"


def _batch_path(campaign_id: str, index: int) -> str:
    return f"campaigns/{campaign_id}/batches/{index:05d}.json"


def _lease_path(campaign_id: str, index: int, start: int = 0) -> str:
    return f"campaigns/{campaign_id}/leases/{index:05d}.p{start:05d}.json"


def _part_path(campaign_id: str, index: int, start: int, count: int) -> str:
    return f"campaigns/{campaign_id}/results/{index:05d}.p{start:05d}-{count:05d}.json"


def _cut_path(campaign_id: str, index: int, seq: int) -> str:
    return f"campaigns/{campaign_id}/splits/{index:05d}.{seq:04d}.json"


def _retire_path(worker_id: str) -> str:
    # Worker ids default to host-pid but are user-settable; squash
    # anything path-hostile so a creative id cannot escape the store.
    safe = re.sub(r"[^A-Za-z0-9._-]", "_", worker_id) or "_"
    return f"control/retire/{safe}.json"


def _metrics_path(worker_id: str) -> str:
    # Metric snapshots live in their own top-level namespace so queue
    # readers that predate them (schema v2 listings glob campaigns/*
    # and control/*) never see the files: no schema version bump.
    safe = re.sub(r"[^A-Za-z0-9._-]", "_", worker_id) or "_"
    return f"metrics/{safe}.json"


def metrics_enabled() -> bool:
    """Whether fleet metric *snapshot deposits* are enabled.

    ``REPRO_METRICS=off|0|false|no`` disables the periodic snapshot
    files workers write (the only observable side effect of the metrics
    layer — in-memory counters always run, they are free).  CI uses the
    switch to prove inertness: campaign rows are byte-identical with
    metrics on and off.
    """
    return os.environ.get("REPRO_METRICS", "on").strip().lower() not in (
        "off",
        "0",
        "false",
        "no",
    )


_PART_NAME = re.compile(r"(\d{5})\.p(\d{5})-(\d{5})\.json\Z")
_LEASE_NAME = re.compile(r"(\d{5})\.p(\d{5})\.json\Z")
_CUT_NAME = re.compile(r"(\d{5})\.(\d{4})\.json\Z")


@dataclass(frozen=True)
class Lease:
    """A worker's live claim on one batch interval.

    ``start`` is the first task index of the claimed interval; the
    interval's end is dynamic — the next cut marker after ``start`` (or
    the batch end), re-read between execution chunks so a thief's split
    takes effect mid-flight.
    """

    campaign_id: str
    batch_index: int
    worker_id: str
    ttl: float
    start: int = 0


class WorkQueue:
    """The shared-store coordination protocol of a worker fleet.

    One instance wraps one queue directory.  Submitters enqueue batches
    of pickled :class:`RunTask`s under a campaign manifest; workers
    claim batch intervals via TTL'd lease files, split each other's
    in-progress batches via cut markers, and deposit per-interval part
    files; either side reads completion state by listing the store.
    All clock comparisons use wall-clock timestamps *written into* the
    lease files (never filesystem mtimes, which shared filesystems skew).

    Every instance also owns a :class:`~repro.runner.metrics.MetricsRegistry`
    (:attr:`metrics`) that the queue methods, workers and supervisors
    sharing the instance feed; workers periodically serialise it into the
    store's ``metrics/`` namespace (see :meth:`write_metric_snapshot`) —
    a prefix no schema-v2 reader lists, so observability adds no version
    bump and cannot perturb results.
    """

    def __init__(
        self, queue_dir: Union[str, Path], store: Optional[CacheStore] = None
    ) -> None:
        self.queue_dir = Path(queue_dir)
        self.store: CacheStore = store if store is not None else SharedStore(self.queue_dir)
        self._cache: Optional[ResultCache] = None
        self.metrics = fleet_registry()
        self._m_claims = self.metrics.counter("repro_queue_claims_total")
        self._m_claim_latency = self.metrics.histogram("repro_queue_claim_latency_seconds")
        self._m_lease_breaks = self.metrics.counter("repro_queue_lease_breaks_total")
        self._m_deposits = self.metrics.counter("repro_queue_deposits_total")
        self._m_requeues = self.metrics.counter("repro_queue_requeues_total")
        self._m_cache_corrupt = self.metrics.counter("repro_cache_corrupt_total")
        self._last_fleet_metrics: Optional[Dict[str, object]] = None

    @property
    def cache(self) -> ResultCache:
        """The fleet-shared result cache: the queue store's ``cache/``
        namespace, so a custom injected store carries the cache too."""
        if self._cache is None:
            self._cache = ResultCache(store=PrefixStore(self.store, "cache"))
            self._cache.on_corrupt = self._m_cache_corrupt.inc
        return self._cache

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        tasks: Sequence[RunTask],
        kind: str = "records",
        reducer: Optional[Reducer] = None,
        batch_size: int = 8,
        campaign_id: Optional[str] = None,
    ) -> str:
        """Enqueue ``tasks`` as one campaign; returns its campaign id.

        Submission is idempotent: when every task carries a cacheable
        key, the campaign id is derived from those keys (plus kind,
        reducer fingerprint and batch size), so re-submitting the same
        work attaches to the existing campaign — including one that
        already completed — instead of re-enqueuing it.  Tasks without
        cacheable keys get a one-off campaign id.
        """
        if kind not in ("records", "reduced"):
            raise ValueError(f"kind must be 'records' or 'reduced', got {kind!r}")
        if kind == "reduced" and reducer is None:
            raise ValueError("kind='reduced' requires a reducer")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if not tasks:
            raise ValueError("cannot submit an empty campaign")

        if campaign_id is None:
            keys = [cacheable_key(task) for task in tasks]
            if all(keys):
                campaign_id = stable_hash(
                    {
                        "schema": QUEUE_SCHEMA_VERSION,
                        "kind": kind,
                        "keys": keys,
                        "reducer": reducer.fingerprint() if reducer else None,
                        "batch_size": batch_size,
                    }
                )[:32]
            else:
                campaign_id = f"adhoc-{uuid.uuid4().hex}"

        if self.store.exists(_manifest_path(campaign_id)):
            return campaign_id

        batches = [tasks[start : start + batch_size] for start in range(0, len(tasks), batch_size)]
        for index, batch in enumerate(batches):
            self.store.write_text(
                _batch_path(campaign_id, index),
                json.dumps(
                    {
                        "schema": QUEUE_SCHEMA_VERSION,
                        "campaign_id": campaign_id,
                        "index": index,
                        "tasks": [_encode_pickle(task) for task in batch],
                    },
                    allow_nan=False,
                ),
            )
        # The manifest goes in *last*: its presence is what makes the
        # campaign visible to workers, so they never observe a campaign
        # whose batches are still being written.  Concurrent submitters
        # of the same campaign write byte-identical batch files, so the
        # manifest race is harmless.
        self.store.write_text(
            _manifest_path(campaign_id),
            json.dumps(
                {
                    "schema": QUEUE_SCHEMA_VERSION,
                    "campaign_id": campaign_id,
                    "kind": kind,
                    "num_tasks": len(tasks),
                    "num_batches": len(batches),
                    "batch_size": batch_size,
                    "reducer_name": reducer.name if reducer else None,
                    "reducer": _encode_pickle(reducer) if reducer else None,
                    "created_at": time.time(),
                },
                allow_nan=False,
            ),
        )
        return campaign_id

    # ------------------------------------------------------------------
    # Discovery and state
    # ------------------------------------------------------------------
    def campaigns(self) -> List[str]:
        """Campaign ids currently visible in the queue (manifest present)."""
        return sorted(
            {Path(relpath).parent.name for relpath in self.store.list("campaigns/*/manifest.json")}
        )

    def manifest(self, campaign_id: str) -> Optional[Dict[str, object]]:
        """The campaign's manifest, or ``None`` when absent/unreadable."""
        return self._read_json(_manifest_path(campaign_id))

    def reducer_for(self, manifest: Dict[str, object]) -> Optional[Reducer]:
        """The manifest's pickled reducer, decoded (``None`` for records)."""
        encoded = manifest.get("reducer")
        return None if encoded is None else _decode_pickle(str(encoded))

    def load_batch(self, campaign_id: str, index: int) -> Optional[List[RunTask]]:
        """The batch's pickled tasks, or ``None`` when unreadable."""
        payload = self._read_json(_batch_path(campaign_id, index))
        if payload is None:
            return None
        try:
            return [_decode_pickle(str(blob)) for blob in payload["tasks"]]
        except Exception as exc:
            logger.warning(
                "queue batch %s/%05d is unreadable (%s: %s); skipping",
                campaign_id, index, type(exc).__name__, exc,
            )
            return None

    @staticmethod
    def batch_sizes(manifest: Dict[str, object]) -> List[int]:
        """Per-batch task counts (every batch is full except the last)."""
        num_tasks = int(manifest["num_tasks"])
        num_batches = int(manifest["num_batches"])
        batch_size = int(manifest["batch_size"])
        return [
            min(batch_size, num_tasks - index * batch_size) for index in range(num_batches)
        ]

    def parts(self, campaign_id: str) -> Dict[int, List[Tuple[int, int]]]:
        """Deposited result parts per batch: ``{index: [(start, count), …]}``.

        Read purely from part *filenames* (one store listing), so
        completion polling never opens result payloads.
        """
        deposited: Dict[int, List[Tuple[int, int]]] = {}
        for relpath in self.store.list(f"campaigns/{campaign_id}/results/*.json"):
            match = _PART_NAME.search(relpath)
            if match is None:
                continue
            index, start, count = (int(group) for group in match.groups())
            deposited.setdefault(index, []).append((start, count))
        for intervals in deposited.values():
            intervals.sort()
        return deposited

    def cuts(self, campaign_id: str) -> Dict[int, List[int]]:
        """Cut points per batch, sorted: ``{index: [at, …]}``.

        Cut markers are scheduling hints only — an unreadable marker is
        skipped (the deposit coverage protocol keeps correctness).
        """
        points: Dict[int, set] = {}
        for relpath in self.store.list(f"campaigns/{campaign_id}/splits/*.json"):
            match = _CUT_NAME.search(relpath)
            if match is None:
                continue
            payload = self._read_json(relpath)
            if payload is None:
                continue
            try:
                at = int(payload["at"])  # type: ignore[arg-type]
            except (KeyError, TypeError, ValueError):
                continue
            points.setdefault(int(match.group(1)), set()).add(at)
        return {index: sorted(cuts) for index, cuts in points.items()}

    def add_cut(self, campaign_id: str, index: int, at: int, worker_id: str) -> bool:
        """Record a split point for a batch; first writer wins.

        The marker is crash-atomic (exclusive create of its full
        content), so a thief killed at any point leaves either no marker
        or a complete one.  Returns ``False`` when a concurrent thief
        won the next marker slot — the caller simply re-scans.
        """
        existing = [
            int(match.group(2))
            for relpath in self.store.list(f"campaigns/{campaign_id}/splits/{index:05d}.*.json")
            if (match := _CUT_NAME.search(relpath)) is not None
        ]
        seq = max(existing) + 1 if existing else 0
        payload = json.dumps(
            {
                "schema": QUEUE_SCHEMA_VERSION,
                "at": at,
                "by": worker_id,
                "created_at": time.time(),
            },
            allow_nan=False,
        )
        return self.store.try_create(_cut_path(campaign_id, index, seq), payload)

    @staticmethod
    def _covered(intervals: Sequence[Tuple[int, int]], num: int) -> bytearray:
        """Positions of a batch covered by deposited parts (1 = covered)."""
        covered = bytearray(num)
        for start, count in intervals:
            for position in range(max(start, 0), min(start + count, num)):
                covered[position] = 1
        return covered

    def pending(
        self, campaign_id: str, manifest: Optional[Dict[str, object]] = None
    ) -> List[int]:
        """Batch indices whose deposited parts do not cover every task.

        Pass an already-loaded ``manifest`` to skip re-reading it (the
        worker scan and the submitter's wait loop poll this frequently).
        """
        manifest = manifest if manifest is not None else self.manifest(campaign_id)
        if manifest is None:
            return []
        deposited = self.parts(campaign_id)
        return [
            index
            for index, num in enumerate(self.batch_sizes(manifest))
            if not all(self._covered(deposited.get(index, ()), num))
        ]

    def batch_done(
        self, campaign_id: str, index: int, manifest: Optional[Dict[str, object]] = None
    ) -> bool:
        """Whether the batch's deposited parts cover all of its tasks."""
        manifest = manifest if manifest is not None else self.manifest(campaign_id)
        if manifest is None:
            return False
        num = self.batch_sizes(manifest)[index]
        deposited = self.parts(campaign_id).get(index, ())
        return all(self._covered(deposited, num))

    def claimable_units(
        self,
        campaign_id: str,
        manifest: Dict[str, object],
        deposited: Optional[Dict[int, List[Tuple[int, int]]]] = None,
    ) -> List[Tuple[int, int, int]]:
        """Intervals ``(batch_index, start, end)`` with uncovered tasks.

        Intervals are bounded by the batch's cut markers; every interval
        returned has at least one task without a deposited record.  The
        caller still races for the interval's lease — this is a scan,
        not a claim.  Pass an already-listed ``deposited`` parts map to
        avoid a redundant store listing (the supervisor's metrics scan).
        """
        deposited = deposited if deposited is not None else self.parts(campaign_id)
        cut_points = self.cuts(campaign_id)
        units: List[Tuple[int, int, int]] = []
        for index, num in enumerate(self.batch_sizes(manifest)):
            covered = self._covered(deposited.get(index, ()), num)
            if all(covered):
                continue
            bounds = sorted(
                {0, num, *(at for at in cut_points.get(index, ()) if 0 < at < num)}
            )
            for start, end in zip(bounds, bounds[1:]):
                if not all(covered[start:end]):
                    units.append((index, start, end))
        return units

    def batch_cuts(self, campaign_id: str, index: int) -> List[int]:
        """Sorted cut points of one batch (a listing scoped to it, so
        polling a single interval never scans the whole campaign)."""
        points = set()
        for relpath in self.store.list(f"campaigns/{campaign_id}/splits/{index:05d}.*.json"):
            if _CUT_NAME.search(relpath) is None:
                continue
            payload = self._read_json(relpath)
            if payload is None:
                continue
            try:
                points.add(int(payload["at"]))  # type: ignore[arg-type]
            except (KeyError, TypeError, ValueError):
                continue
        return sorted(points)

    def unit_end(self, campaign_id: str, index: int, start: int, num: int) -> int:
        """The current end of the interval starting at ``start``: the
        first cut marker after it, or the batch end.  Re-read between
        execution chunks so a thief's split takes effect mid-flight."""
        after = [at for at in self.batch_cuts(campaign_id, index) if start < at < num]
        return min(after) if after else num

    def unit_covered(self, campaign_id: str, index: int, start: int, num: int) -> bool:
        """Whether deposited parts already cover the interval starting at
        ``start`` (up to its current end).  Workers re-check this after
        acquiring a lease: a peer may have deposited the interval between
        the claimable scan and the claim, and re-executing a whole
        covered interval would only produce a shadowed duplicate."""
        end = self.unit_end(campaign_id, index, start, num)
        covered = self._covered(self.parts(campaign_id).get(index, ()), num)
        return all(covered[start:end])

    def complete(self, campaign_id: str) -> bool:
        """Whether every batch of the campaign is fully covered."""
        return self.manifest(campaign_id) is not None and not self.pending(campaign_id)

    # ------------------------------------------------------------------
    # Leases
    # ------------------------------------------------------------------
    def try_acquire(
        self,
        campaign_id: str,
        index: int,
        worker_id: str,
        ttl: float = DEFAULT_LEASE_TTL,
        start: int = 0,
    ) -> Optional[Lease]:
        """Claim a batch interval; None when another worker holds a live lease.

        An expired lease (heartbeat older than its TTL) is broken —
        deleted and re-raced through exclusive creation.  Two workers
        breaking the same expired lease can, in a narrow window, both
        believe they won; that only costs duplicate execution of a
        deterministic interval (results are byte-identical and deposits
        coverage-collected first-writer-wins), never correctness.

        Expiry compares this host's wall clock against the heartbeat
        timestamp *written by the lease holder*, so fleet machines need
        roughly synchronised clocks (NTP): skew eats into the TTL, and
        skew beyond the TTL makes peers break live leases.  Misjudged
        expiry degrades throughput (duplicate execution) but never
        results — size the TTL well above the fleet's worst-case skew.
        """
        lease = Lease(
            campaign_id=campaign_id,
            batch_index=index,
            worker_id=worker_id,
            ttl=ttl,
            start=start,
        )
        claim_began = time.perf_counter()
        path = _lease_path(campaign_id, index, start)
        if self.store.try_create(path, self._lease_payload(lease)):
            return self._claim_won(lease, claim_began)
        existing = self._read_json(path)
        if existing is None:
            # Released between our create and read, or an unreadable
            # lease (foreign torn write): drop whatever is there so a
            # corrupt file can never make the interval unclaimable, then
            # re-race.
            if self.store.delete(path):
                self._m_lease_breaks.inc()
            if self.store.try_create(path, self._lease_payload(lease)):
                return self._claim_won(lease, claim_began)
            return None
        heartbeat_at = float(existing.get("heartbeat_at", 0.0))
        existing_ttl = float(existing.get("ttl", ttl))
        if time.time() - heartbeat_at <= existing_ttl:
            return None
        logger.warning(
            "breaking expired lease on %s/%05d.p%05d (worker %s, heartbeat %.1fs ago)",
            campaign_id, index, start, existing.get("worker"), time.time() - heartbeat_at,
        )
        if self.store.delete(path):
            self._m_lease_breaks.inc()
        if self.store.try_create(path, self._lease_payload(lease)):
            return self._claim_won(lease, claim_began)
        return None

    def _claim_won(self, lease: Lease, claim_began: float) -> Lease:
        """Record a won claim (count + store round-trip latency)."""
        self._m_claims.inc()
        self._m_claim_latency.observe(time.perf_counter() - claim_began)
        return lease

    def heartbeat(self, lease: Lease, progress: Optional[int] = None) -> bool:
        """Refresh a lease; False when it was lost to another worker.

        ``progress`` publishes how far into the interval the holder has
        *reserved* work (the first task index it has not committed to
        execute).  Thieves read it to place cut markers beyond the
        holder's reservation; a stale value only makes a thief steal
        already-reserved tasks, which duplicate execution absorbs.
        """
        path = _lease_path(lease.campaign_id, lease.batch_index, lease.start)
        existing = self._read_json(path)
        if existing is None or existing.get("worker") != lease.worker_id:
            return False
        if progress is None:
            prior = existing.get("progress", lease.start)
            progress = int(prior) if isinstance(prior, (int, float)) else lease.start
        self.store.write_text(path, self._lease_payload(lease, progress))
        return True

    def release(self, lease: Lease) -> None:
        """Drop the lease (only if still owned by ``lease.worker_id``)."""
        path = _lease_path(lease.campaign_id, lease.batch_index, lease.start)
        existing = self._read_json(path)
        if existing is not None and existing.get("worker") == lease.worker_id:
            self.store.delete(path)

    def leases(self, campaign_id: str) -> Dict[Tuple[int, int], Dict[str, object]]:
        """All readable leases of a campaign: ``{(index, start): payload}``.

        Each payload additionally carries ``age`` (seconds since its
        heartbeat, by this host's clock) and ``progress`` normalised to
        an ``int`` — the inputs of steal-candidate selection and of the
        supervisor's liveness accounting.
        """
        found: Dict[Tuple[int, int], Dict[str, object]] = {}
        now = time.time()
        for relpath in self.store.list(f"campaigns/{campaign_id}/leases/*.json"):
            match = _LEASE_NAME.search(relpath)
            if match is None:
                continue
            payload = self._read_json(relpath)
            if payload is None:
                continue
            index, start = int(match.group(1)), int(match.group(2))
            payload = dict(payload)
            payload["age"] = now - float(payload.get("heartbeat_at", 0.0))
            raw_progress = payload.get("progress", start)
            payload["progress"] = (
                int(raw_progress) if isinstance(raw_progress, (int, float)) else start
            )
            found[(index, start)] = payload
        return found

    def _lease_payload(self, lease: Lease, progress: Optional[int] = None) -> str:
        now = time.time()
        return json.dumps(
            {
                "schema": QUEUE_SCHEMA_VERSION,
                "worker": lease.worker_id,
                "acquired_at": now,
                "heartbeat_at": now,
                "ttl": lease.ttl,
                "progress": lease.start if progress is None else progress,
            },
            allow_nan=False,
        )

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def write_result(
        self,
        campaign_id: str,
        index: int,
        start: int,
        records: Sequence[Union[RunRecord, ReducedRecord]],
        worker_id: str,
        stats: RunnerStats,
    ) -> bool:
        """Deposit the records a worker executed for tasks
        ``[start, start + len(records))`` of a batch; False when an
        identical interval was already deposited (first writer wins).

        Deposits may overlap after lease races or steals — the collector
        assembles positions first-writer-wins, and determinism makes
        overlapping records byte-identical, so any consistent set of
        deposits covering the batch yields the same result.
        """
        payload = json.dumps(
            {
                "schema": QUEUE_SCHEMA_VERSION,
                "worker": worker_id,
                "start": start,
                "stats": stats.as_dict(),
                "records": [record.as_dict() for record in records],
                "completed_at": time.time(),
            },
            allow_nan=False,
        )
        deposited = self.store.try_create(
            _part_path(campaign_id, index, start, len(records)), payload
        )
        if deposited:
            self._m_deposits.inc()
        return deposited

    def poison(
        self, campaign_id: str, index: int, num_tasks: int, worker_id: str, reason: str
    ) -> bool:
        """Mark a batch permanently unexecutable (unreadable payload).

        Deposits a poison marker covering the whole batch so the
        campaign completes and :meth:`collect` can raise a hard error,
        instead of the submitter waiting forever while workers cycle on
        the batch's lease.
        """
        payload = json.dumps(
            {
                "schema": QUEUE_SCHEMA_VERSION,
                "worker": worker_id,
                "start": 0,
                "poisoned": reason,
                "records": [],
                "completed_at": time.time(),
            },
            allow_nan=False,
        )
        return self.store.try_create(_part_path(campaign_id, index, 0, num_tasks), payload)

    def discard_result(self, campaign_id: str, index: int) -> bool:
        """Drop a batch's deposits (and cut markers) so the next
        submission re-executes it from a clean slate."""
        dropped = False
        for relpath in self.store.list(f"campaigns/{campaign_id}/results/{index:05d}.p*.json"):
            dropped = self.store.delete(relpath) or dropped
        for relpath in self.store.list(f"campaigns/{campaign_id}/splits/{index:05d}.*.json"):
            self.store.delete(relpath)
        if dropped:
            self._m_requeues.inc()
        return dropped

    def collect(
        self, campaign_id: str
    ) -> Tuple[List[Union[RunRecord, ReducedRecord]], Dict[str, RunnerStats]]:
        """All records of a completed campaign, in task order, plus
        per-worker stats accumulated over the parts each one deposited.

        Records are assembled *by position, first deposit wins*: each
        part file covers an explicit interval, and overlapping intervals
        (steals, lease races) are resolved deterministically.  A batch
        with uncovered positions raises :class:`IncompleteCampaignError`.
        """
        manifest = self.manifest(campaign_id)
        if manifest is None:
            raise KeyError(f"no campaign {campaign_id!r} in queue {self.queue_dir}")
        decode = ReducedRecord.from_dict if manifest["kind"] == "reduced" else RunRecord.from_dict
        sizes = self.batch_sizes(manifest)
        deposited = self.parts(campaign_id)
        records: List[Union[RunRecord, ReducedRecord]] = []
        worker_stats: Dict[str, RunnerStats] = {}
        for index, num in enumerate(sizes):
            slots: List[Optional[Dict[str, object]]] = [None] * num
            for start, count in deposited.get(index, ()):
                relpath = _part_path(campaign_id, index, start, count)
                payload = self._read_json(relpath)
                if payload is None:
                    # An unreadable deposit (foreign torn write): drop it
                    # so its interval counts as pending again and
                    # re-executes instead of wedging the campaign forever.
                    self.store.delete(relpath)
                    self._m_requeues.inc()
                    raise IncompleteCampaignError(
                        f"campaign {campaign_id!r}: batch {index:05d} part "
                        f"p{start:05d}-{count:05d} has no readable result "
                        f"(corrupt deposit discarded; the interval will re-execute)"
                    )
                if payload.get("poisoned"):
                    # Poison markers are not sticky either: drop the marker
                    # so the batch requeues once the broken fleet member is
                    # fixed, and surface a hard error for this collect.
                    self.store.delete(relpath)
                    raise RuntimeError(
                        f"campaign {campaign_id!r}: batch {index:05d} was poisoned "
                        f"by worker {payload.get('worker')}: {payload['poisoned']} "
                        f"(marker discarded — fix the fleet and resubmit to retry)"
                    )
                if len(payload.get("records", ())) != count:
                    # A parseable deposit that under- or over-fills its
                    # declared interval (torn write on a non-atomic
                    # backend, buggy foreign writer).  pending() counts
                    # coverage from filenames, so leaving the file would
                    # make wait() succeed and collect() fail forever —
                    # discard it so the interval genuinely requeues.
                    self.store.delete(relpath)
                    self._m_requeues.inc()
                    raise IncompleteCampaignError(
                        f"campaign {campaign_id!r}: batch {index:05d} part "
                        f"p{start:05d}-{count:05d} carries "
                        f"{len(payload.get('records', ()))} record(s) "
                        f"(mis-filled deposit discarded; the interval will re-execute)"
                    )
                contributed = 0
                for offset, entry in enumerate(payload.get("records", ())):
                    position = start + offset
                    if 0 <= position < num and slots[position] is None:
                        slots[position] = entry
                        contributed += 1
                if contributed:
                    # A part fully shadowed by earlier deposits (a lost
                    # lease race) is dropped from the stats too, exactly
                    # like v1 discarded the losing result file — partial
                    # overlaps still count once per depositing worker.
                    worker = str(payload.get("worker", "?"))
                    worker_stats.setdefault(worker, RunnerStats()).merge(
                        RunnerStats.from_dict(payload.get("stats", {}))
                    )
            uncovered = [position for position, entry in enumerate(slots) if entry is None]
            if uncovered:
                raise IncompleteCampaignError(
                    f"campaign {campaign_id!r}: batch {index:05d} is missing "
                    f"records for task positions {uncovered[:5]}"
                    f"{'…' if len(uncovered) > 5 else ''} (campaign incomplete?)"
                )
            records.extend(decode(entry) for entry in slots)
        return records, worker_stats

    # ------------------------------------------------------------------
    # Worker shutdown protocol (supervisor → worker)
    # ------------------------------------------------------------------
    def request_retire(self, worker_id: str, reason: str = "supervisor scale-down") -> None:
        """Ask a worker to exit after its current interval.

        The marker is observed by :meth:`Worker.run` between queue scans
        and between interval claims; the worker finishes the interval it
        is executing (its deposit is never abandoned), deletes the
        marker as an acknowledgement, and exits its loop.
        """
        self.store.write_text(
            _retire_path(worker_id),
            json.dumps(
                {
                    "schema": QUEUE_SCHEMA_VERSION,
                    "worker": worker_id,
                    "reason": reason,
                    "requested_at": time.time(),
                },
                allow_nan=False,
            ),
        )

    def retire_requested(self, worker_id: str) -> bool:
        """Whether a retire marker is present for ``worker_id``."""
        return self.store.exists(_retire_path(worker_id))

    def clear_retire(self, worker_id: str) -> bool:
        """Remove a retire marker (the worker's acknowledgement)."""
        return self.store.delete(_retire_path(worker_id))

    # ------------------------------------------------------------------
    # Fleet metrics (the supervisor's inputs)
    # ------------------------------------------------------------------
    def fleet_metrics(self) -> Dict[str, object]:
        """One scan of queue depth, lease liveness and deposit volume.

        Returns ``pending_batches`` (batches with uncovered tasks across
        all campaigns), ``claimable_units`` (intervals with uncovered
        tasks), ``unclaimed_units`` (those without a live lease),
        ``live_leases`` (``{worker_id: count}``) and ``deposited_parts``
        (total part files — its growth rate is the fleet's deposit rate).

        The scan races live workers by design (files appear, vanish and
        get truncated between the listing and the reads), so it must
        never raise into the supervisor loop: a campaign whose state
        cannot be parsed mid-scan degrades the whole call to the last
        successfully computed snapshot (or an all-zero one on the very
        first scan) instead of propagating the exception.
        """
        pending_batches = 0
        claimable_units = 0
        unclaimed_units = 0
        live_leases: Dict[str, int] = {}
        deposited_parts = 0
        try:
            campaign_ids = self.campaigns()
        except Exception as exc:
            return self._degraded_fleet_metrics("listing campaigns", exc)
        for campaign_id in campaign_ids:
            try:
                manifest = self.manifest(campaign_id)
                if manifest is None:
                    continue
                deposited = self.parts(campaign_id)
                deposited_parts += sum(len(parts) for parts in deposited.values())
                units = self.claimable_units(campaign_id, manifest, deposited=deposited)
                pending_batches += len({index for index, _, _ in units})
                claimable_units += len(units)
                lease_map = self.leases(campaign_id)
                for index, start, _ in units:
                    payload = lease_map.get((index, start))
                    live = (
                        payload is not None
                        and float(payload["age"]) <= float(payload.get("ttl", DEFAULT_LEASE_TTL))
                    )
                    if live:
                        worker = str(payload.get("worker", "?"))
                        live_leases[worker] = live_leases.get(worker, 0) + 1
                    else:
                        unclaimed_units += 1
            except Exception as exc:
                return self._degraded_fleet_metrics(f"campaign {campaign_id!r}", exc)
        result: Dict[str, object] = {
            "pending_batches": pending_batches,
            "claimable_units": claimable_units,
            "unclaimed_units": unclaimed_units,
            "live_leases": live_leases,
            "deposited_parts": deposited_parts,
        }
        self._last_fleet_metrics = {**result, "live_leases": dict(live_leases)}
        return result

    def _degraded_fleet_metrics(self, what: str, exc: Exception) -> Dict[str, object]:
        """Last-good (or all-zero) metrics after a mid-scan race/corruption."""
        logger.warning(
            "fleet_metrics scan of %s failed (%s: %s); serving last-good values",
            what, type(exc).__name__, exc,
        )
        last = self._last_fleet_metrics
        if last is not None:
            return {**last, "live_leases": dict(last["live_leases"])}  # type: ignore[arg-type]
        return {
            "pending_batches": 0,
            "claimable_units": 0,
            "unclaimed_units": 0,
            "live_leases": {},
            "deposited_parts": 0,
        }

    # ------------------------------------------------------------------
    # Metric snapshots (workers publish, `repro-ho status` merges)
    # ------------------------------------------------------------------
    def write_metric_snapshot(self, worker_id: str) -> None:
        """Publish this process's metric registry under ``metrics/``.

        One file per worker id, overwritten in place (atomic replace via
        the store), so a reader always sees a complete snapshot and the
        per-worker counters it carries are monotone.  The ``metrics/``
        namespace is invisible to every schema-v2 listing, which is what
        keeps observability off the result path and the queue schema
        version unchanged.
        """
        self.store.write_text(
            _metrics_path(worker_id),
            json.dumps(
                {
                    "schema": QUEUE_SCHEMA_VERSION,
                    "worker": worker_id,
                    "written_at": time.time(),
                    "metrics": self.metrics.snapshot(),
                },
                allow_nan=False,
            ),
        )

    def metric_snapshots(self) -> Dict[str, Dict[str, object]]:
        """All readable worker metric snapshots: ``{worker_id: payload}``.

        Unreadable or non-snapshot files are skipped (a worker may be
        mid-replace on a non-atomic store); the worker id is taken from
        the payload when present, else from the filename.
        """
        found: Dict[str, Dict[str, object]] = {}
        for relpath in sorted(self.store.list("metrics/*.json")):
            payload = self._read_json(relpath)
            if payload is None or "metrics" not in payload:
                continue
            worker = str(payload.get("worker") or Path(relpath).stem)
            found[worker] = payload
        return found

    def _read_json(self, relpath: str) -> Optional[Dict[str, object]]:
        text = self.store.read_text(relpath)
        if text is None:
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            logger.warning("queue entry %s is not valid JSON; ignoring", relpath)
            return None
        return payload if isinstance(payload, dict) else None


def fleet_status(queue: WorkQueue) -> Dict[str, object]:
    """The merged live view of a fleet: queue depth + worker snapshots.

    Combines one (hardened) :meth:`WorkQueue.fleet_metrics` scan with
    every deposited metric snapshot: per-worker flattened counters (with
    snapshot age and derived cache hit ratio) plus fleet totals merged
    across all shards.  This is what ``repro-ho status`` renders and
    ``repro-ho status --json`` emits; corrupt shards are skipped, never
    raised, so the view stays usable mid-chaos.
    """
    queue_metrics = queue.fleet_metrics()
    now = time.time()
    merged = fleet_registry()
    workers: List[Dict[str, object]] = []
    for worker_id, payload in sorted(queue.metric_snapshots().items()):
        entry: Dict[str, object] = {"worker": worker_id}
        try:
            entry["age_seconds"] = round(max(0.0, now - float(payload["written_at"])), 2)
        except Exception:
            entry["age_seconds"] = None
        counters: Dict[str, float] = {}
        snap = payload.get("metrics")
        if isinstance(snap, dict):
            shard = MetricsRegistry()
            try:
                shard.merge_snapshot(snap)
                merged.merge_snapshot(snap)
                counters = shard.flat_values()
            except Exception as exc:
                logger.warning(
                    "metric snapshot from worker %s is unusable (%s: %s); skipping",
                    worker_id, type(exc).__name__, exc,
                )
                counters = {}
        hits = counters.get('repro_runner_runs_total{counter="cache_hits"}', 0.0)
        misses = counters.get('repro_runner_runs_total{counter="cache_misses"}', 0.0)
        entry["units"] = counters.get("repro_worker_units_total", 0.0)
        entry["cache_hit_ratio"] = (
            round(hits / (hits + misses), 3) if hits + misses > 0 else None
        )
        entry["counters"] = counters
        workers.append(entry)
    return {
        "queue": queue_metrics,
        "workers": workers,
        "totals": merged.flat_values(),
    }


class _LeaseHeartbeat(threading.Thread):
    """Keeps one lease alive while its interval executes.

    Publishes the worker's last reserved progress with every refresh
    (the executing thread also publishes synchronously at each chunk
    boundary; a stale refresh in between can only *lower* the visible
    progress, which makes thieves steal already-reserved tasks —
    absorbed by duplicate execution).  If the lease is lost (broken by
    a peer after a stall longer than the TTL), the thread stops
    refreshing and flags it; the worker still finishes the interval —
    duplicate execution is safe — but its deposit may be shadowed by
    the thief's at collect time.
    """

    def __init__(self, queue: WorkQueue, lease: Lease) -> None:
        super().__init__(daemon=True, name=f"lease-{lease.campaign_id[:8]}-{lease.batch_index}")
        self.queue = queue
        self.lease = lease
        self.progress = lease.start
        self.interval = max(lease.ttl / 3.0, 0.05)
        self.lost = False
        self._stop_event = threading.Event()

    def run(self) -> None:
        while not self._stop_event.wait(self.interval):
            try:
                alive = self.queue.heartbeat(self.lease, progress=self.progress)
            except OSError as exc:  # pragma: no cover - transient fs hiccup
                logger.warning("heartbeat failed transiently: %s", exc)
                continue
            if not alive:
                self.lost = True
                logger.warning(
                    "lost lease on %s/%05d.p%05d while executing it",
                    self.lease.campaign_id, self.lease.batch_index, self.lease.start,
                )
                return

    def stop(self) -> None:
        self._stop_event.set()
        self.join(timeout=10.0)


class Worker:
    """One member of the fleet: a claim-execute-deposit loop that steals.

    Scans every campaign in the queue, claims pending batch intervals
    through leases, executes them in chunks with an ordinary
    :class:`CampaignRunner` (``jobs`` worker processes, the fleet-shared
    cache, the configured engine backend) and deposits per-interval
    results.  When a scan finds no claimable work, the worker turns
    thief: it inspects live leases, splits the largest in-progress
    batch's unstarted tail with a cut marker and executes the stolen
    interval, so one straggler batch no longer bounds campaign
    wall-clock.  Completely stateless between intervals — killing a
    worker at any point loses at most the lease TTL of progress.

    Shutdown: the loop exits on ``max_idle`` seconds without work, or
    as soon as a supervisor's retire marker for this worker id appears
    (observed between interval claims; the current interval always
    finishes and deposits first, and the marker is deleted as the
    acknowledgement).
    """

    def __init__(
        self,
        queue: Union[WorkQueue, str, Path],
        worker_id: Optional[str] = None,
        jobs: int = 1,
        backend: str = "reference",
        timeout: Optional[float] = None,
        ttl: float = DEFAULT_LEASE_TTL,
        poll_interval: float = 0.5,
        steal: bool = True,
        min_steal: int = DEFAULT_MIN_STEAL,
        snapshot_interval: Optional[float] = None,
    ) -> None:
        self.queue = queue if isinstance(queue, WorkQueue) else WorkQueue(queue)
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.ttl = ttl
        self.poll_interval = poll_interval
        self.steal = steal
        self.min_steal = max(2, min_steal)
        self.runner = CampaignRunner(
            jobs=jobs,
            timeout=timeout,
            cache=self.queue.cache,
            backend=_require_equivalent_backend(backend),
            metrics=self.queue.metrics,
        )
        self.batches_executed = 0
        self.steals = 0
        self._retire = False
        self._load_failures: Dict[Tuple[str, int], int] = {}
        # Observability: counters live in the queue's registry (shared
        # with any supervisor in this process); snapshot deposits are
        # throttled to roughly a quarter TTL so even short-lived leases
        # leave a few monotone samples behind, and gated by REPRO_METRICS.
        self.metrics = self.queue.metrics
        self._metrics_on = metrics_enabled()
        self._snapshot_interval = (
            snapshot_interval
            if snapshot_interval is not None
            else max(0.5, min(5.0, ttl / 4.0))
        )
        self._last_snapshot_at = float("-inf")
        self._m_units = self.metrics.counter("repro_worker_units_total")
        self._m_steals = self.metrics.counter("repro_worker_steals_total")
        self._m_unit_seconds = self.metrics.histogram(
            "repro_runner_unit_seconds", buckets=UNIT_SECONDS_BUCKETS
        )
        self._m_runs = self.metrics.counter(
            "repro_runner_runs_total", labelnames=("counter",)
        )

    def _retire_pending(self) -> bool:
        if not self._retire and self.queue.retire_requested(self.worker_id):
            self._retire = True
        return self._retire

    def _maybe_deposit_metrics(self, force: bool = False) -> None:
        """Deposit a metric snapshot, throttled; failures never propagate.

        Observability must not be able to take a worker down: a full
        disk or flaky store only costs a stale snapshot, never a lost
        interval.
        """
        if not self._metrics_on:
            return
        now = time.monotonic()
        if not force and now - self._last_snapshot_at < self._snapshot_interval:
            return
        self._last_snapshot_at = now
        try:
            self.queue.write_metric_snapshot(self.worker_id)
        except Exception as exc:
            logger.debug(
                "metric snapshot deposit failed for %s (%s: %s)",
                self.worker_id, type(exc).__name__, exc,
            )

    def _observe_unit(self, delta: RunnerStats, elapsed: float) -> None:
        """Fold one executed unit's stats delta into the fleet registry."""
        self._m_units.inc()
        self._m_unit_seconds.observe(max(0.0, elapsed))
        for name, value in delta.counter_items():
            if value > 0:
                self._m_runs.labels(counter=name).inc(value)

    def run_once(self) -> int:
        """One scan over the queue; returns how many intervals were executed."""
        executed = 0
        for campaign_id in self.queue.campaigns():
            manifest = self.queue.manifest(campaign_id)
            if manifest is None:
                continue
            for index, start, _ in self.queue.claimable_units(campaign_id, manifest):
                if self._retire_pending():
                    return executed
                lease = self.queue.try_acquire(
                    campaign_id, index, self.worker_id, ttl=self.ttl, start=start
                )
                if lease is None:
                    continue
                num = self.queue.batch_sizes(manifest)[index]
                if self.queue.unit_covered(campaign_id, index, start, num):
                    # A peer covered this interval between our scan and
                    # the claim; don't execute it twice.
                    self.queue.release(lease)
                    continue
                try:
                    if self._execute_unit(manifest, lease):
                        executed += 1
                        self._maybe_deposit_metrics()
                except Exception as exc:
                    # Infra failure (not a run failure: those become
                    # failure records).  Leave the interval for a retry.
                    logger.warning(
                        "interval %s/%05d.p%05d failed in worker %s (%s: %s); "
                        "releasing for retry",
                        campaign_id, index, start, self.worker_id,
                        type(exc).__name__, exc,
                    )
                finally:
                    self.queue.release(lease)
        self.batches_executed += executed
        return executed

    # ------------------------------------------------------------------
    # Stealing
    # ------------------------------------------------------------------
    def steal_once(self) -> int:
        """Split the largest live in-progress interval and execute its tail.

        Candidate selection reads every live lease's published progress;
        the cut lands halfway into the unstarted remainder (binary work
        splitting: repeated steals converge the fleet onto even shares),
        at least :attr:`min_steal` tasks from the end.  Returns how many
        stolen intervals were executed (0 or 1); always 0 for a worker
        constructed with ``steal=False``.
        """
        if not self.steal:
            return 0
        best: Optional[Tuple[int, str, Dict[str, object], int, int]] = None
        for campaign_id in self.queue.campaigns():
            manifest = self.queue.manifest(campaign_id)
            if manifest is None:
                continue
            sizes = self.queue.batch_sizes(manifest)
            deposited = self.queue.parts(campaign_id)
            cut_points = self.queue.cuts(campaign_id)
            for (index, start), payload in self.queue.leases(campaign_id).items():
                if payload.get("worker") == self.worker_id:
                    continue
                if float(payload["age"]) > float(payload.get("ttl", self.ttl)):
                    continue  # expired: claimable through the normal scan
                num = sizes[index] if 0 <= index < len(sizes) else 0
                if num == 0:
                    continue
                covered = self.queue._covered(deposited.get(index, ()), num)
                after = [at for at in cut_points.get(index, ()) if start < at < num]
                end = min(after) if after else num
                if all(covered[start:end]):
                    continue  # stale lease over finished work
                reserved = max(int(payload["progress"]), start)
                free = end - reserved
                if free < self.min_steal:
                    continue
                cut_at = end - free // 2
                if best is None or free > best[0]:
                    best = (free, campaign_id, manifest, index, cut_at)
        if best is None:
            return 0
        _, campaign_id, manifest, index, cut_at = best
        if not self.queue.add_cut(campaign_id, index, cut_at, self.worker_id):
            return 0  # lost the marker race; re-scan next loop
        lease = self.queue.try_acquire(
            campaign_id, index, self.worker_id, ttl=self.ttl, start=cut_at
        )
        if lease is None:
            return 0
        num = self.queue.batch_sizes(manifest)[index]
        if self.queue.unit_covered(campaign_id, index, cut_at, num):
            self.queue.release(lease)
            return 0
        try:
            executed = int(self._execute_unit(manifest, lease))
        finally:
            self.queue.release(lease)
        if executed:
            self.steals += 1
            self.batches_executed += 1
            self._m_steals.inc()
            self._maybe_deposit_metrics()
        return executed

    def _execute_unit(self, manifest: Dict[str, object], lease: Lease) -> bool:
        reducer = None
        try:
            tasks = self.queue.load_batch(lease.campaign_id, lease.batch_index)
            if manifest["kind"] == "reduced":
                reducer = self.queue.reducer_for(manifest)
        except Exception as exc:
            tasks = None
            logger.warning(
                "batch %s/%05d payload is unusable (%s: %s)",
                lease.campaign_id, lease.batch_index, type(exc).__name__, exc,
            )
        if tasks is None:
            # Unreadable/undecodable payload (version-skewed fleet
            # member, torn copy, ...).  Retrying locally is pointless
            # after a few attempts, and leaving the batch pending would
            # hang the submitter while workers churn on the lease —
            # poison it so collect() surfaces a hard error instead.
            key = (lease.campaign_id, lease.batch_index)
            self._load_failures[key] = self._load_failures.get(key, 0) + 1
            if self._load_failures[key] >= 3:
                num = self.queue.batch_sizes(manifest)[lease.batch_index]
                self.queue.poison(
                    lease.campaign_id,
                    lease.batch_index,
                    num,
                    self.worker_id,
                    "batch payload unreadable (corrupt file or incompatible "
                    "repro version on this worker)",
                )
            return False
        num = len(tasks)
        heartbeat = _LeaseHeartbeat(self.queue, lease)
        heartbeat.start()
        before = self.runner.stats.snapshot()
        unit_began = time.perf_counter()
        chunk = max(1, self.runner.jobs)
        # Store I/O between chunks (cut re-reads, synchronous progress
        # publication) is throttled to this cadence: per-chunk scheduling
        # traffic would dominate cheap runs on a remote store.  Staleness
        # is safe in both directions — a late-observed cut only makes the
        # victim over-run into work the thief duplicates, and a lagging
        # progress value only makes thieves steal already-reserved tasks.
        sync_interval = max(0.05, min(0.5, lease.ttl / 20.0))
        last_sync = float("-inf")
        end = num
        records: List[Union[RunRecord, ReducedRecord]] = []
        position = lease.start
        try:
            while True:
                now = time.monotonic()
                if now - last_sync >= sync_interval:
                    last_sync = now
                    # The interval's end is dynamic: a thief's cut marker
                    # shrinks it mid-flight.
                    end = self.queue.unit_end(
                        lease.campaign_id, lease.batch_index, lease.start, num
                    )
                if position >= end:
                    break
                reserve = min(position + chunk, end)
                # Publish the reservation *before* executing it (through
                # the heartbeat thread's next refresh, and synchronously
                # on the sync cadence), so a thief reading our progress
                # rarely cuts inside work we are about to run — and a
                # stale read still only costs duplicate execution.
                heartbeat.progress = reserve
                if last_sync == now:
                    self.queue.heartbeat(lease, progress=reserve)
                window = tasks[position:reserve]
                if reducer is not None:
                    records.extend(self.runner.run_reduced(window, reducer, capture_errors=True))
                else:
                    records.extend(self.runner.run_tasks(window, capture_errors=True))
                position = reserve
        finally:
            heartbeat.stop()
        delta = self.runner.stats.since(before)
        self._observe_unit(delta, time.perf_counter() - unit_began)
        if not records:
            return False
        deposited = self.queue.write_result(
            lease.campaign_id,
            lease.batch_index,
            lease.start,
            records,
            self.worker_id,
            delta,
        )
        if not deposited:
            logger.info(
                "interval %s/%05d.p%05d already had a deposit (lease race); "
                "duplicate shadowed at collect",
                lease.campaign_id, lease.batch_index, lease.start,
            )
        return True

    def run(self, max_idle: Optional[float] = None) -> int:
        """Poll until stopped; returns total intervals executed.

        With ``max_idle`` the worker exits after that many consecutive
        seconds without finding claimable work (set it above the lease
        TTL so a crashed peer's batches can still expire and be
        reclaimed before giving up).  Without it the loop runs forever —
        the long-lived fleet-member mode.  Either way the loop also
        exits when a supervisor writes a retire marker for this worker
        id (see :meth:`WorkQueue.request_retire`); the marker is
        deleted on the way out as the acknowledgement.
        """
        idle_since: Optional[float] = None
        try:
            while True:
                if self._retire_pending():
                    return self.batches_executed
                executed = self.run_once()
                if not executed and self.steal and not self._retire_pending():
                    executed = self.steal_once()
                self._maybe_deposit_metrics()
                if executed:
                    idle_since = None
                    continue
                if self._retire_pending():
                    return self.batches_executed
                now = time.monotonic()
                if idle_since is None:
                    idle_since = now
                if max_idle is not None and now - idle_since >= max_idle:
                    return self.batches_executed
                time.sleep(self.poll_interval)
        finally:
            self._maybe_deposit_metrics(force=True)
            if self._retire:
                self.queue.clear_retire(self.worker_id)

    def close(self) -> None:
        """Shut down the worker's execution pool."""
        self.runner.close()


def run_worker(
    queue_dir: Union[str, Path],
    worker_id: Optional[str] = None,
    jobs: int = 1,
    backend: str = "reference",
    timeout: Optional[float] = None,
    ttl: float = DEFAULT_LEASE_TTL,
    poll_interval: float = 0.5,
    max_idle: Optional[float] = None,
    steal: bool = True,
) -> int:
    """Run one worker loop to completion (the ``repro-ho worker`` body)."""
    worker = Worker(
        queue_dir,
        worker_id=worker_id,
        jobs=jobs,
        backend=backend,
        timeout=timeout,
        ttl=ttl,
        poll_interval=poll_interval,
        steal=steal,
    )
    try:
        return worker.run(max_idle=max_idle)
    finally:
        worker.close()


# ----------------------------------------------------------------------
# The auto-scaling supervisor
# ----------------------------------------------------------------------
@dataclass
class SupervisorStats:
    """Counters one :class:`Supervisor` accumulates over its run."""

    polls: int = 0
    spawned: int = 0
    retired: int = 0
    peak_workers: int = 0

    def summary(self) -> str:
        """One-line rendering for CLI status output."""
        return (
            f"polls={self.polls} spawned={self.spawned} "
            f"retired={self.retired} peak_workers={self.peak_workers}"
        )


class _ManagedWorker:
    """A supervisor-owned worker process and its lifecycle flags."""

    def __init__(self, worker_id: str, process: "subprocess.Popen[bytes]") -> None:
        self.worker_id = worker_id
        self.process = process
        self.retiring = False

    def alive(self) -> bool:
        return self.process.poll() is None


class Supervisor:
    """Auto-scales a local worker fleet from observed queue depth.

    Polls the queue's :meth:`~WorkQueue.fleet_metrics` — claimable
    interval depth, lease liveness and deposit volume — and spawns or
    retires local ``repro-ho worker`` processes to keep the fleet
    between ``min_workers`` and ``max_workers``:

    * **scale up** when there are unclaimed intervals no live lease
      covers (demand = unclaimed intervals + this supervisor's busy
      workers, clamped to the bounds);
    * **scale down** when the queue has been fully drained for
      ``idle_grace`` seconds — idle workers are asked to exit through
      retire markers (:meth:`WorkQueue.request_retire`), never killed,
      so an in-flight interval always finishes and deposits first.

    The supervisor owns only the workers it spawned; foreign fleet
    members (other machines, other supervisors) are observed through
    their leases and simply reduce measured demand.  Worker processes
    get a ``--max-idle`` safety net so a crashed supervisor cannot leak
    pollers forever.

    ``spawn`` is injectable for tests (it must return an object with the
    ``subprocess.Popen`` lifecycle surface: ``poll``/``terminate``/
    ``wait``/``kill``).
    """

    def __init__(
        self,
        queue: Union[WorkQueue, str, Path],
        min_workers: int = 0,
        max_workers: int = 2,
        jobs: int = 1,
        backend: str = "reference",
        ttl: float = DEFAULT_LEASE_TTL,
        timeout: Optional[float] = None,
        poll_interval: float = 1.0,
        worker_poll_interval: float = 0.2,
        idle_grace: float = 3.0,
        worker_max_idle: float = 600.0,
        steal: bool = True,
        spawn: Optional[Callable[[str], object]] = None,
        on_status: Optional[Callable[[Dict[str, object]], None]] = None,
        scale_on_trend: bool = False,
        trend_horizon: float = 30.0,
        trend_alpha: float = 0.3,
    ) -> None:
        if min_workers < 0:
            raise ValueError(f"min_workers must be >= 0, got {min_workers}")
        if max_workers < max(min_workers, 1):
            raise ValueError(
                f"max_workers must be >= max(min_workers, 1), got {max_workers}"
            )
        self.queue = queue if isinstance(queue, WorkQueue) else WorkQueue(queue)
        if spawn is None and getattr(self.queue.store, "root", None) is None:
            # The default spawner launches `repro-ho worker --queue-dir`
            # subprocesses, which can only coordinate over a filesystem
            # queue dir; silently spawning them against a queue whose
            # store is an object client would build a fleet that polls
            # the wrong place forever.
            raise ValueError(
                "the default worker spawner only speaks filesystem queue dirs; "
                "supervising a WorkQueue over a custom store (e.g. ObjectStore) "
                "requires injecting spawn=..."
            )
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.jobs = jobs
        self.backend = _require_equivalent_backend(backend)
        self.ttl = ttl
        self.timeout = timeout
        self.poll_interval = poll_interval
        self.worker_poll_interval = worker_poll_interval
        self.idle_grace = idle_grace
        self.worker_max_idle = worker_max_idle
        self.steal = steal
        self.stats = SupervisorStats()
        self.workers: List[_ManagedWorker] = []
        self._spawn = spawn if spawn is not None else self._spawn_process
        self._on_status = on_status
        self._counter = 0
        self._idle_since: Optional[float] = None
        self._drain_to_zero = False
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        # Trend scaling (--scale-on-trend): EWMA of the fleet's deposit
        # rate, observed over successive polls.  Off by default — the
        # instantaneous-depth policy below stays byte-for-byte the old one.
        self.scale_on_trend = scale_on_trend
        self.trend_horizon = trend_horizon
        self.trend_alpha = trend_alpha
        self._deposit_rate_ewma: Optional[float] = None
        self._last_deposits: Optional[int] = None
        self._last_rate_at: Optional[float] = None
        self._m_scale_events = self.queue.metrics.counter(
            "repro_supervisor_scale_events_total", labelnames=("direction",)
        )
        self._m_target_workers = self.queue.metrics.gauge("repro_supervisor_target_workers")
        self._m_live_workers = self.queue.metrics.gauge("repro_supervisor_live_workers")

    # -- process management ------------------------------------------------------
    def _spawn_process(self, worker_id: str) -> "subprocess.Popen[bytes]":
        """Launch a ``repro-ho worker`` subprocess against this queue."""
        src_dir = str(Path(__file__).resolve().parents[2])
        env = dict(os.environ)
        prior = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = f"{src_dir}:{prior}" if prior else src_dir
        command = [
            sys.executable, "-m", "repro.cli", "worker",
            "--queue-dir", str(self.queue.queue_dir),
            "--worker-id", worker_id,
            "--jobs", str(self.jobs),
            "--ttl", str(self.ttl),
            "--poll-interval", str(self.worker_poll_interval),
            "--max-idle", str(self.worker_max_idle),
        ]
        if self.backend != "reference":
            command += ["--backend", self.backend]
        if self.timeout is not None:
            command += ["--timeout", str(self.timeout)]
        if not self.steal:
            command += ["--no-steal"]
        return subprocess.Popen(
            command, env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
        )

    def _next_worker_id(self) -> str:
        self._counter += 1
        return f"sup-{socket.gethostname()}-{os.getpid()}-{self._counter}"

    def _reap(self) -> None:
        """Forget exited workers (clearing any unacknowledged markers)."""
        survivors: List[_ManagedWorker] = []
        for managed in self.workers:
            if managed.alive():
                survivors.append(managed)
                continue
            # A worker that crashed before acknowledging its marker must
            # not leave it behind to insta-retire a future namesake.
            self.queue.clear_retire(managed.worker_id)
        self.workers = survivors

    def _scale_up(self, count: int) -> None:
        for _ in range(count):
            worker_id = self._next_worker_id()
            process = self._spawn(worker_id)
            self.workers.append(_ManagedWorker(worker_id, process))
            self.stats.spawned += 1
            logger.info("supervisor spawned worker %s", worker_id)

    def _scale_down(self, count: int, busy_ids: Dict[str, int]) -> None:
        # Idle workers first; a busy worker is only retired when the
        # target drops below the busy count (it still finishes and
        # deposits its current interval before exiting).
        candidates = sorted(
            (managed for managed in self.workers if not managed.retiring),
            key=lambda managed: busy_ids.get(managed.worker_id, 0),
        )
        for managed in candidates[:count]:
            self.queue.request_retire(managed.worker_id)
            managed.retiring = True
            self.stats.retired += 1
            logger.info("supervisor retiring worker %s", managed.worker_id)

    # -- the control loop --------------------------------------------------------
    def poll_once(self) -> Dict[str, object]:
        """One observe-decide-act step; returns the status snapshot."""
        self._reap()
        metrics = self.queue.fleet_metrics()
        busy_ids = {
            worker: count
            for worker, count in dict(metrics["live_leases"]).items()
            if any(managed.worker_id == worker for managed in self.workers)
        }
        busy = len(busy_ids)
        drained = int(metrics["pending_batches"]) == 0
        now = time.monotonic()
        if drained:
            self._idle_since = self._idle_since if self._idle_since is not None else now
        else:
            self._idle_since = None
        idle_for = 0.0 if self._idle_since is None else now - self._idle_since

        demand = int(metrics["unclaimed_units"]) + busy
        if self.scale_on_trend:
            demand = self._trend_demand(metrics, busy, demand)
        target = min(self.max_workers, max(self.min_workers, demand))
        if drained and idle_for >= self.idle_grace:
            # In drain-and-exit mode the floor drops to zero, otherwise
            # min_workers would be kept alive forever and the run loop's
            # "every worker retired" exit condition could never hold.
            target = 0 if self._drain_to_zero else self.min_workers

        active = [managed for managed in self.workers if not managed.retiring]
        if len(active) < target:
            self._scale_up(target - len(active))
            self._m_scale_events.labels(direction="up").inc()
        elif len(active) > target:
            self._scale_down(len(active) - target, busy_ids)
            self._m_scale_events.labels(direction="down").inc()

        self.stats.polls += 1
        self.stats.peak_workers = max(self.stats.peak_workers, len(self.workers))
        self._m_target_workers.set(target)
        self._m_live_workers.set(len(self.workers))
        status = {
            **metrics,
            "busy": busy,
            "drained": drained,
            "idle_for": round(idle_for, 2),
            "target": target,
            "workers": len(self.workers),
        }
        if self._on_status is not None:
            self._on_status(status)
        return status

    def _trend_demand(self, metrics: Dict[str, object], busy: int, fallback: int) -> int:
        """Worker demand from the EWMA deposit-rate trend.

        Each poll observes the deposit-count delta as a rate and folds
        it into an exponentially weighted moving average; demand is then
        the worker count that clears the claimable backlog within
        ``trend_horizon`` seconds at the observed per-worker throughput.
        Until a usable rate exists (first polls, idle fleet) the policy
        degrades to ``fallback`` — the instantaneous-depth demand — so
        enabling the flag can never stall a cold fleet.
        """
        now = time.monotonic()
        deposits = int(metrics["deposited_parts"])
        if (
            self._last_rate_at is not None
            and self._last_deposits is not None
            and now > self._last_rate_at
        ):
            rate = max(0, deposits - self._last_deposits) / (now - self._last_rate_at)
            if self._deposit_rate_ewma is None:
                self._deposit_rate_ewma = rate
            else:
                self._deposit_rate_ewma = (
                    self.trend_alpha * rate
                    + (1.0 - self.trend_alpha) * self._deposit_rate_ewma
                )
        self._last_rate_at = now
        self._last_deposits = deposits
        backlog = int(metrics["claimable_units"])
        if backlog <= 0:
            # Nothing left to clear: keep the busy workers, let the
            # drain/idle-grace machinery do any scale-down.
            return busy
        ewma = self._deposit_rate_ewma
        if ewma is None or ewma <= 0.0 or busy <= 0:
            return fallback
        per_worker = ewma / busy
        needed = math.ceil(backlog / max(per_worker * self.trend_horizon, 1e-9))
        return max(busy, min(backlog, needed))

    def fleet_metrics(self) -> Dict[str, object]:
        """The merged live fleet view (see :func:`fleet_status`)."""
        return fleet_status(self.queue)

    def run(
        self,
        exit_when_drained: bool = False,
        max_runtime: Optional[float] = None,
        stop: Optional[threading.Event] = None,
    ) -> SupervisorStats:
        """The supervision loop (the ``repro-ho supervise`` body).

        With ``exit_when_drained`` the loop ends once the queue has been
        drained for ``idle_grace`` seconds and every managed worker has
        been retired and reaped — the one-shot "drain this queue" mode
        (the scale-down floor drops to zero for it, overriding
        ``min_workers``).  ``stop`` (an external event) and
        ``max_runtime`` both end the loop unconditionally.  All exits
        retire and reap the remaining fleet before returning.
        """
        stop = stop if stop is not None else self._stop_event
        self._drain_to_zero = exit_when_drained
        deadline = None if max_runtime is None else time.monotonic() + max_runtime
        try:
            while not stop.is_set():
                status = self.poll_once()
                if exit_when_drained and bool(status["drained"]) and not self.workers:
                    if float(status["idle_for"]) >= self.idle_grace:
                        break
                if deadline is not None and time.monotonic() >= deadline:
                    logger.warning("supervisor hit max_runtime; shutting down")
                    break
                stop.wait(self.poll_interval)
        finally:
            self.shutdown()
        return self.stats

    def shutdown(self, kill_after: float = 30.0) -> None:
        """Retire every managed worker and wait for the fleet to exit.

        Workers that outlive ``kill_after`` seconds (wedged on a hung
        run) are terminated; their leases expire and their intervals
        requeue, so no work is lost.
        """
        self._reap()
        for managed in self.workers:
            if not managed.retiring:
                self.queue.request_retire(managed.worker_id, reason="supervisor shutdown")
                managed.retiring = True
        deadline = time.monotonic() + kill_after
        for managed in self.workers:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                managed.process.wait(timeout=remaining)
            except Exception:
                logger.warning(
                    "worker %s did not retire within %.0fs; terminating",
                    managed.worker_id, kill_after,
                )
                managed.process.terminate()
                try:
                    managed.process.wait(timeout=5.0)
                except Exception:  # pragma: no cover - last resort
                    managed.process.kill()
            self.queue.clear_retire(managed.worker_id)
        self.workers = []

    # -- background mode (``campaign --autoscale``) ------------------------------
    def start(self) -> None:
        """Run the supervision loop in a background thread."""
        if self._thread is not None:
            raise RuntimeError("supervisor already started")
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self.run, kwargs={"stop": self._stop_event}, daemon=True,
            name="repro-supervisor",
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the background loop and retire the fleet."""
        if self._thread is None:
            return
        self._stop_event.set()
        self._thread.join(timeout=60.0)
        self._thread = None

    def __enter__(self) -> "Supervisor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


@dataclass
class DistributedCampaignResult(CampaignResult):
    """A campaign result annotated with per-worker execution stats."""

    worker_stats: Dict[str, RunnerStats] = field(default_factory=dict)


@dataclass
class DistributedReducedCampaignResult(ReducedCampaignResult):
    """A reduced campaign result annotated with per-worker stats."""

    worker_stats: Dict[str, RunnerStats] = field(default_factory=dict)


class DistributedCampaignRunner:
    """Submit campaigns to a worker fleet and wait for their results.

    Implements the :class:`CampaignRunner` execution surface
    (``run_tasks``/``run_reduced``/``run_campaign``/
    ``run_reduced_campaign``), so experiment drivers accept it through
    the existing ``runner=`` kwarg and every E1-E12 sweep can run
    fleet-wide with no driver changes.  The runner itself executes
    nothing: cacheable results are served from the fleet-shared cache,
    everything else is enqueued and awaited.

    Parameters
    ----------
    queue_dir:
        The shared queue directory workers poll
        (``repro-ho worker --queue-dir ...``), or a :class:`WorkQueue`
        (e.g. one over an :class:`~repro.runner.store.ObjectStore`).
    batch_size:
        Tasks per claimable batch: the unit of scheduling (and of loss
        when a worker crashes).  Work stealing subdivides batches
        dynamically, so a large batch size costs less than it used to —
        but the split granularity is still bounded by the chunk size of
        the executing worker.
    wait_timeout:
        Upper bound in seconds on waiting for the fleet (``None`` =
        wait forever); on expiry a :class:`RunTimeoutError` names the
        still-pending batches.
    backend:
        Default engine backend stamped onto submitted tasks that do not
        pin one, exactly like :class:`CampaignRunner`'s.
    """

    def __init__(
        self,
        queue_dir: Union[str, Path, WorkQueue],
        batch_size: int = 8,
        backend: str = "reference",
        poll_interval: float = 0.2,
        wait_timeout: Optional[float] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.queue = queue_dir if isinstance(queue_dir, WorkQueue) else WorkQueue(queue_dir)
        self.batch_size = batch_size
        # Fails fast on typos and on backends (e.g. async) that are not
        # result-identical: those cannot honour the fleet's
        # byte-identity contract.
        self.backend = _require_equivalent_backend(backend)
        self.poll_interval = poll_interval
        self.wait_timeout = wait_timeout
        self.cache = self.queue.cache
        self.stats = RunnerStats()
        #: Per-worker stats accumulated over every campaign this runner
        #: submitted (worker id → summed batch deltas).
        self.worker_stats: Dict[str, RunnerStats] = {}

    # -- CampaignRunner surface -------------------------------------------------
    def run_tasks(
        self, tasks: Sequence[RunTask], capture_errors: bool = False
    ) -> List[RunRecord]:
        """Execute ``tasks`` fleet-wide; one :class:`RunRecord` each, in order."""
        return self._run(tasks, kind="records", reducer=None, capture_errors=capture_errors)

    def run_reduced(
        self, tasks: Sequence[RunTask], reducer: Reducer, capture_errors: bool = False
    ) -> List[ReducedRecord]:
        """Execute ``tasks`` fleet-wide with in-worker reduction."""
        return self._run(tasks, kind="reduced", reducer=reducer, capture_errors=capture_errors)

    def run_simulations(self, tasks: Sequence[RunTask]):
        """Refused: full results are too heavy for the shared store."""
        raise NotImplementedError(
            "full SimulationResults (n² × rounds heard-of collections) are too "
            "heavy for the shared store; use run_tasks or run_reduced, whose "
            "records are the distributed wire format"
        )

    def run_campaign(self, spec: CampaignSpec) -> DistributedCampaignResult:
        """Expand ``spec``, execute it fleet-wide, reassemble in order."""
        before = self.stats.snapshot()
        workers_before = {name: stats.snapshot() for name, stats in self.worker_stats.items()}
        run_specs = spec.expand()
        tasks, task_positions, failures = materialise_specs(run_specs, self.stats)
        records_by_index: Dict[int, RunRecord] = {
            position: RunRecord.failure(
                message,
                key=run_spec.config_hash(),
                cell=run_spec.cell(),
                run_index=run_spec.run_index,
                seed=run_spec.seed,
            )
            for position, (message, run_spec) in failures.items()
        }
        executed = self.run_tasks(tasks, capture_errors=True)
        for position, record in zip(task_positions, executed):
            records_by_index[position] = record
        return DistributedCampaignResult(
            spec=spec,
            records=[records_by_index[position] for position in range(len(run_specs))],
            stats=self.stats.since(before),
            worker_stats=self._worker_stats_since(workers_before),
        )

    def run_reduced_campaign(
        self, spec: CampaignSpec, reducer: Reducer
    ) -> DistributedReducedCampaignResult:
        """Like :meth:`run_campaign`, with in-worker reduction."""
        before = self.stats.snapshot()
        workers_before = {name: stats.snapshot() for name, stats in self.worker_stats.items()}
        run_specs = spec.expand()
        tasks, task_positions, failures = materialise_specs(run_specs, self.stats)
        records_by_index: Dict[int, ReducedRecord] = {
            position: ReducedRecord.failure(
                message,
                reducer_name=reducer.name,
                key=reduced_cache_key(run_spec.config_hash(), reducer),
                cell=run_spec.cell(),
                run_index=run_spec.run_index,
                seed=run_spec.seed,
            )
            for position, (message, run_spec) in failures.items()
        }
        executed = self.run_reduced(tasks, reducer, capture_errors=True)
        for position, record in zip(task_positions, executed):
            records_by_index[position] = record
        return DistributedReducedCampaignResult(
            spec=spec,
            reducer=reducer,
            records=[records_by_index[position] for position in range(len(run_specs))],
            stats=self.stats.since(before),
            worker_stats=self._worker_stats_since(workers_before),
        )

    # -- submission without waiting --------------------------------------------
    def submit_campaign(
        self, spec: CampaignSpec, reducer: Optional[Reducer] = None
    ) -> Optional[str]:
        """Enqueue a campaign and return immediately with its id.

        Materialisation failures are *not* persisted — a later
        ``run_campaign`` of the same spec recomputes them
        deterministically.  Returns ``None`` when nothing needed
        enqueuing (every run already cached).
        """
        tasks, _, _ = materialise_specs(spec.expand(), RunnerStats())
        tasks = self._with_backend(tasks)
        pending = [task for task in tasks if self._cached(task, reducer) is None]
        if not pending:
            return None
        kind = "records" if reducer is None else "reduced"
        return self.queue.submit(
            pending, kind=kind, reducer=reducer, batch_size=self.batch_size
        )

    def wait(self, campaign_id: str, timeout: Optional[float] = None) -> None:
        """Block until every batch of ``campaign_id`` is fully covered."""
        timeout = timeout if timeout is not None else self.wait_timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            # One manifest read per poll, shared with the pending scan.
            manifest = self.queue.manifest(campaign_id)
            pending = self.queue.pending(campaign_id, manifest=manifest)
            if manifest is not None and not pending:
                return
            if deadline is not None and time.monotonic() >= deadline:
                raise RunTimeoutError(
                    f"campaign {campaign_id!r}: {len(pending)} batch(es) still pending "
                    f"after {timeout}s — is a worker fleet running? "
                    f"(repro-ho worker --queue-dir {self.queue.queue_dir})"
                )
            time.sleep(self.poll_interval)

    # -- internals -------------------------------------------------------------
    def _with_backend(self, tasks: Sequence[RunTask]) -> List[RunTask]:
        from dataclasses import replace

        if self.backend == "reference":
            return list(tasks)
        return [
            replace(task, backend=self.backend) if task.backend is None else task
            for task in tasks
        ]

    def _cache_key(self, task: RunTask, reducer: Optional[Reducer]) -> Optional[str]:
        base = cacheable_key(task)
        if base is None:
            return None
        return base if reducer is None else reduced_cache_key(base, reducer)

    def _cached(self, task: RunTask, reducer: Optional[Reducer]):
        key = self._cache_key(task, reducer)
        if key is None:
            return None
        return self.cache.get(key) if reducer is None else self.cache.get_reduced(key)

    def _run(
        self,
        tasks: Sequence[RunTask],
        kind: str,
        reducer: Optional[Reducer],
        capture_errors: bool,
    ) -> List:
        started = time.perf_counter()
        tasks = self._with_backend(tasks)
        records: List[Optional[object]] = [None] * len(tasks)
        pending: List[Tuple[int, RunTask]] = []

        for index, task in enumerate(tasks):
            cached = self._cached(task, reducer)
            if cached is not None:
                self.stats.cache_hits += 1
                records[index] = cached
            else:
                if self._cache_key(task, reducer) is not None:
                    self.stats.cache_misses += 1
                pending.append((index, task))

        if pending:
            campaign_id = self.queue.submit(
                [task for _, task in pending],
                kind=kind,
                reducer=reducer,
                batch_size=self.batch_size,
            )
            while True:
                self.wait(campaign_id)
                try:
                    fetched, batch_worker_stats = self.queue.collect(campaign_id)
                    break
                except IncompleteCampaignError as exc:
                    # A concurrent submitter requeued a failed batch (or
                    # a corrupt deposit was just discarded) between our
                    # wait and collect: wait for its re-execution.
                    logger.info("collect raced a requeue (%s); waiting again", exc)
            if len(fetched) != len(pending):
                raise RuntimeError(
                    f"campaign {campaign_id!r} returned {len(fetched)} records "
                    f"for {len(pending)} submitted tasks"
                )
            for (index, _), record in zip(pending, fetched):
                records[index] = record
            for worker, delta in batch_worker_stats.items():
                self.worker_stats.setdefault(worker, RunnerStats()).merge(delta)
                self.stats.executed += delta.executed
            # Failures are reported to this submitter but never sticky:
            # drop the results of batches containing failed/timed-out
            # runs so a later re-submission re-executes them (the
            # successful runs are in the shared cache already, so the
            # retry only redoes the failures).  Mirrors the local
            # runner, which caches only ok records.
            for batch_index in range(0, len(fetched), self.batch_size):
                chunk = fetched[batch_index : batch_index + self.batch_size]
                if any(not record.ok for record in chunk):
                    self.queue.discard_result(campaign_id, batch_index // self.batch_size)

        self.stats.total += len(tasks)
        self.stats.failures += sum(
            1 for r in records if r is not None and r.error and not r.timed_out
        )
        self.stats.timeouts += sum(1 for r in records if r is not None and r.timed_out)
        self.stats.elapsed_seconds += time.perf_counter() - started
        records = _require_complete(records, f"distributed {kind}")
        if not capture_errors:
            failed = [record for record in records if not record.ok]
            if failed:
                first = failed[0]
                raise RuntimeError(
                    f"{len(failed)} of {len(records)} distributed runs failed; "
                    f"first failure (run_index={first.run_index}): {first.error}"
                )
        return records

    def _worker_stats_since(
        self, before: Dict[str, RunnerStats]
    ) -> Dict[str, RunnerStats]:
        return {
            name: stats.since(before[name]) if name in before else stats.snapshot()
            for name, stats in self.worker_stats.items()
        }

    # -- lifecycle --------------------------------------------------------------
    def close(self) -> None:
        """Nothing to tear down (the fleet outlives submitters)."""

    def __enter__(self) -> "DistributedCampaignRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Broker-less distributed campaign execution over a shared store.

A campaign can be executed by a fleet of independent worker processes —
on one machine or many — coordinated **only** through a directory on a
shared filesystem (the *queue dir*, backed by
:class:`~repro.runner.store.SharedStore`).  There is no broker, no
server and no network protocol: every coordination primitive is an
atomic filesystem operation (exclusive create, atomic replace, fsync'd
rename), so any host that can mount the directory can join the fleet.

Layout of a queue dir::

    <queue-dir>/
      cache/                      # the fleet-shared ResultCache
        <aa>/<sha256>.json        #   (same sharded layout as local caches)
      campaigns/<campaign-id>/
        manifest.json             # kind, batch count, pickled reducer
        batches/<NNNNN>.json      # pickled RunTask payloads, in order
        leases/<NNNNN>.json       # live claims: worker, heartbeat, TTL
        results/<NNNNN>.json      # per-batch records + worker stats

Scheduling is *lease-based*: a worker claims a batch by exclusively
creating its lease file and keeps the claim alive by heartbeating it; a
lease whose heartbeat is older than its TTL is considered abandoned
(crashed or partitioned worker) and any other worker may break it and
re-claim the batch.  Leases are purely an efficiency device — runs are
deterministic and records are content-addressed, so duplicate execution
after a lease race produces byte-identical results and the
first-writer-wins result file keeps aggregation consistent.

Execution is **byte-identical to serial runs**: batches enumerate tasks
in submission order, workers execute them through the ordinary
:class:`~repro.runner.executor.CampaignRunner`, results ship as the
same JSON encoding the result cache uses, and the submitter reassembles
records in task order before aggregating through the existing
``batch_report_from_records`` / ``batch_report_from_reduced`` paths.
Completed runs land in the shared cache under their usual
reducer-fingerprinted keys, so serial, ``--jobs N`` and distributed
executions of one campaign all hit each other's cache entries.

Entry points
------------
* :class:`DistributedCampaignRunner` — the submitter.  Implements the
  same execution surface as :class:`CampaignRunner`
  (``run_tasks``/``run_reduced``/``run_campaign``/
  ``run_reduced_campaign``), so every experiment driver accepts it via
  the existing ``runner=`` kwarg.
* :class:`Worker` / :func:`run_worker` — the claiming loop
  (``repro-ho worker --queue-dir ...``).
* :class:`WorkQueue` — the shared-store protocol both sides speak.
"""

from __future__ import annotations

import base64
import json
import logging
import os
import pickle
import socket
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.runner.cache import ResultCache
from repro.runner.executor import (
    CampaignResult,
    CampaignRunner,
    ReducedCampaignResult,
    RunTask,
    RunTimeoutError,
    _require_complete,
    cacheable_key,
    materialise_specs,
)
from repro.runner.records import RunRecord, RunnerStats
from repro.runner.reduce import ReducedRecord, Reducer, reduced_cache_key
from repro.runner.spec import CampaignSpec, stable_hash
from repro.runner.store import CacheStore, PrefixStore, SharedStore
from repro.simulation.backends import get_backend

logger = logging.getLogger(__name__)

#: Bump when the queue file formats change incompatibly.
QUEUE_SCHEMA_VERSION = 1

#: Default lease time-to-live: a lease whose heartbeat is older than
#: this is treated as abandoned and may be re-claimed by another worker.
DEFAULT_LEASE_TTL = 60.0


class IncompleteCampaignError(RuntimeError):
    """A campaign's results were incomplete at collect time.

    Raised when a batch result is missing (or was an unreadable deposit,
    now discarded) — e.g. a concurrent submitter requeued a failed batch
    between our ``wait`` and ``collect``.  The submitter reacts by
    waiting again; the batch re-executes and a later collect succeeds.
    """


def _require_equivalent_backend(backend: str) -> str:
    """Distributed execution is only defined for backends that are
    result-identical to the reference engine: the whole contract is
    byte-identical records regardless of which fleet member ran a batch
    (and completed runs feed the backend-independent shared cache)."""
    if not get_backend(backend).equivalent_to_reference:
        raise ValueError(
            f"backend {backend!r} is not result-identical to the reference "
            f"engine, so it cannot take part in distributed execution "
            f"(its records would depend on which worker ran them)"
        )
    return backend


def _encode_pickle(obj: object) -> str:
    # Protocol pinned so every fleet member (3.10-3.12) reads every
    # other member's payloads.
    return base64.b64encode(pickle.dumps(obj, protocol=4)).decode("ascii")


def _decode_pickle(text: str) -> object:
    return pickle.loads(base64.b64decode(text.encode("ascii")))


def _manifest_path(campaign_id: str) -> str:
    return f"campaigns/{campaign_id}/manifest.json"


def _batch_path(campaign_id: str, index: int) -> str:
    return f"campaigns/{campaign_id}/batches/{index:05d}.json"


def _lease_path(campaign_id: str, index: int) -> str:
    return f"campaigns/{campaign_id}/leases/{index:05d}.json"


def _result_path(campaign_id: str, index: int) -> str:
    return f"campaigns/{campaign_id}/results/{index:05d}.json"


@dataclass(frozen=True)
class Lease:
    """A worker's live claim on one batch."""

    campaign_id: str
    batch_index: int
    worker_id: str
    ttl: float


class WorkQueue:
    """The shared-store coordination protocol of a worker fleet.

    One instance wraps one queue directory.  Submitters enqueue batches
    of pickled :class:`RunTask`s under a campaign manifest; workers
    claim batches via TTL'd lease files and deposit per-batch result
    files; either side reads completion state by listing the store.
    All clock comparisons use wall-clock timestamps *written into* the
    lease files (never filesystem mtimes, which shared filesystems skew).
    """

    def __init__(
        self, queue_dir: Union[str, Path], store: Optional[CacheStore] = None
    ) -> None:
        self.queue_dir = Path(queue_dir)
        self.store: CacheStore = store if store is not None else SharedStore(self.queue_dir)
        self._cache: Optional[ResultCache] = None

    @property
    def cache(self) -> ResultCache:
        """The fleet-shared result cache: the queue store's ``cache/``
        namespace, so a custom injected store carries the cache too."""
        if self._cache is None:
            self._cache = ResultCache(store=PrefixStore(self.store, "cache"))
        return self._cache

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        tasks: Sequence[RunTask],
        kind: str = "records",
        reducer: Optional[Reducer] = None,
        batch_size: int = 8,
        campaign_id: Optional[str] = None,
    ) -> str:
        """Enqueue ``tasks`` as one campaign; returns its campaign id.

        Submission is idempotent: when every task carries a cacheable
        key, the campaign id is derived from those keys (plus kind,
        reducer fingerprint and batch size), so re-submitting the same
        work attaches to the existing campaign — including one that
        already completed — instead of re-enqueuing it.  Tasks without
        cacheable keys get a one-off campaign id.
        """
        if kind not in ("records", "reduced"):
            raise ValueError(f"kind must be 'records' or 'reduced', got {kind!r}")
        if kind == "reduced" and reducer is None:
            raise ValueError("kind='reduced' requires a reducer")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if not tasks:
            raise ValueError("cannot submit an empty campaign")

        if campaign_id is None:
            keys = [cacheable_key(task) for task in tasks]
            if all(keys):
                campaign_id = stable_hash(
                    {
                        "schema": QUEUE_SCHEMA_VERSION,
                        "kind": kind,
                        "keys": keys,
                        "reducer": reducer.fingerprint() if reducer else None,
                        "batch_size": batch_size,
                    }
                )[:32]
            else:
                campaign_id = f"adhoc-{uuid.uuid4().hex}"

        if self.store.exists(_manifest_path(campaign_id)):
            return campaign_id

        batches = [tasks[start : start + batch_size] for start in range(0, len(tasks), batch_size)]
        for index, batch in enumerate(batches):
            self.store.write_text(
                _batch_path(campaign_id, index),
                json.dumps(
                    {
                        "schema": QUEUE_SCHEMA_VERSION,
                        "campaign_id": campaign_id,
                        "index": index,
                        "tasks": [_encode_pickle(task) for task in batch],
                    }
                ),
            )
        # The manifest goes in *last*: its presence is what makes the
        # campaign visible to workers, so they never observe a campaign
        # whose batches are still being written.  Concurrent submitters
        # of the same campaign write byte-identical batch files, so the
        # manifest race is harmless.
        self.store.write_text(
            _manifest_path(campaign_id),
            json.dumps(
                {
                    "schema": QUEUE_SCHEMA_VERSION,
                    "campaign_id": campaign_id,
                    "kind": kind,
                    "num_tasks": len(tasks),
                    "num_batches": len(batches),
                    "batch_size": batch_size,
                    "reducer_name": reducer.name if reducer else None,
                    "reducer": _encode_pickle(reducer) if reducer else None,
                    "created_at": time.time(),
                }
            ),
        )
        return campaign_id

    # ------------------------------------------------------------------
    # Discovery and state
    # ------------------------------------------------------------------
    def campaigns(self) -> List[str]:
        """Campaign ids currently visible in the queue (manifest present)."""
        return sorted(
            {Path(relpath).parent.name for relpath in self.store.list("campaigns/*/manifest.json")}
        )

    def manifest(self, campaign_id: str) -> Optional[Dict[str, object]]:
        return self._read_json(_manifest_path(campaign_id))

    def reducer_for(self, manifest: Dict[str, object]) -> Optional[Reducer]:
        encoded = manifest.get("reducer")
        return None if encoded is None else _decode_pickle(str(encoded))

    def load_batch(self, campaign_id: str, index: int) -> Optional[List[RunTask]]:
        payload = self._read_json(_batch_path(campaign_id, index))
        if payload is None:
            return None
        try:
            return [_decode_pickle(str(blob)) for blob in payload["tasks"]]
        except Exception as exc:
            logger.warning(
                "queue batch %s/%05d is unreadable (%s: %s); skipping",
                campaign_id, index, type(exc).__name__, exc,
            )
            return None

    def pending(
        self, campaign_id: str, manifest: Optional[Dict[str, object]] = None
    ) -> List[int]:
        """Batch indices that do not have a result yet, in order.

        Pass an already-loaded ``manifest`` to skip re-reading it (the
        worker scan and the submitter's wait loop poll this frequently).
        """
        manifest = manifest if manifest is not None else self.manifest(campaign_id)
        if manifest is None:
            return []
        return [
            index
            for index in range(int(manifest["num_batches"]))
            if not self.store.exists(_result_path(campaign_id, index))
        ]

    def batch_done(self, campaign_id: str, index: int) -> bool:
        return self.store.exists(_result_path(campaign_id, index))

    def discard_result(self, campaign_id: str, index: int) -> bool:
        """Drop a batch's result so the next submission re-executes it."""
        return self.store.delete(_result_path(campaign_id, index))

    def complete(self, campaign_id: str) -> bool:
        return self.manifest(campaign_id) is not None and not self.pending(campaign_id)

    # ------------------------------------------------------------------
    # Leases
    # ------------------------------------------------------------------
    def try_acquire(
        self, campaign_id: str, index: int, worker_id: str, ttl: float = DEFAULT_LEASE_TTL
    ) -> Optional[Lease]:
        """Claim a batch; None when another worker holds a live lease.

        An expired lease (heartbeat older than its TTL) is broken —
        deleted and re-raced through exclusive creation.  Two workers
        breaking the same expired lease can, in a narrow window, both
        believe they won; that only costs duplicate execution of a
        deterministic batch (results are byte-identical and the result
        file is first-writer-wins), never correctness.

        Expiry compares this host's wall clock against the heartbeat
        timestamp *written by the lease holder*, so fleet machines need
        roughly synchronised clocks (NTP): skew eats into the TTL, and
        skew beyond the TTL makes peers break live leases.  Misjudged
        expiry degrades throughput (duplicate execution) but never
        results — size the TTL well above the fleet's worst-case skew.
        """
        lease = Lease(campaign_id=campaign_id, batch_index=index, worker_id=worker_id, ttl=ttl)
        path = _lease_path(campaign_id, index)
        if self.store.try_create(path, self._lease_payload(lease)):
            return lease
        existing = self._read_json(path)
        if existing is None:
            # Released between our create and read, or an unreadable
            # lease (foreign torn write): drop whatever is there so a
            # corrupt file can never make the batch unclaimable, then
            # re-race.
            self.store.delete(path)
            return lease if self.store.try_create(path, self._lease_payload(lease)) else None
        heartbeat_at = float(existing.get("heartbeat_at", 0.0))
        existing_ttl = float(existing.get("ttl", ttl))
        if time.time() - heartbeat_at <= existing_ttl:
            return None
        logger.warning(
            "breaking expired lease on %s/%05d (worker %s, heartbeat %.1fs ago)",
            campaign_id, index, existing.get("worker"), time.time() - heartbeat_at,
        )
        self.store.delete(path)
        return lease if self.store.try_create(path, self._lease_payload(lease)) else None

    def heartbeat(self, lease: Lease) -> bool:
        """Refresh a lease; False when it was lost to another worker."""
        path = _lease_path(lease.campaign_id, lease.batch_index)
        existing = self._read_json(path)
        if existing is None or existing.get("worker") != lease.worker_id:
            return False
        self.store.write_text(path, self._lease_payload(lease))
        return True

    def release(self, lease: Lease) -> None:
        path = _lease_path(lease.campaign_id, lease.batch_index)
        existing = self._read_json(path)
        if existing is not None and existing.get("worker") == lease.worker_id:
            self.store.delete(path)

    def _lease_payload(self, lease: Lease) -> str:
        now = time.time()
        return json.dumps(
            {
                "schema": QUEUE_SCHEMA_VERSION,
                "worker": lease.worker_id,
                "acquired_at": now,
                "heartbeat_at": now,
                "ttl": lease.ttl,
            }
        )

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def write_result(
        self,
        campaign_id: str,
        index: int,
        records: Sequence[Union[RunRecord, ReducedRecord]],
        worker_id: str,
        stats: RunnerStats,
    ) -> bool:
        """Deposit a batch's records; False when another worker won."""
        payload = json.dumps(
            {
                "schema": QUEUE_SCHEMA_VERSION,
                "worker": worker_id,
                "stats": stats.as_dict(),
                "records": [record.as_dict() for record in records],
                "completed_at": time.time(),
            },
            allow_nan=False,
        )
        return self.store.try_create(_result_path(campaign_id, index), payload)

    def poison(self, campaign_id: str, index: int, worker_id: str, reason: str) -> bool:
        """Mark a batch permanently unexecutable (unreadable payload).

        Deposits a poison marker in the batch's result slot so the
        campaign completes and :meth:`collect` can raise a hard error,
        instead of the submitter waiting forever while workers cycle on
        the batch's lease.
        """
        payload = json.dumps(
            {
                "schema": QUEUE_SCHEMA_VERSION,
                "worker": worker_id,
                "poisoned": reason,
                "records": [],
                "completed_at": time.time(),
            }
        )
        return self.store.try_create(_result_path(campaign_id, index), payload)

    def collect(
        self, campaign_id: str
    ) -> Tuple[List[Union[RunRecord, ReducedRecord]], Dict[str, RunnerStats]]:
        """All records of a completed campaign, in task order, plus
        per-worker stats accumulated over the batches each one executed."""
        manifest = self.manifest(campaign_id)
        if manifest is None:
            raise KeyError(f"no campaign {campaign_id!r} in queue {self.queue_dir}")
        decode = ReducedRecord.from_dict if manifest["kind"] == "reduced" else RunRecord.from_dict
        records: List[Union[RunRecord, ReducedRecord]] = []
        worker_stats: Dict[str, RunnerStats] = {}
        for index in range(int(manifest["num_batches"])):
            payload = self._read_json(_result_path(campaign_id, index))
            if payload is None:
                # Either genuinely missing, or an unreadable result file
                # (foreign torn write).  Drop the latter so the batch
                # counts as pending again and re-executes instead of
                # wedging the campaign forever.
                discarded = self.store.delete(_result_path(campaign_id, index))
                raise IncompleteCampaignError(
                    f"campaign {campaign_id!r}: batch {index:05d} has no "
                    + (
                        "readable result (corrupt deposit discarded; "
                        "the batch will re-execute)"
                        if discarded
                        else "result (campaign incomplete?)"
                    )
                )
            if payload.get("poisoned"):
                # Poison markers are not sticky either: drop the marker
                # so the batch requeues once the broken fleet member is
                # fixed, and surface a hard error for this collect.
                self.store.delete(_result_path(campaign_id, index))
                raise RuntimeError(
                    f"campaign {campaign_id!r}: batch {index:05d} was poisoned "
                    f"by worker {payload.get('worker')}: {payload['poisoned']} "
                    f"(marker discarded — fix the fleet and resubmit to retry)"
                )
            records.extend(decode(entry) for entry in payload["records"])
            worker = str(payload.get("worker", "?"))
            worker_stats.setdefault(worker, RunnerStats()).merge(
                RunnerStats.from_dict(payload.get("stats", {}))
            )
        return records, worker_stats

    def _read_json(self, relpath: str) -> Optional[Dict[str, object]]:
        text = self.store.read_text(relpath)
        if text is None:
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            logger.warning("queue entry %s is not valid JSON; ignoring", relpath)
            return None
        return payload if isinstance(payload, dict) else None


class _LeaseHeartbeat(threading.Thread):
    """Keeps one lease alive while its batch executes.

    If the lease is lost (broken by a peer after a stall longer than the
    TTL), the thread stops refreshing and flags it; the worker still
    finishes the batch — duplicate execution is safe — but logs that the
    result may be discarded in favour of the thief's.
    """

    def __init__(self, queue: WorkQueue, lease: Lease) -> None:
        super().__init__(daemon=True, name=f"lease-{lease.campaign_id[:8]}-{lease.batch_index}")
        self.queue = queue
        self.lease = lease
        self.interval = max(lease.ttl / 3.0, 0.05)
        self.lost = False
        self._stop_event = threading.Event()

    def run(self) -> None:
        while not self._stop_event.wait(self.interval):
            try:
                alive = self.queue.heartbeat(self.lease)
            except OSError as exc:  # pragma: no cover - transient fs hiccup
                logger.warning("heartbeat failed transiently: %s", exc)
                continue
            if not alive:
                self.lost = True
                logger.warning(
                    "lost lease on %s/%05d while executing it",
                    self.lease.campaign_id, self.lease.batch_index,
                )
                return

    def stop(self) -> None:
        self._stop_event.set()
        self.join(timeout=10.0)


class Worker:
    """One member of the fleet: a claim-execute-deposit loop.

    Scans every campaign in the queue, claims pending batches through
    leases, executes them with an ordinary :class:`CampaignRunner`
    (``jobs`` worker processes, the fleet-shared cache, the configured
    engine backend) and deposits per-batch results.  Completely
    stateless between batches — killing a worker at any point loses at
    most the lease TTL of progress.
    """

    def __init__(
        self,
        queue: Union[WorkQueue, str, Path],
        worker_id: Optional[str] = None,
        jobs: int = 1,
        backend: str = "reference",
        timeout: Optional[float] = None,
        ttl: float = DEFAULT_LEASE_TTL,
        poll_interval: float = 0.5,
    ) -> None:
        self.queue = queue if isinstance(queue, WorkQueue) else WorkQueue(queue)
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.ttl = ttl
        self.poll_interval = poll_interval
        self.runner = CampaignRunner(
            jobs=jobs,
            timeout=timeout,
            cache=self.queue.cache,
            backend=_require_equivalent_backend(backend),
        )
        self.batches_executed = 0
        self._load_failures: Dict[Tuple[str, int], int] = {}

    def run_once(self) -> int:
        """One scan over the queue; returns how many batches were executed."""
        executed = 0
        for campaign_id in self.queue.campaigns():
            manifest = self.queue.manifest(campaign_id)
            if manifest is None:
                continue
            for index in self.queue.pending(campaign_id, manifest=manifest):
                lease = self.queue.try_acquire(campaign_id, index, self.worker_id, ttl=self.ttl)
                if lease is None:
                    continue
                if self.queue.batch_done(campaign_id, index):
                    # A peer deposited the result between our pending
                    # scan and the claim; don't execute it twice.
                    self.queue.release(lease)
                    continue
                try:
                    if self._execute_batch(manifest, lease):
                        executed += 1
                except Exception as exc:
                    # Infra failure (not a run failure: those become
                    # failure records).  Leave the batch for a retry.
                    logger.warning(
                        "batch %s/%05d failed in worker %s (%s: %s); releasing for retry",
                        campaign_id, index, self.worker_id, type(exc).__name__, exc,
                    )
                finally:
                    self.queue.release(lease)
        self.batches_executed += executed
        return executed

    def _execute_batch(self, manifest: Dict[str, object], lease: Lease) -> bool:
        reducer = None
        try:
            tasks = self.queue.load_batch(lease.campaign_id, lease.batch_index)
            if manifest["kind"] == "reduced":
                reducer = self.queue.reducer_for(manifest)
        except Exception as exc:
            tasks = None
            logger.warning(
                "batch %s/%05d payload is unusable (%s: %s)",
                lease.campaign_id, lease.batch_index, type(exc).__name__, exc,
            )
        if tasks is None:
            # Unreadable/undecodable payload (version-skewed fleet
            # member, torn copy, ...).  Retrying locally is pointless
            # after a few attempts, and leaving the batch pending would
            # hang the submitter while workers churn on the lease —
            # poison it so collect() surfaces a hard error instead.
            key = (lease.campaign_id, lease.batch_index)
            self._load_failures[key] = self._load_failures.get(key, 0) + 1
            if self._load_failures[key] >= 3:
                self.queue.poison(
                    lease.campaign_id,
                    lease.batch_index,
                    self.worker_id,
                    "batch payload unreadable (corrupt file or incompatible "
                    "repro version on this worker)",
                )
            return False
        heartbeat = _LeaseHeartbeat(self.queue, lease)
        heartbeat.start()
        before = self.runner.stats.snapshot()
        try:
            if reducer is not None:
                records = self.runner.run_reduced(tasks, reducer, capture_errors=True)
            else:
                records = self.runner.run_tasks(tasks, capture_errors=True)
        finally:
            heartbeat.stop()
        deposited = self.queue.write_result(
            lease.campaign_id,
            lease.batch_index,
            records,
            self.worker_id,
            self.runner.stats.since(before),
        )
        if not deposited:
            logger.info(
                "batch %s/%05d already had a result (lease race); discarding duplicate",
                lease.campaign_id, lease.batch_index,
            )
        return True

    def run(self, max_idle: Optional[float] = None) -> int:
        """Poll until stopped; returns total batches executed.

        With ``max_idle`` the worker exits after that many consecutive
        seconds without finding claimable work (set it above the lease
        TTL so a crashed peer's batches can still expire and be
        reclaimed before giving up).  Without it the loop runs forever —
        the long-lived fleet-member mode.
        """
        idle_since: Optional[float] = None
        while True:
            executed = self.run_once()
            if executed:
                idle_since = None
                continue
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            if max_idle is not None and now - idle_since >= max_idle:
                return self.batches_executed
            time.sleep(self.poll_interval)

    def close(self) -> None:
        self.runner.close()


def run_worker(
    queue_dir: Union[str, Path],
    worker_id: Optional[str] = None,
    jobs: int = 1,
    backend: str = "reference",
    timeout: Optional[float] = None,
    ttl: float = DEFAULT_LEASE_TTL,
    poll_interval: float = 0.5,
    max_idle: Optional[float] = None,
) -> int:
    """Run one worker loop to completion (the ``repro-ho worker`` body)."""
    worker = Worker(
        queue_dir,
        worker_id=worker_id,
        jobs=jobs,
        backend=backend,
        timeout=timeout,
        ttl=ttl,
        poll_interval=poll_interval,
    )
    try:
        return worker.run(max_idle=max_idle)
    finally:
        worker.close()


@dataclass
class DistributedCampaignResult(CampaignResult):
    """A campaign result annotated with per-worker execution stats."""

    worker_stats: Dict[str, RunnerStats] = field(default_factory=dict)


@dataclass
class DistributedReducedCampaignResult(ReducedCampaignResult):
    """A reduced campaign result annotated with per-worker stats."""

    worker_stats: Dict[str, RunnerStats] = field(default_factory=dict)


class DistributedCampaignRunner:
    """Submit campaigns to a worker fleet and wait for their results.

    Implements the :class:`CampaignRunner` execution surface
    (``run_tasks``/``run_reduced``/``run_campaign``/
    ``run_reduced_campaign``), so experiment drivers accept it through
    the existing ``runner=`` kwarg and every E1-E12 sweep can run
    fleet-wide with no driver changes.  The runner itself executes
    nothing: cacheable results are served from the fleet-shared cache,
    everything else is enqueued and awaited.

    Parameters
    ----------
    queue_dir:
        The shared queue directory workers poll
        (``repro-ho worker --queue-dir ...``).
    batch_size:
        Tasks per claimable batch: the unit of scheduling (and of loss
        when a worker crashes).
    wait_timeout:
        Upper bound in seconds on waiting for the fleet (``None`` =
        wait forever); on expiry a :class:`RunTimeoutError` names the
        still-pending batches.
    backend:
        Default engine backend stamped onto submitted tasks that do not
        pin one, exactly like :class:`CampaignRunner`'s.
    """

    def __init__(
        self,
        queue_dir: Union[str, Path],
        batch_size: int = 8,
        backend: str = "reference",
        poll_interval: float = 0.2,
        wait_timeout: Optional[float] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.queue = queue_dir if isinstance(queue_dir, WorkQueue) else WorkQueue(queue_dir)
        self.batch_size = batch_size
        # Fails fast on typos and on backends (e.g. async) that are not
        # result-identical: those cannot honour the fleet's
        # byte-identity contract.
        self.backend = _require_equivalent_backend(backend)
        self.poll_interval = poll_interval
        self.wait_timeout = wait_timeout
        self.cache = self.queue.cache
        self.stats = RunnerStats()
        #: Per-worker stats accumulated over every campaign this runner
        #: submitted (worker id → summed batch deltas).
        self.worker_stats: Dict[str, RunnerStats] = {}

    # -- CampaignRunner surface -------------------------------------------------
    def run_tasks(
        self, tasks: Sequence[RunTask], capture_errors: bool = False
    ) -> List[RunRecord]:
        """Execute ``tasks`` fleet-wide; one :class:`RunRecord` each, in order."""
        return self._run(tasks, kind="records", reducer=None, capture_errors=capture_errors)

    def run_reduced(
        self, tasks: Sequence[RunTask], reducer: Reducer, capture_errors: bool = False
    ) -> List[ReducedRecord]:
        """Execute ``tasks`` fleet-wide with in-worker reduction."""
        return self._run(tasks, kind="reduced", reducer=reducer, capture_errors=capture_errors)

    def run_simulations(self, tasks: Sequence[RunTask]):
        raise NotImplementedError(
            "full SimulationResults (n² × rounds heard-of collections) are too "
            "heavy for the shared store; use run_tasks or run_reduced, whose "
            "records are the distributed wire format"
        )

    def run_campaign(self, spec: CampaignSpec) -> DistributedCampaignResult:
        """Expand ``spec``, execute it fleet-wide, reassemble in order."""
        before = self.stats.snapshot()
        workers_before = {name: stats.snapshot() for name, stats in self.worker_stats.items()}
        run_specs = spec.expand()
        tasks, task_positions, failures = materialise_specs(run_specs, self.stats)
        records_by_index: Dict[int, RunRecord] = {
            position: RunRecord.failure(
                message,
                key=run_spec.config_hash(),
                cell=run_spec.cell(),
                run_index=run_spec.run_index,
                seed=run_spec.seed,
            )
            for position, (message, run_spec) in failures.items()
        }
        executed = self.run_tasks(tasks, capture_errors=True)
        for position, record in zip(task_positions, executed):
            records_by_index[position] = record
        return DistributedCampaignResult(
            spec=spec,
            records=[records_by_index[position] for position in range(len(run_specs))],
            stats=self.stats.since(before),
            worker_stats=self._worker_stats_since(workers_before),
        )

    def run_reduced_campaign(
        self, spec: CampaignSpec, reducer: Reducer
    ) -> DistributedReducedCampaignResult:
        """Like :meth:`run_campaign`, with in-worker reduction."""
        before = self.stats.snapshot()
        workers_before = {name: stats.snapshot() for name, stats in self.worker_stats.items()}
        run_specs = spec.expand()
        tasks, task_positions, failures = materialise_specs(run_specs, self.stats)
        records_by_index: Dict[int, ReducedRecord] = {
            position: ReducedRecord.failure(
                message,
                reducer_name=reducer.name,
                key=reduced_cache_key(run_spec.config_hash(), reducer),
                cell=run_spec.cell(),
                run_index=run_spec.run_index,
                seed=run_spec.seed,
            )
            for position, (message, run_spec) in failures.items()
        }
        executed = self.run_reduced(tasks, reducer, capture_errors=True)
        for position, record in zip(task_positions, executed):
            records_by_index[position] = record
        return DistributedReducedCampaignResult(
            spec=spec,
            reducer=reducer,
            records=[records_by_index[position] for position in range(len(run_specs))],
            stats=self.stats.since(before),
            worker_stats=self._worker_stats_since(workers_before),
        )

    # -- submission without waiting --------------------------------------------
    def submit_campaign(
        self, spec: CampaignSpec, reducer: Optional[Reducer] = None
    ) -> Optional[str]:
        """Enqueue a campaign and return immediately with its id.

        Materialisation failures are *not* persisted — a later
        ``run_campaign`` of the same spec recomputes them
        deterministically.  Returns ``None`` when nothing needed
        enqueuing (every run already cached).
        """
        tasks, _, _ = materialise_specs(spec.expand(), RunnerStats())
        tasks = self._with_backend(tasks)
        pending = [task for task in tasks if self._cached(task, reducer) is None]
        if not pending:
            return None
        kind = "records" if reducer is None else "reduced"
        return self.queue.submit(
            pending, kind=kind, reducer=reducer, batch_size=self.batch_size
        )

    def wait(self, campaign_id: str, timeout: Optional[float] = None) -> None:
        """Block until every batch of ``campaign_id`` has a result."""
        timeout = timeout if timeout is not None else self.wait_timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            # One manifest read per poll, shared with the pending scan.
            manifest = self.queue.manifest(campaign_id)
            pending = self.queue.pending(campaign_id, manifest=manifest)
            if manifest is not None and not pending:
                return
            if deadline is not None and time.monotonic() >= deadline:
                raise RunTimeoutError(
                    f"campaign {campaign_id!r}: {len(pending)} batch(es) still pending "
                    f"after {timeout}s — is a worker fleet running? "
                    f"(repro-ho worker --queue-dir {self.queue.queue_dir})"
                )
            time.sleep(self.poll_interval)

    # -- internals -------------------------------------------------------------
    def _with_backend(self, tasks: Sequence[RunTask]) -> List[RunTask]:
        from dataclasses import replace

        if self.backend == "reference":
            return list(tasks)
        return [
            replace(task, backend=self.backend) if task.backend is None else task
            for task in tasks
        ]

    def _cache_key(self, task: RunTask, reducer: Optional[Reducer]) -> Optional[str]:
        base = cacheable_key(task)
        if base is None:
            return None
        return base if reducer is None else reduced_cache_key(base, reducer)

    def _cached(self, task: RunTask, reducer: Optional[Reducer]):
        key = self._cache_key(task, reducer)
        if key is None:
            return None
        return self.cache.get(key) if reducer is None else self.cache.get_reduced(key)

    def _run(
        self,
        tasks: Sequence[RunTask],
        kind: str,
        reducer: Optional[Reducer],
        capture_errors: bool,
    ) -> List:
        started = time.perf_counter()
        tasks = self._with_backend(tasks)
        records: List[Optional[object]] = [None] * len(tasks)
        pending: List[Tuple[int, RunTask]] = []

        for index, task in enumerate(tasks):
            cached = self._cached(task, reducer)
            if cached is not None:
                self.stats.cache_hits += 1
                records[index] = cached
            else:
                if self._cache_key(task, reducer) is not None:
                    self.stats.cache_misses += 1
                pending.append((index, task))

        if pending:
            campaign_id = self.queue.submit(
                [task for _, task in pending],
                kind=kind,
                reducer=reducer,
                batch_size=self.batch_size,
            )
            while True:
                self.wait(campaign_id)
                try:
                    fetched, batch_worker_stats = self.queue.collect(campaign_id)
                    break
                except IncompleteCampaignError as exc:
                    # A concurrent submitter requeued a failed batch (or
                    # a corrupt deposit was just discarded) between our
                    # wait and collect: wait for its re-execution.
                    logger.info("collect raced a requeue (%s); waiting again", exc)
            if len(fetched) != len(pending):
                raise RuntimeError(
                    f"campaign {campaign_id!r} returned {len(fetched)} records "
                    f"for {len(pending)} submitted tasks"
                )
            for (index, _), record in zip(pending, fetched):
                records[index] = record
            for worker, delta in batch_worker_stats.items():
                self.worker_stats.setdefault(worker, RunnerStats()).merge(delta)
                self.stats.executed += delta.executed
            # Failures are reported to this submitter but never sticky:
            # drop the results of batches containing failed/timed-out
            # runs so a later re-submission re-executes them (the
            # successful runs are in the shared cache already, so the
            # retry only redoes the failures).  Mirrors the local
            # runner, which caches only ok records.
            for batch_index in range(0, len(fetched), self.batch_size):
                chunk = fetched[batch_index : batch_index + self.batch_size]
                if any(not record.ok for record in chunk):
                    self.queue.discard_result(campaign_id, batch_index // self.batch_size)

        self.stats.total += len(tasks)
        self.stats.failures += sum(
            1 for r in records if r is not None and r.error and not r.timed_out
        )
        self.stats.timeouts += sum(1 for r in records if r is not None and r.timed_out)
        self.stats.elapsed_seconds += time.perf_counter() - started
        records = _require_complete(records, f"distributed {kind}")
        if not capture_errors:
            failed = [record for record in records if not record.ok]
            if failed:
                first = failed[0]
                raise RuntimeError(
                    f"{len(failed)} of {len(records)} distributed runs failed; "
                    f"first failure (run_index={first.run_index}): {first.error}"
                )
        return records

    def _worker_stats_since(
        self, before: Dict[str, RunnerStats]
    ) -> Dict[str, RunnerStats]:
        return {
            name: stats.since(before[name]) if name in before else stats.snapshot()
            for name, stats in self.worker_stats.items()
        }

    # -- lifecycle --------------------------------------------------------------
    def close(self) -> None:
        """Nothing to tear down (the fleet outlives submitters)."""

    def __enter__(self) -> "DistributedCampaignRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Compact, serialisable per-run records and runner statistics.

Worker processes do not ship the full :class:`SimulationResult` (process
objects plus the entire heard-of collection) back to the parent for
campaign runs; they reduce each run to a :class:`RunRecord` carrying
exactly what batch aggregation and the experiment reports consume.
Records are plain JSON-able data, which is also what the on-disk result
cache stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.core.predicates import CommunicationPredicate
from repro.simulation.engine import SimulationResult


@dataclass
class RunRecord:
    """Everything batch aggregation needs to know about one run."""

    agreement: bool = False
    integrity: bool = False
    termination: bool = False
    validity: bool = False
    all_satisfied: bool = False
    rounds_executed: int = 0
    first_decision_round: Optional[int] = None
    last_decision_round: Optional[int] = None
    decided_count: int = 0
    messages_sent: int = 0
    messages_dropped: int = 0
    messages_corrupted: int = 0
    predicate_held: Optional[bool] = None
    violations: List[str] = field(default_factory=list)
    algorithm_name: str = ""
    adversary_name: str = ""
    key: Optional[str] = None
    cell: Dict[str, object] = field(default_factory=dict)
    run_index: int = 0
    seed: Optional[int] = None
    timed_out: bool = False
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the run actually executed (no crash, no timeout)."""
        return self.error is None and not self.timed_out

    @classmethod
    def from_result(
        cls,
        result: SimulationResult,
        predicate: Optional[CommunicationPredicate] = None,
        key: Optional[str] = None,
        cell: Optional[Mapping[str, object]] = None,
        run_index: int = 0,
        seed: Optional[int] = None,
    ) -> "RunRecord":
        outcome = result.outcome
        metrics = result.metrics
        return cls(
            agreement=outcome.agreement,
            integrity=outcome.integrity,
            termination=outcome.termination,
            validity=outcome.validity,
            all_satisfied=outcome.all_satisfied,
            rounds_executed=outcome.rounds_executed,
            first_decision_round=outcome.first_decision_round,
            last_decision_round=outcome.last_decision_round,
            decided_count=len(outcome.decisions),
            messages_sent=metrics.messages_sent,
            messages_dropped=metrics.messages_dropped,
            messages_corrupted=metrics.messages_corrupted,
            predicate_held=(
                predicate.holds(result.collection) if predicate is not None else None
            ),
            violations=list(outcome.violations),
            algorithm_name=result.algorithm_name,
            adversary_name=result.adversary_name,
            key=key,
            cell=dict(cell or {}),
            run_index=run_index,
            seed=seed,
        )

    @classmethod
    def failure(
        cls,
        error: str,
        timed_out: bool = False,
        key: Optional[str] = None,
        cell: Optional[Mapping[str, object]] = None,
        run_index: int = 0,
        seed: Optional[int] = None,
    ) -> "RunRecord":
        return cls(
            error=error,
            timed_out=timed_out,
            key=key,
            cell=dict(cell or {}),
            run_index=run_index,
            seed=seed,
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "agreement": self.agreement,
            "integrity": self.integrity,
            "termination": self.termination,
            "validity": self.validity,
            "all_satisfied": self.all_satisfied,
            "rounds_executed": self.rounds_executed,
            "first_decision_round": self.first_decision_round,
            "last_decision_round": self.last_decision_round,
            "decided_count": self.decided_count,
            "messages_sent": self.messages_sent,
            "messages_dropped": self.messages_dropped,
            "messages_corrupted": self.messages_corrupted,
            "predicate_held": self.predicate_held,
            "violations": list(self.violations),
            "algorithm_name": self.algorithm_name,
            "adversary_name": self.adversary_name,
            "key": self.key,
            "cell": dict(self.cell),
            "run_index": self.run_index,
            "seed": self.seed,
            "timed_out": self.timed_out,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        return cls(
            agreement=bool(data.get("agreement", False)),
            integrity=bool(data.get("integrity", False)),
            termination=bool(data.get("termination", False)),
            validity=bool(data.get("validity", False)),
            all_satisfied=bool(data.get("all_satisfied", False)),
            rounds_executed=int(data.get("rounds_executed", 0)),
            first_decision_round=data.get("first_decision_round"),
            last_decision_round=data.get("last_decision_round"),
            decided_count=int(data.get("decided_count", 0)),
            messages_sent=int(data.get("messages_sent", 0)),
            messages_dropped=int(data.get("messages_dropped", 0)),
            messages_corrupted=int(data.get("messages_corrupted", 0)),
            predicate_held=data.get("predicate_held"),
            violations=list(data.get("violations", [])),
            algorithm_name=str(data.get("algorithm_name", "")),
            adversary_name=str(data.get("adversary_name", "")),
            key=data.get("key"),
            cell=dict(data.get("cell", {})),
            run_index=int(data.get("run_index", 0)),
            seed=data.get("seed"),
            timed_out=bool(data.get("timed_out", False)),
            error=data.get("error"),
        )


@dataclass
class RunnerStats:
    """Counters the runner keeps across :meth:`CampaignRunner.run_tasks` calls."""

    total: int = 0
    executed: int = 0
    #: Runs handed to a batch-capable backend as part of a whole-group
    #: ``run_batch`` call (a subset of ``executed``).
    batched: int = 0
    #: Rounds whose fault schedule a batch planner produced array-at-a-
    #: time (summed over batched runs; 0 when every adversary fell back
    #: to per-run planning).  A new counter widens the stats payload but
    #: readers tolerate missing keys, so the cache schema version is
    #: unchanged.
    batch_planned: int = 0
    #: Memory-budget splits of batch run groups (k chunks in a group
    #: count as k - 1; 0 when ``REPRO_BATCH_MEMORY_BUDGET`` is unset or
    #: never forced a split).  Readers tolerate the missing key, so the
    #: cache schema version is unchanged.
    batch_chunks: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    failures: int = 0
    timeouts: int = 0
    elapsed_seconds: float = 0.0

    def snapshot(self) -> "RunnerStats":
        """A copy of the current counters (for per-campaign deltas)."""
        return RunnerStats(
            total=self.total,
            executed=self.executed,
            batched=self.batched,
            batch_planned=self.batch_planned,
            batch_chunks=self.batch_chunks,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            failures=self.failures,
            timeouts=self.timeouts,
            elapsed_seconds=self.elapsed_seconds,
        )

    def since(self, earlier: "RunnerStats") -> "RunnerStats":
        """The counters accrued since ``earlier`` was snapshotted."""
        return RunnerStats(
            total=self.total - earlier.total,
            executed=self.executed - earlier.executed,
            batched=self.batched - earlier.batched,
            batch_planned=self.batch_planned - earlier.batch_planned,
            batch_chunks=self.batch_chunks - earlier.batch_chunks,
            cache_hits=self.cache_hits - earlier.cache_hits,
            cache_misses=self.cache_misses - earlier.cache_misses,
            failures=self.failures - earlier.failures,
            timeouts=self.timeouts - earlier.timeouts,
            elapsed_seconds=self.elapsed_seconds - earlier.elapsed_seconds,
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "total": self.total,
            "executed": self.executed,
            "batched": self.batched,
            "batch_planned": self.batch_planned,
            "batch_chunks": self.batch_chunks,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "failures": self.failures,
            "timeouts": self.timeouts,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
        }

    def counter_items(self) -> List[tuple]:
        """The integer counters as ``(name, value)`` pairs, in field order.

        ``elapsed_seconds`` is deliberately excluded: it is a duration,
        not a count, and the fleet observes durations through histograms
        instead.  This is the seam the worker uses to fold a per-unit
        stats delta into ``repro_runner_runs_total{counter=...}`` without
        hard-coding the field list in two places.
        """
        return [
            ("total", self.total),
            ("executed", self.executed),
            ("batched", self.batched),
            ("batch_planned", self.batch_planned),
            ("batch_chunks", self.batch_chunks),
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
            ("failures", self.failures),
            ("timeouts", self.timeouts),
        ]

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunnerStats":
        """Rebuild stats shipped as JSON (distributed batch results)."""
        return cls(
            total=int(data.get("total", 0)),
            executed=int(data.get("executed", 0)),
            batched=int(data.get("batched", 0)),
            batch_planned=int(data.get("batch_planned", 0)),
            batch_chunks=int(data.get("batch_chunks", 0)),
            cache_hits=int(data.get("cache_hits", 0)),
            cache_misses=int(data.get("cache_misses", 0)),
            failures=int(data.get("failures", 0)),
            timeouts=int(data.get("timeouts", 0)),
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
        )

    def merge(self, other: "RunnerStats") -> None:
        """Fold another stats delta into this one, in place."""
        self.total += other.total
        self.executed += other.executed
        self.batched += other.batched
        self.batch_planned += other.batch_planned
        self.batch_chunks += other.batch_chunks
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.failures += other.failures
        self.timeouts += other.timeouts
        self.elapsed_seconds += other.elapsed_seconds

    def summary(self) -> str:
        parts = [
            f"runs={self.total}",
            f"executed={self.executed}",
            f"cache_hits={self.cache_hits}",
            f"cache_misses={self.cache_misses}",
        ]
        if self.batched:
            parts.append(f"batched={self.batched}")
        if self.batch_planned:
            parts.append(f"batch_planned={self.batch_planned}")
        if self.batch_chunks:
            parts.append(f"batch_chunks={self.batch_chunks}")
        if self.failures:
            parts.append(f"failures={self.failures}")
        if self.timeouts:
            parts.append(f"timeouts={self.timeouts}")
        parts.append(f"elapsed={self.elapsed_seconds:.2f}s")
        return " ".join(parts)

"""Factories turning declarative specs into live simulation objects.

The campaign runner executes runs in worker processes, so runs are
described by plain-data specs (:mod:`repro.runner.spec`) and the
objects — algorithm, adversary, workload, predicate — are built from
small registries keyed by name.  Each adversary builder receives the
system size and the run's derived seed so fault schedules are
reproducible per run.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional

from repro.adversary import (
    BlockFaultAdversary,
    LatencyAdversary,
    MinimumSafeDeliveryAdversary,
    PeriodicGoodPhaseAdversary,
    PeriodicGoodRoundAdversary,
    RandomCorruptionAdversary,
    RandomOmissionAdversary,
    ReliableAdversary,
    RotatingSenderCorruptionAdversary,
    SplitVoteAdversary,
    StaticByzantineAdversary,
)
from repro.adversary.base import Adversary
from repro.algorithms import make_algorithm
from repro.core.algorithm import HOAlgorithm
from repro.core.predicates import (
    AlphaSafePredicate,
    BenignPredicate,
    CommunicationPredicate,
    PermanentAlphaPredicate,
    TruePredicate,
)
from repro.core.process import ProcessId, Value
from repro.runner.spec import AdversarySpec, AlgorithmSpec, PredicateSpec, WorkloadSpec
from repro.workloads import generators


# ----------------------------------------------------------------------
# Algorithms
# ----------------------------------------------------------------------
def build_algorithm(spec: AlgorithmSpec, n: int) -> HOAlgorithm:
    """Construct the algorithm named by ``spec`` for ``n`` processes."""
    return make_algorithm(spec.name, n=n, **dict(spec.params))


# ----------------------------------------------------------------------
# Adversaries
# ----------------------------------------------------------------------
def _adv_reliable(n: int, seed: int, **params: object) -> Adversary:
    return ReliableAdversary()


def _adv_random_omission(n: int, seed: int, drop_probability: float = 0.1, **params) -> Adversary:
    return RandomOmissionAdversary(drop_probability=drop_probability, seed=seed)


def _adv_omission_good_rounds(
    n: int, seed: int, drop_probability: float = 0.2, period: int = 4, **params
) -> Adversary:
    return PeriodicGoodRoundAdversary(
        inner=RandomOmissionAdversary(drop_probability=drop_probability, seed=seed),
        period=period,
    )


def _adv_random_corruption(n: int, seed: int, alpha: int = 1, **params) -> Adversary:
    return RandomCorruptionAdversary(alpha=alpha, value_domain=(0, 1), seed=seed)


def _adv_rotating_corruption(n: int, seed: int, alpha: int = 1, **params) -> Adversary:
    return RotatingSenderCorruptionAdversary(alpha=alpha, value_domain=(0, 1), seed=seed)


def _adv_corruption_good_rounds(
    n: int, seed: int, alpha: int = 1, period: int = 4, **params
) -> Adversary:
    return PeriodicGoodRoundAdversary(
        inner=RandomCorruptionAdversary(alpha=alpha, value_domain=(0, 1), seed=seed),
        period=period,
    )


def _adv_corruption_good_phases(
    n: int, seed: int, alpha: int = 1, period: int = 3, **params
) -> Adversary:
    return PeriodicGoodPhaseAdversary(
        inner=RandomCorruptionAdversary(alpha=alpha, value_domain=(0, 1), seed=seed),
        period=period,
    )


def _adv_ute_safe_env(
    n: int,
    seed: int,
    alpha: int = 1,
    minimum: Optional[float] = None,
    period: int = 3,
    **params,
) -> Adversary:
    """Corruption bounded by alpha, with the P^U,safe floor and good phases."""
    inner = RandomCorruptionAdversary(alpha=alpha, value_domain=(0, 1), seed=seed)
    if minimum is not None:
        inner = MinimumSafeDeliveryAdversary.for_strict_bound(inner, float(minimum))
    return PeriodicGoodPhaseAdversary(inner=inner, period=period)


def _adv_split_vote(n: int, seed: int, budget: int = 1, **params) -> Adversary:
    return SplitVoteAdversary(budget_per_receiver=budget, value_a=0, value_b=1, seed=seed)


def _adv_block_faults(
    n: int, seed: int, faults_per_round: Optional[int] = None, **params
) -> Adversary:
    per_round = faults_per_round if faults_per_round is not None else n // 2
    return BlockFaultAdversary(faults_per_round=per_round, value_domain=(0, 1), seed=seed)


def _adv_latency(
    n: int, seed: int, delay_per_round: float = 0.05, drop_probability: float = 0.0, **params
) -> Adversary:
    """Reliable (or lossy) delivery plus fixed per-round wall-clock latency.

    I/O-bound rounds: what the distributed scaling benchmarks use to
    measure fleet scheduling overhead independently of CPU throughput.
    """
    inner: Adversary = (
        RandomOmissionAdversary(drop_probability=drop_probability, seed=seed)
        if drop_probability
        else ReliableAdversary()
    )
    return LatencyAdversary(inner=inner, delay_per_round=float(delay_per_round))


def _adv_static_byzantine(
    n: int, seed: int, f: int = 1, equivocate: bool = True, **params
) -> Adversary:
    return StaticByzantineAdversary(
        byzantine=range(f), equivocate=equivocate, value_domain=(0, 1), seed=seed
    )


_ADVERSARIES: Dict[str, Callable[..., Adversary]] = {
    "reliable": _adv_reliable,
    "random-omission": _adv_random_omission,
    "omission-good-rounds": _adv_omission_good_rounds,
    "random-corruption": _adv_random_corruption,
    "rotating-corruption": _adv_rotating_corruption,
    "corruption-good-rounds": _adv_corruption_good_rounds,
    "corruption-good-phases": _adv_corruption_good_phases,
    "ute-safe-env": _adv_ute_safe_env,
    "split-vote": _adv_split_vote,
    "block-faults": _adv_block_faults,
    "static-byzantine": _adv_static_byzantine,
    "latency": _adv_latency,
}


def available_adversaries() -> List[str]:
    """Names accepted by :func:`build_adversary` (for CLI help/errors)."""
    return sorted(_ADVERSARIES)


def build_adversary(spec: AdversarySpec, n: int, seed: int) -> Adversary:
    """Materialise a declarative adversary spec into a live adversary."""
    builder = _ADVERSARIES.get(spec.name)
    if builder is None:
        raise KeyError(
            f"unknown adversary {spec.name!r}; available: {', '.join(available_adversaries())}"
        )
    return builder(n=n, seed=seed, **dict(spec.params))


# ----------------------------------------------------------------------
# Workloads (initial values)
# ----------------------------------------------------------------------
def build_workload(spec: WorkloadSpec, n: int, seed: int) -> Mapping[ProcessId, Value]:
    """Generate the initial values the spec's named workload describes."""
    params = dict(spec.params)
    if spec.name == "unanimous":
        return generators.unanimous(n, value=params.get("value", 0))
    if spec.name == "split":
        return generators.split(n, count_a=params.get("count_a"))
    if spec.name == "random":
        return generators.uniform_random(n, seed=seed)
    if spec.name == "skewed":
        return generators.skewed(
            n, minority_fraction=params.get("minority_fraction", 0.25), seed=seed
        )
    if spec.name == "distinct":
        return generators.distinct(n)
    raise KeyError(
        f"unknown workload {spec.name!r}; available: distinct, random, skewed, split, unanimous"
    )


# ----------------------------------------------------------------------
# Predicates
# ----------------------------------------------------------------------
def build_predicate(spec: Optional[PredicateSpec], n: int) -> Optional[CommunicationPredicate]:
    """Materialise a predicate spec (``None`` passes through)."""
    if spec is None:
        return None
    params = dict(spec.params)
    if spec.name == "alpha-safe":
        return AlphaSafePredicate(int(params.get("alpha", 0)))
    if spec.name == "permanent-alpha":
        return PermanentAlphaPredicate(int(params.get("alpha", 0)))
    if spec.name == "benign":
        return BenignPredicate()
    if spec.name == "true":
        return TruePredicate()
    raise KeyError(
        f"unknown predicate {spec.name!r}; available: alpha-safe, benign, permanent-alpha, true"
    )

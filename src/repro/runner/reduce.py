"""In-worker reduction of simulation results to compact records.

``CampaignRunner.run_simulations`` ships the *entire*
:class:`SimulationResult` (all process objects plus the full heard-of
collection) back through pickle for every parallel run, so IPC volume
grows with ``n² × rounds``.  The experiment drivers (E3-E12) only ever
consume per-run summaries — predicate verdicts, decision rounds, fault
counts — so this module lets them describe that summary as a picklable
:class:`Reducer` which :meth:`CampaignRunner.run_reduced` applies
*inside* the worker process; only small JSON-able
:class:`ReducedRecord`s cross the process boundary.

Reduced records are cacheable under the same stable-key scheme as
:class:`RunRecord`: the cache key mixes the task's config hash with the
reducer's :meth:`~Reducer.fingerprint`, so two reducers (or two
parametrisations of one reducer) never collide, and re-running a reduced
campaign is incremental.

Standard reducers
-----------------
* :class:`DecisionReducer` — consensus verdicts, decision values and
  per-process decision rounds (what E6/E7/E9/E10/E12 consume);
* :class:`PredicateReducer` — the same outcome summary plus the verdict
  of a set of named communication predicates on the run's heard-of
  collection (E3/E4/E11);
* :class:`FaultProfileReducer` — the outcome summary plus the per-round
  corruption profile of the collection (E8).

All three include the common outcome/metric fields emitted by
:func:`outcome_fields`, so :func:`batch_report_from_reduced` can fold
any of their outputs into a :class:`BatchReport` that matches
:func:`repro.verification.properties.aggregate` field for field.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional

from repro.core.predicates import CommunicationPredicate
from repro.runner.spec import CACHE_SCHEMA_VERSION, stable_hash
from repro.simulation.engine import SimulationResult
from repro.verification.properties import BatchReport


def outcome_fields(result: SimulationResult) -> Dict[str, object]:
    """The per-run summary every standard reducer includes.

    Mirrors what :class:`repro.runner.records.RunRecord` extracts, so
    aggregating reduced data reproduces the full-result aggregation
    exactly.
    """
    outcome = result.outcome
    metrics = result.metrics
    return {
        "agreement": outcome.agreement,
        "integrity": outcome.integrity,
        "termination": outcome.termination,
        "validity": outcome.validity,
        "all_satisfied": outcome.all_satisfied,
        "rounds_executed": outcome.rounds_executed,
        "first_decision_round": outcome.first_decision_round,
        "last_decision_round": outcome.last_decision_round,
        "decided_count": len(outcome.decisions),
        "messages_sent": metrics.messages_sent,
        "messages_dropped": metrics.messages_dropped,
        "messages_corrupted": metrics.messages_corrupted,
        "violations": list(outcome.violations),
        "algorithm_name": result.algorithm_name,
        "adversary_name": result.adversary_name,
    }


class Reducer:
    """Reduces one :class:`SimulationResult` to a JSON-able dict, in-worker.

    Subclasses set :attr:`name`, implement :meth:`reduce` and return
    their configuration from :meth:`params` (everything that changes
    :meth:`reduce`'s output must appear there — it is what keeps the
    cache fingerprint sound).  Reducers are pickled into worker
    processes, so they must be built from picklable state.
    """

    #: Registry/report name of the reducer.
    name: str = "reducer"

    def params(self) -> Dict[str, object]:
        """JSON-able configuration that determines :meth:`reduce`'s output."""
        return {}

    def fingerprint(self) -> str:
        """Stable identity mixed into reduced cache keys."""
        return stable_hash(
            {
                "schema": CACHE_SCHEMA_VERSION,
                "reducer": self.name,
                "params": self.params(),
            }
        )

    def reduce(self, result: SimulationResult) -> Dict[str, object]:
        """Summarise ``result``; must return JSON-able plain data."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name} {self.params()!r}>"


class DecisionReducer(Reducer):
    """Outcome summary plus decision values and per-process decision rounds.

    ``decision_rounds`` is emitted as a sorted list of ``[process,
    round]`` pairs rather than a dict: JSON would silently stringify
    integer dict keys, breaking the cache round-trip type fidelity the
    runner guarantees.
    """

    name = "decision"

    def reduce(self, result: SimulationResult) -> Dict[str, object]:
        data = outcome_fields(result)
        outcome = result.outcome
        data["decision_values"] = list(outcome.decision_values)
        data["decision_rounds"] = sorted(
            [process, round_num] for process, round_num in outcome.decision_rounds.items()
        )
        return data


class PredicateReducer(Reducer):
    """Outcome summary plus the verdict of named communication predicates.

    ``predicates`` maps report labels to :class:`CommunicationPredicate`
    objects; each is evaluated on the run's heard-of collection inside
    the worker, and the verdicts land in the record's ``"predicates"``
    field as ``{label: bool}``.
    """

    name = "predicate"

    def __init__(self, predicates: Mapping[str, CommunicationPredicate]) -> None:
        if not predicates:
            raise ValueError("PredicateReducer requires at least one predicate")
        self.predicates = dict(predicates)

    def params(self) -> Dict[str, object]:
        # Predicate names embed their parameters (e.g. "P^A,live(T=6,
        # E=6, alpha=1)"), which is what makes this fingerprint sound.
        return {
            "predicates": {
                label: f"{type(p).__name__}:{p.describe()}"
                for label, p in self.predicates.items()
            }
        }

    def reduce(self, result: SimulationResult) -> Dict[str, object]:
        data = outcome_fields(result)
        data["predicates"] = {
            label: bool(p.holds(result.collection)) for label, p in self.predicates.items()
        }
        return data


class FaultProfileReducer(Reducer):
    """Outcome summary plus the collection's per-round corruption profile."""

    name = "fault-profile"

    def reduce(self, result: SimulationResult) -> Dict[str, object]:
        data = outcome_fields(result)
        profile = result.collection.corruption_profile()
        data["corruption_profile"] = list(profile)
        data["max_corruptions_in_a_round"] = max(profile) if profile else 0
        data["total_corruptions"] = result.collection.total_corruptions()
        data["total_omissions"] = result.collection.total_omissions()
        return data


def make_reducer(
    name: str, predicates: Optional[Mapping[str, CommunicationPredicate]] = None
) -> Reducer:
    """Build a standard reducer by name (the CLI's ``--reduce`` surface)."""
    if name == "decision":
        return DecisionReducer()
    if name == "fault-profile":
        return FaultProfileReducer()
    if name == "predicate":
        return PredicateReducer(predicates or {})
    raise KeyError(
        f"unknown reducer {name!r}; available: decision, fault-profile, predicate"
    )


@dataclass
class ReducedRecord:
    """What a reduced run ships back from the worker: data plus identity.

    ``data`` is whatever the reducer produced (empty for failed runs);
    the remaining fields mirror :class:`RunRecord`'s identity/failure
    envelope so campaigns can aggregate, cache and report reduced runs
    through the same machinery.
    """

    data: Dict[str, object] = field(default_factory=dict)
    reducer_name: str = ""
    key: Optional[str] = None
    cell: Dict[str, object] = field(default_factory=dict)
    run_index: int = 0
    seed: Optional[int] = None
    timed_out: bool = False
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the run actually executed (no crash, no timeout)."""
        return self.error is None and not self.timed_out

    @classmethod
    def from_data(
        cls,
        data: Mapping[str, object],
        reducer_name: str = "",
        key: Optional[str] = None,
        cell: Optional[Mapping[str, object]] = None,
        run_index: int = 0,
        seed: Optional[int] = None,
    ) -> "ReducedRecord":
        return cls(
            data=dict(data),
            reducer_name=reducer_name,
            key=key,
            cell=dict(cell or {}),
            run_index=run_index,
            seed=seed,
        )

    @classmethod
    def failure(
        cls,
        error: str,
        timed_out: bool = False,
        reducer_name: str = "",
        key: Optional[str] = None,
        cell: Optional[Mapping[str, object]] = None,
        run_index: int = 0,
        seed: Optional[int] = None,
    ) -> "ReducedRecord":
        return cls(
            reducer_name=reducer_name,
            error=error,
            timed_out=timed_out,
            key=key,
            cell=dict(cell or {}),
            run_index=run_index,
            seed=seed,
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "data": dict(self.data),
            "reducer_name": self.reducer_name,
            "key": self.key,
            "cell": dict(self.cell),
            "run_index": self.run_index,
            "seed": self.seed,
            "timed_out": self.timed_out,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ReducedRecord":
        return cls(
            data=dict(payload.get("data", {})),
            reducer_name=str(payload.get("reducer_name", "")),
            key=payload.get("key"),
            cell=dict(payload.get("cell", {})),
            run_index=int(payload.get("run_index", 0)),
            seed=payload.get("seed"),
            timed_out=bool(payload.get("timed_out", False)),
            error=payload.get("error"),
        )


def reduced_cache_key(task_key: str, reducer: Reducer) -> str:
    """Cache key of one reduced run: config hash × reducer fingerprint."""
    return stable_hash({"task": task_key, "reducer": reducer.fingerprint()})


def batch_report_from_reduced(
    rows: Iterable[Mapping[str, object]], predicate_label: Optional[str] = None
) -> BatchReport:
    """Fold reduced data dicts into a :class:`BatchReport`.

    Matches :func:`repro.verification.properties.aggregate` on the same
    runs field for field.  With ``predicate_label``, the report also
    counts how often that predicate (from a :class:`PredicateReducer`'s
    ``"predicates"`` field) held, and how many runs are genuine
    counterexamples.
    """
    report = BatchReport(predicate_held=0 if predicate_label is not None else None)
    for row in rows:
        report.total += 1
        report.agreement_ok += int(bool(row["agreement"]))
        report.integrity_ok += int(bool(row["integrity"]))
        report.termination_ok += int(bool(row["termination"]))
        report.validity_ok += int(bool(row["validity"]))
        if row["last_decision_round"] is not None:
            report.decision_rounds.append(int(row["last_decision_round"]))
        report.corruption_totals.append(int(row["messages_corrupted"]))
        report.violations.extend(row["violations"])
        if predicate_label is not None:
            held = bool(row["predicates"][predicate_label])
            report.predicate_held += int(held)
            if held and not row["all_satisfied"]:
                report.counterexamples += 1
    return report


def reduced_data(records: Iterable[ReducedRecord]) -> List[Dict[str, object]]:
    """Extract the data dicts, refusing failed runs.

    Drivers index reduced rows positionally against their inputs, so a
    failed run cannot be silently skipped — it must surface here.
    """
    rows: List[Dict[str, object]] = []
    for record in records:
        if not record.ok:
            raise RuntimeError(
                f"cannot use failed reduced run (run_index={record.run_index}): "
                f"{record.error}"
            )
        rows.append(dict(record.data))
    return rows

"""The campaign executor: serial or multiprocessing-backed run execution.

Two execution surfaces are offered:

* :meth:`CampaignRunner.run_tasks` — execute concrete
  :class:`RunTask`s (constructed algorithm/adversary objects) and
  return compact :class:`RunRecord`s.  This is what
  :func:`repro.experiments.common.run_batch` routes through, and the
  only path with result caching (tasks carry stable keys).
* :meth:`CampaignRunner.run_reduced` — execute tasks and apply a
  picklable :class:`repro.runner.reduce.Reducer` *inside* the worker
  process, shipping back only compact JSON-able
  :class:`ReducedRecord`s.  Cached under reducer-fingerprinted keys.
  This is what the collection-inspecting experiment drivers (E3-E12)
  route through: IPC volume stays flat in ``n`` instead of growing
  with the n² × rounds heard-of collection.
* :meth:`CampaignRunner.run_simulations` — like ``run_tasks`` but
  returning full :class:`SimulationResult`s for callers that genuinely
  need whole collections in the parent.  No caching (full results are
  too heavy to persist per run).
* :meth:`CampaignRunner.run_campaign` /
  :meth:`CampaignRunner.run_reduced_campaign` — expand a declarative
  :class:`CampaignSpec` into tasks and execute them with caching.

Parallel execution uses :class:`concurrent.futures.ProcessPoolExecutor`;
tasks are pickled to workers, so they must be built from picklable
objects (every algorithm/adversary in this repository is).  Results are
re-ordered by task index, which makes ``--jobs N`` output byte-identical
to serial output.  Per-run timeouts are enforced *inside* the worker via
``SIGALRM`` (POSIX), so a hung run cannot wedge the whole campaign; on
platforms without ``SIGALRM`` the timeout is a no-op.
"""

from __future__ import annotations

import signal
import sys
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.adversary.base import Adversary
from repro.core.algorithm import HOAlgorithm
from repro.core.predicates import CommunicationPredicate
from repro.core.process import ProcessId, Value
from repro.runner.cache import ResultCache
from repro.runner.metrics import UNIT_SECONDS_BUCKETS, MetricsRegistry
from repro.runner.factories import (
    build_adversary,
    build_algorithm,
    build_predicate,
    build_workload,
)
from repro.runner.records import RunRecord, RunnerStats
from repro.runner.reduce import Reducer, ReducedRecord, reduced_cache_key
from repro.runner.spec import CampaignSpec, RunSpec
from repro.simulation.backends import EngineBackend, get_backend, run_simulation
from repro.simulation.batch_engine import SimulationRequest
from repro.simulation.engine import SimulationConfig, SimulationResult


class RunTimeoutError(RuntimeError):
    """A single simulated run exceeded its wall-clock budget."""


@dataclass
class RunTask:
    """One concrete run: live objects plus execution parameters.

    ``key`` is the stable cache key (``None`` disables caching for this
    task); ``cell``/``run_index``/``seed`` are carried through into the
    resulting :class:`RunRecord` for aggregation and reporting.
    """

    algorithm: HOAlgorithm
    adversary: Adversary
    initial_values: Mapping[ProcessId, Value]
    max_rounds: int = 60
    min_rounds: int = 0
    record_states: bool = False
    predicate: Optional[CommunicationPredicate] = None
    key: Optional[str] = None
    cell: Dict[str, object] = field(default_factory=dict)
    run_index: int = 0
    seed: Optional[int] = None
    #: Engine backend for this task (``None`` = the runner's default):
    #: a registry name, or an :class:`EngineBackend` instance — used
    #: as-is, never re-resolved through the registry, even when its
    #: ``name`` shadows a registered backend.  Never part of the cache
    #: key; non-result-identical backends are excluded from caching
    #: instead (see :meth:`CampaignRunner._cacheable_key`).
    backend: Optional[Union[str, EngineBackend]] = None

    def __post_init__(self) -> None:
        # Same fail-fast as CampaignSpec: a typoed backend should raise
        # here, with a did-you-mean, not once per run inside a worker.
        if isinstance(self.backend, str):
            get_backend(self.backend)


@dataclass
class CampaignResult:
    """Outcome of one :meth:`CampaignRunner.run_campaign` invocation.

    ``stats`` is a per-campaign snapshot (the delta accrued by this
    invocation), not the runner's lifetime counters — a reused runner's
    second campaign reports only its own totals.
    """

    spec: CampaignSpec
    records: List[RunRecord]
    stats: RunnerStats


@dataclass
class ReducedCampaignResult:
    """Outcome of one :meth:`CampaignRunner.run_reduced_campaign` invocation."""

    spec: CampaignSpec
    reducer: Reducer
    records: List[ReducedRecord]
    stats: RunnerStats


@contextmanager
def _deadline(seconds: Optional[float]):
    """Raise :class:`RunTimeoutError` if the body runs longer than ``seconds``.

    Uses ``SIGALRM``, which is only available on POSIX and only from the
    main thread of the process; anywhere else the timeout silently
    degrades to "no limit" rather than failing the run.
    """
    usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    # An outer deadline (or any other caller-armed ITIMER_REAL) must not
    # be silently cancelled: we arm whichever budget expires first and
    # re-arm the outer timer's remainder on exit.
    prior_remaining, prior_interval = signal.getitimer(signal.ITIMER_REAL)
    effective = (
        min(float(seconds), prior_remaining) if prior_remaining > 0.0 else float(seconds)
    )

    def _on_alarm(signum, frame):
        raise RunTimeoutError(f"run exceeded timeout of {effective}s")

    previous_handler = signal.signal(signal.SIGALRM, _on_alarm)
    started = time.monotonic()
    signal.setitimer(signal.ITIMER_REAL, effective)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous_handler)
        if prior_remaining > 0.0:
            remaining = prior_remaining - (time.monotonic() - started)
            timed_out = isinstance(sys.exc_info()[1], RunTimeoutError)
            if remaining > 0.0:
                signal.setitimer(signal.ITIMER_REAL, remaining, prior_interval)
            elif not timed_out:
                # The outer deadline expired while we held the timer and
                # nothing has fired yet: deliver it as soon as possible
                # (setitimer(0) would cancel it instead).
                signal.setitimer(signal.ITIMER_REAL, 1e-6, prior_interval)


def _task_backend(task: RunTask) -> EngineBackend:
    """The task's backend object: registry lookup for names, instances as-is."""
    backend = task.backend or "reference"
    return get_backend(backend) if isinstance(backend, str) else backend


def _task_config(task: RunTask) -> SimulationConfig:
    return SimulationConfig(
        max_rounds=task.max_rounds,
        min_rounds=task.min_rounds,
        stop_when_all_decided=True,
        record_states=task.record_states,
    )


def _task_request(task: RunTask) -> SimulationRequest:
    """The task as a batch-API request (predicate/key stay task-side)."""
    return SimulationRequest(
        algorithm=task.algorithm,
        initial_values=task.initial_values,
        adversary=task.adversary,
        config=_task_config(task),
    )


def _execute_task(task: RunTask, timeout: Optional[float]) -> SimulationResult:
    config = _task_config(task)
    with _deadline(timeout):
        return run_simulation(
            algorithm=task.algorithm,
            initial_values=task.initial_values,
            adversary=task.adversary,
            config=config,
            backend=task.backend or "reference",
        )


def _record_worker(
    payload: Tuple[int, RunTask, Optional[float], bool]
) -> Tuple[int, RunRecord]:
    """Worker: run one task and reduce it to a :class:`RunRecord`."""
    index, task, timeout, capture_errors = payload
    try:
        result = _execute_task(task, timeout)
    except RunTimeoutError as exc:
        return index, RunRecord.failure(
            str(exc), timed_out=True, key=task.key, cell=task.cell,
            run_index=task.run_index, seed=task.seed,
        )
    except Exception as exc:
        if not capture_errors:
            raise
        return index, RunRecord.failure(
            f"{type(exc).__name__}: {exc}", key=task.key, cell=task.cell,
            run_index=task.run_index, seed=task.seed,
        )
    return index, _record_from_result(result, task)


def _record_from_result(result: SimulationResult, task: RunTask) -> RunRecord:
    return RunRecord.from_result(
        result,
        predicate=task.predicate,
        key=task.key,
        cell=task.cell,
        run_index=task.run_index,
        seed=task.seed,
    )


def _planned_rounds(results: Sequence[SimulationResult]) -> int:
    """Rounds the batch backend fault-scheduled array-at-a-time.

    Batch-capable backends report the count per run as
    ``metadata["batch_planned_rounds"]``; runs planned per run (no batch
    planner registered for their adversary class) report 0 or nothing.
    """
    return sum(result.metadata.get("batch_planned_rounds", 0) for result in results)


def _chunk_splits(results: Sequence[SimulationResult]) -> int:
    """Memory-budget splits the batch backend performed for these runs.

    The batch engine marks one result per extra chunk with
    ``metadata["batch_chunks"] = 1`` (a group split into k chunks under
    ``REPRO_BATCH_MEMORY_BUDGET`` carries k - 1 markers); unchunked
    groups and other backends report nothing.
    """
    return sum(result.metadata.get("batch_chunks", 0) for result in results)


def _run_task_batch(
    tasks_with_index: Sequence[Tuple[int, RunTask]], capture_errors: bool
) -> Tuple[List[Tuple[int, RunRecord]], int, int]:
    """Execute one same-backend task group through ``run_batch``.

    A batch aborts as a unit, and the aborted group may already have
    consumed adversary RNG — so on any error the adversaries' seeded
    schedules are reset (their documented replay contract) and the
    group re-executes run by run, isolating the failing run exactly as
    per-run dispatch would.  Returns the indexed records plus the
    group's batch-planned round count and memory-budget split count
    (both 0 on the recovery path).
    """
    pairs = list(tasks_with_index)
    chosen = _task_backend(pairs[0][1])
    try:
        results = chosen.run_batch([_task_request(task) for _, task in pairs])
    except Exception:
        for _, task in pairs:
            task.adversary.reset()
        return (
            [
                _record_worker((index, task, None, capture_errors))
                for index, task in pairs
            ],
            0,
            0,
        )
    return (
        [
            (index, _record_from_result(result, task))
            for (index, task), result in zip(pairs, results)
        ],
        _planned_rounds(results),
        _chunk_splits(results),
    )


def _record_batch_worker(
    payload: Tuple[Sequence[Tuple[int, RunTask]], bool]
) -> Tuple[List[Tuple[int, RunRecord]], int, int]:
    """Worker: run one batch chunk and return its records, indexed."""
    tasks_with_index, capture_errors = payload
    return _run_task_batch(tasks_with_index, capture_errors)


def _batch_chunks(items: List, parts: int) -> List[List]:
    """Split a batch group into at most ``parts`` similar-size chunks."""
    parts = max(1, min(parts, len(items)))
    size = -(-len(items) // parts)
    return [items[start : start + size] for start in range(0, len(items), size)]


def _simulation_worker(
    payload: Tuple[int, RunTask, Optional[float]]
) -> Tuple[int, SimulationResult]:
    """Worker: run one task and return the full simulation result."""
    index, task, timeout = payload
    return index, _execute_task(task, timeout)


def _reduced_worker(
    payload: Tuple[int, RunTask, Optional[float], Reducer, Optional[str], bool]
) -> Tuple[int, ReducedRecord]:
    """Worker: run one task and reduce it in-process, shipping back only
    the compact :class:`ReducedRecord` (never the full result)."""
    index, task, timeout, reducer, key, capture_errors = payload
    try:
        result = _execute_task(task, timeout)
        data = reducer.reduce(result)
    except RunTimeoutError as exc:
        return index, ReducedRecord.failure(
            str(exc), timed_out=True, reducer_name=reducer.name, key=key,
            cell=task.cell, run_index=task.run_index, seed=task.seed,
        )
    except Exception as exc:
        if not capture_errors:
            raise
        return index, ReducedRecord.failure(
            f"{type(exc).__name__}: {exc}", reducer_name=reducer.name, key=key,
            cell=task.cell, run_index=task.run_index, seed=task.seed,
        )
    return index, ReducedRecord.from_data(
        data,
        reducer_name=reducer.name,
        key=key,
        cell=task.cell,
        run_index=task.run_index,
        seed=task.seed,
    )


def _require_complete(results: List, surface: str) -> List:
    """Every task must produce a result; a silent gap would desynchronise
    drivers that zip results with their inputs."""
    missing = [index for index, result in enumerate(results) if result is None]
    if missing:
        raise RuntimeError(
            f"{surface} produced no result for task indices {missing}; "
            f"refusing to return a desynchronised result list"
        )
    return results


def materialise_specs(run_specs: Sequence[RunSpec], stats: RunnerStats):
    """Build live tasks from specs, collecting infeasible cells.

    Returns ``(tasks, task_positions, failures)`` where ``failures``
    maps spec positions to ``(message, run_spec)`` for cells whose
    objects could not be constructed (bad name/params); each failure is
    counted into ``stats``.
    """
    tasks: List[RunTask] = []
    task_positions: List[int] = []
    failures: Dict[int, Tuple[str, RunSpec]] = {}
    for position, run_spec in enumerate(run_specs):
        try:
            tasks.append(task_from_spec(run_spec))
            task_positions.append(position)
        except Exception as exc:  # infeasible cell (bad name/params)
            failures[position] = (f"{type(exc).__name__}: {exc}", run_spec)
            stats.total += 1
            stats.failures += 1
    return tasks, task_positions, failures


def cacheable_key(task: RunTask) -> Optional[str]:
    """The task's cache key, or None when it must not be cached.

    Cache keys are backend-independent because backends are
    result-identical — which the ``async`` engine is *not* (its
    adversary sees submissions in event-loop order, so seeded fault
    schedules can diverge).  Tasks on a non-equivalent backend
    therefore never read from or write to the shared cache.
    """
    if not task.key:
        return None
    # Resolve instances directly: an instance whose name shadows a
    # registered backend must be judged by its *own* equivalence flag,
    # not the registry entry it shadows.
    if not _task_backend(task).equivalent_to_reference:
        return None
    return task.key


def task_from_spec(spec: RunSpec) -> RunTask:
    """Materialise a declarative :class:`RunSpec` into a live task."""
    return RunTask(
        algorithm=build_algorithm(spec.algorithm, spec.n),
        adversary=build_adversary(spec.adversary, spec.n, spec.seed),
        initial_values=build_workload(spec.workload, spec.n, spec.seed),
        max_rounds=spec.max_rounds,
        min_rounds=spec.min_rounds,
        predicate=build_predicate(spec.predicate, spec.n),
        key=spec.config_hash(),
        cell=spec.cell(),
        run_index=spec.run_index,
        seed=spec.seed,
        backend=spec.backend,
    )


class CampaignRunner:
    """Executes batches of runs serially or across worker processes.

    Parameters
    ----------
    jobs:
        Number of worker processes.  ``1`` (the default) executes
        in-process, which is what the experiment drivers use when no
        runner is supplied — behaviour and results are identical either
        way, only wall-clock time differs.
    timeout:
        Per-run wall-clock budget in seconds (``None`` = unlimited).
    cache:
        Optional :class:`ResultCache` (or a directory path, which is
        wrapped in one).  Only tasks carrying a ``key`` participate.
    backend:
        Default engine backend for tasks that do not pin one
        (:attr:`RunTask.backend`).  Backends are semantically invisible
        (see :mod:`repro.simulation.backends`), so cached records are
        shared across backends and ``backend="fast"`` is always safe.
    metrics:
        Optional :class:`~repro.runner.metrics.MetricsRegistry`; when
        set, every ``run_tasks``/``run_reduced``/``run_simulations``
        call observes its wall-clock seconds into
        ``repro_runner_window_seconds``.  Pure observation — records,
        stats and ordering are identical with and without it.
    """

    def __init__(
        self,
        jobs: int = 1,
        timeout: Optional[float] = None,
        cache: Optional[Union[ResultCache, str]] = None,
        backend: Union[str, EngineBackend] = "reference",
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.timeout = timeout
        self.cache = (
            cache if cache is None or isinstance(cache, ResultCache) else ResultCache(cache)
        )
        if isinstance(backend, str):
            get_backend(backend)  # fail fast on typos, before any run executes
        self.backend = backend
        self.stats = RunnerStats()
        self.metrics = metrics
        self._m_window = (
            None
            if metrics is None
            else metrics.histogram(
                "repro_runner_window_seconds", buckets=UNIT_SECONDS_BUCKETS
            )
        )
        self._pool: Optional[ProcessPoolExecutor] = None

    def _observe_window(self, started: float) -> float:
        """Elapsed seconds since ``started``, observed when instrumented."""
        elapsed = time.perf_counter() - started
        if self._m_window is not None:
            self._m_window.observe(max(0.0, elapsed))
        return elapsed

    def _with_backend(self, tasks: Sequence[RunTask]) -> List[RunTask]:
        """Tasks with the runner's default backend filled in where unset.

        Returns copies rather than mutating the caller's tasks, so the
        same task list can be run through differently configured
        runners (e.g. to compare backends).
        """
        if self.backend == "reference":
            return list(tasks)
        return [
            replace(task, backend=self.backend) if task.backend is None else task
            for task in tasks
        ]

    _cacheable_key = staticmethod(cacheable_key)

    def _batchable(self, task: RunTask) -> bool:
        """Whether this task may join a whole-group ``run_batch`` call.

        Requires a batch-capable backend that supports the run
        natively, and no per-run timeout: ``SIGALRM`` deadlines budget
        one run, which does not compose with whole-group execution —
        timed campaigns keep per-run dispatch.
        """
        if self.timeout is not None:
            return False
        chosen = _task_backend(task)
        if not getattr(chosen, "supports_batch", False):
            return False
        return chosen.supports(task.algorithm, task.adversary, _task_config(task), None)

    @staticmethod
    def _batch_group_key(task: RunTask) -> object:
        """Group batchable tasks per backend (instances by identity)."""
        backend = task.backend or "reference"
        return backend if isinstance(backend, str) else id(backend)

    # ------------------------------------------------------------------
    # Worker-pool lifecycle
    # ------------------------------------------------------------------
    def _get_pool(self) -> ProcessPoolExecutor:
        # One pool per runner, reused across run_tasks/run_simulations
        # calls: drivers invoke the runner once per sweep cell, and
        # respawning workers per call would dominate small batches on
        # spawn-start platforms.
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (a later call lazily recreates it)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Record-producing execution (cacheable)
    # ------------------------------------------------------------------
    def run_tasks(
        self, tasks: Sequence[RunTask], capture_errors: bool = False
    ) -> List[RunRecord]:
        """Execute ``tasks`` and return one :class:`RunRecord` each, in order.

        Cached tasks (``task.key`` present in the cache) are not
        re-executed.  With ``capture_errors`` worker exceptions become
        failure records instead of propagating — campaigns over
        user-supplied grids use this so one infeasible cell cannot sink
        the whole sweep.
        """
        started = time.perf_counter()
        tasks = self._with_backend(tasks)
        records: List[Optional[RunRecord]] = [None] * len(tasks)
        pending: List[Tuple[int, RunTask]] = []

        for index, task in enumerate(tasks):
            key = self._cacheable_key(task)
            cached = self.cache.get(key) if self.cache is not None and key else None
            if cached is not None:
                self.stats.cache_hits += 1
                records[index] = cached
            else:
                if self.cache is not None and key:
                    self.stats.cache_misses += 1
                pending.append((index, task))

        singles: List[Tuple[int, RunTask]] = []
        groups: Dict[object, List[Tuple[int, RunTask]]] = {}
        for index, task in pending:
            if self._batchable(task):
                groups.setdefault(self._batch_group_key(task), []).append((index, task))
            else:
                singles.append((index, task))

        def _store(index: int, record: RunRecord) -> None:
            records[index] = record
            key = self._cacheable_key(tasks[index])
            if record.ok and self.cache is not None and key:
                self.cache.put(key, record)

        payloads = [
            (index, task, self.timeout, capture_errors) for index, task in singles
        ]
        for index, record in self._run_payloads(_record_worker, payloads):
            _store(index, record)

        # Whole same-backend groups go to run_batch; with a worker pool
        # each group is split into per-worker chunks so the sweep still
        # parallelises (records stay byte-identical either way).
        batch_payloads = []
        for group in groups.values():
            self.stats.batched += len(group)
            for chunk in _batch_chunks(group, self.jobs):
                batch_payloads.append((chunk, capture_errors))
        for pairs, planned, chunks in self._run_payloads(_record_batch_worker, batch_payloads):
            self.stats.batch_planned += planned
            self.stats.batch_chunks += chunks
            for index, record in pairs:
                _store(index, record)

        self.stats.total += len(tasks)
        self.stats.executed += len(pending)
        self.stats.failures += sum(1 for r in records if r is not None and r.error and not r.timed_out)
        self.stats.timeouts += sum(1 for r in records if r is not None and r.timed_out)
        self.stats.elapsed_seconds += self._observe_window(started)
        return _require_complete(records, "run_tasks")

    def _run_payloads(self, worker, payloads: Sequence[tuple]):
        """Run indexed payloads through ``worker``, in-process or pooled.

        Yields ``(index, result)`` pairs as they complete (unordered in
        the pooled case; callers re-order by index).
        """
        if not payloads:
            return
        if self.jobs == 1:
            for payload in payloads:
                yield worker(payload)
            return
        try:
            pool = self._get_pool()
            futures = {pool.submit(worker, payload) for payload in payloads}
            while futures:
                done, futures = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    yield future.result()
        except BrokenProcessPool:
            # A dead worker poisons the pool; drop it so the next call
            # starts from a fresh one.
            self.close()
            raise

    # ------------------------------------------------------------------
    # In-worker reduction (cacheable; the E3-E12 driver path)
    # ------------------------------------------------------------------
    def run_reduced(
        self,
        tasks: Sequence[RunTask],
        reducer: Reducer,
        capture_errors: bool = False,
    ) -> List[ReducedRecord]:
        """Execute ``tasks``, applying ``reducer`` inside the worker.

        Returns one :class:`ReducedRecord` per task, in task order.
        Only the reduced data crosses the process boundary — the full
        :class:`SimulationResult` (process objects plus the n² × rounds
        heard-of collection) never leaves the worker.  Records are
        cached under keys that mix the task's stable key with the
        reducer's fingerprint, so different reducers (or differently
        parametrised ones) never share entries with each other or with
        plain :class:`RunRecord`s.
        """
        started = time.perf_counter()
        tasks = self._with_backend(tasks)
        records: List[Optional[ReducedRecord]] = [None] * len(tasks)
        pending: List[Tuple[int, RunTask, Optional[str]]] = []

        for index, task in enumerate(tasks):
            base_key = self._cacheable_key(task)
            key = reduced_cache_key(base_key, reducer) if base_key else None
            cached = (
                self.cache.get_reduced(key) if self.cache is not None and key else None
            )
            if cached is not None:
                self.stats.cache_hits += 1
                records[index] = cached
            else:
                if self.cache is not None and key:
                    self.stats.cache_misses += 1
                pending.append((index, task, key))

        singles: List[Tuple[int, RunTask, Optional[str]]] = []
        groups: Dict[object, List[Tuple[int, RunTask, Optional[str]]]] = {}
        for entry in pending:
            # Batched reduction stays serial: pooled workers already
            # reduce in-process per run, and chunked batches would ship
            # full results between stages.
            if self.jobs == 1 and self._batchable(entry[1]):
                groups.setdefault(self._batch_group_key(entry[1]), []).append(entry)
            else:
                singles.append(entry)

        def _store(index: int, record: ReducedRecord) -> None:
            records[index] = record
            if record.ok and self.cache is not None and record.key:
                self.cache.put_reduced(record.key, record)

        for group in groups.values():
            chosen = _task_backend(group[0][1])
            self.stats.batched += len(group)
            try:
                results = chosen.run_batch([_task_request(task) for _, task, _ in group])
            except Exception:
                # Same recovery as _run_task_batch: reset the seeded
                # schedules and isolate failures on the per-run path.
                for _, task, _ in group:
                    task.adversary.reset()
                singles.extend(group)
                continue
            self.stats.batch_planned += _planned_rounds(results)
            self.stats.batch_chunks += _chunk_splits(results)
            for (index, task, key), result in zip(group, results):
                try:
                    data = reducer.reduce(result)
                except Exception as exc:
                    if not capture_errors:
                        raise
                    _store(index, ReducedRecord.failure(
                        f"{type(exc).__name__}: {exc}", reducer_name=reducer.name,
                        key=key, cell=task.cell, run_index=task.run_index, seed=task.seed,
                    ))
                else:
                    _store(index, ReducedRecord.from_data(
                        data, reducer_name=reducer.name, key=key, cell=task.cell,
                        run_index=task.run_index, seed=task.seed,
                    ))

        payloads = [
            (index, task, self.timeout, reducer, key, capture_errors)
            for index, task, key in singles
        ]
        for index, record in self._run_payloads(_reduced_worker, payloads):
            _store(index, record)

        self.stats.total += len(tasks)
        self.stats.executed += len(pending)
        self.stats.failures += sum(1 for r in records if r is not None and r.error and not r.timed_out)
        self.stats.timeouts += sum(1 for r in records if r is not None and r.timed_out)
        self.stats.elapsed_seconds += self._observe_window(started)
        return _require_complete(records, "run_reduced")

    # ------------------------------------------------------------------
    # Full-result execution (uncached; for collection-inspecting drivers)
    # ------------------------------------------------------------------
    def run_simulations(self, tasks: Sequence[RunTask]) -> List[SimulationResult]:
        """Execute ``tasks`` and return full results in task order.

        Serial execution hands whole same-backend groups to
        batch-capable backends; pooled execution stays per-run (full
        results are too heavy to ship back in batches).
        """
        started = time.perf_counter()
        tasks = self._with_backend(tasks)
        results: List[Optional[SimulationResult]] = [None] * len(tasks)
        if self.jobs == 1:
            groups: Dict[object, List[int]] = {}
            for index, task in enumerate(tasks):
                if self._batchable(task):
                    groups.setdefault(self._batch_group_key(task), []).append(index)
            batched: set = set()
            for indices in groups.values():
                chosen = _task_backend(tasks[indices[0]])
                requests = [_task_request(tasks[i]) for i in indices]
                batch_results = chosen.run_batch(requests)
                for index, result in zip(indices, batch_results):
                    results[index] = result
                batched.update(indices)
                self.stats.batched += len(indices)
                self.stats.batch_planned += _planned_rounds(batch_results)
                self.stats.batch_chunks += _chunk_splits(batch_results)
            for index, task in enumerate(tasks):
                if index not in batched:
                    results[index] = _execute_task(task, self.timeout)
        else:
            payloads = [(index, task, self.timeout) for index, task in enumerate(tasks)]
            try:
                for index, result in self._get_pool().map(_simulation_worker, payloads):
                    results[index] = result
            except BrokenProcessPool:
                self.close()
                raise
        self.stats.total += len(tasks)
        self.stats.executed += len(tasks)
        self.stats.elapsed_seconds += self._observe_window(started)
        return _require_complete(results, "run_simulations")

    # ------------------------------------------------------------------
    # Declarative campaigns
    # ------------------------------------------------------------------
    def _materialise_specs(self, run_specs: Sequence[RunSpec]):
        """Build live tasks from specs, collecting infeasible cells."""
        return materialise_specs(run_specs, self.stats)

    def run_campaign(self, spec: CampaignSpec) -> CampaignResult:
        """Expand ``spec`` into tasks, execute (with caching), aggregate.

        The returned ``stats`` cover this campaign only (a snapshot
        delta), so reusing one runner across campaigns never leaks the
        first campaign's counters into the second's report.
        """
        before = self.stats.snapshot()
        run_specs = spec.expand()
        tasks, task_positions, failures = self._materialise_specs(run_specs)
        records_by_index: Dict[int, RunRecord] = {
            position: RunRecord.failure(
                message,
                key=run_spec.config_hash(),
                cell=run_spec.cell(),
                run_index=run_spec.run_index,
                seed=run_spec.seed,
            )
            for position, (message, run_spec) in failures.items()
        }
        executed = self.run_tasks(tasks, capture_errors=True)
        for position, record in zip(task_positions, executed):
            records_by_index[position] = record
        records = [records_by_index[position] for position in range(len(run_specs))]
        return CampaignResult(spec=spec, records=records, stats=self.stats.since(before))

    def run_reduced_campaign(
        self, spec: CampaignSpec, reducer: Reducer
    ) -> ReducedCampaignResult:
        """Like :meth:`run_campaign`, but reducing inside the workers."""
        before = self.stats.snapshot()
        run_specs = spec.expand()
        tasks, task_positions, failures = self._materialise_specs(run_specs)
        records_by_index: Dict[int, ReducedRecord] = {
            position: ReducedRecord.failure(
                message,
                reducer_name=reducer.name,
                key=reduced_cache_key(run_spec.config_hash(), reducer),
                cell=run_spec.cell(),
                run_index=run_spec.run_index,
                seed=run_spec.seed,
            )
            for position, (message, run_spec) in failures.items()
        }
        executed = self.run_reduced(tasks, reducer, capture_errors=True)
        for position, record in zip(task_positions, executed):
            records_by_index[position] = record
        records = [records_by_index[position] for position in range(len(run_specs))]
        return ReducedCampaignResult(
            spec=spec, reducer=reducer, records=records, stats=self.stats.since(before)
        )

"""Declarative campaign specifications.

A *campaign* is a grid of (algorithm × adversary × predicate × n ×
seeds) cells, each executed for a number of independently seeded runs.
Campaigns are described by plain-data specs so that they can be

* expanded deterministically into concrete :class:`RunSpec`s,
* hashed into stable cache keys (same spec → same key, across
  processes and interpreter invocations), and
* serialised to/from JSON for the ``repro campaign --spec`` CLI path.

Seed derivation is cryptographic (SHA-256 over the cell configuration
and run index), so per-run seeds are reproducible, independent of
Python's randomised string hashing, and statistically independent
across cells.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Union

#: Bump when the cached record layout (or run semantics) changes in a
#: way that invalidates previously cached results.
#: 2: strict (non-lossy) cache serialisation + reduced records with
#:    reducer-fingerprinted keys.
CACHE_SCHEMA_VERSION = 2


def stable_hash(payload: object) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``payload``.

    Canonical means sorted keys and no insignificant whitespace, so the
    digest is stable across interpreter invocations and processes
    (unlike the built-in ``hash``, which is randomised for strings).
    """
    # repro-lint: ignore[S401]: canonical cache-key encoding, frozen since PR 1 — adding allow_nan=False or dropping default=str would change digests and invalidate every existing cache
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def derive_seed(base_seed: int, cell_key: str, run_index: int) -> int:
    """Deterministic 63-bit per-run seed from (campaign seed, cell, run)."""
    material = f"{base_seed}|{cell_key}|{run_index}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(material).digest()[:8], "big") >> 1


def _validate_backend(backend: Optional[str]) -> None:
    """Fail at spec-construction time (with the registry's did-you-mean)
    instead of once per run inside the workers.  Imported lazily: this
    module is otherwise dependency-free."""
    if backend is not None:
        from repro.simulation.backends import get_backend

        get_backend(backend)


def cell_cache_key(**fields: object) -> str:
    """Stable cache-key prefix for one experiment cell.

    Experiment drivers call this with every input that determines the
    cell's results (experiment id, n, alpha, runs, seed, max_rounds,
    thresholds, adversary description, ...); the schema version is mixed
    in so stale cache entries are never reused across format changes.
    """
    return stable_hash({"schema": CACHE_SCHEMA_VERSION, **fields})


# ----------------------------------------------------------------------
# Component specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AlgorithmSpec:
    """An algorithm by registry name plus constructor parameters."""

    name: str
    params: Mapping[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AlgorithmSpec":
        return cls(name=str(data["name"]), params=dict(data.get("params", {})))


@dataclass(frozen=True)
class AdversarySpec:
    """An adversary by runner-factory name plus parameters."""

    name: str
    params: Mapping[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AdversarySpec":
        return cls(name=str(data["name"]), params=dict(data.get("params", {})))


@dataclass(frozen=True)
class WorkloadSpec:
    """An initial-value workload by generator name plus parameters."""

    name: str = "random"
    params: Mapping[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        return cls(name=str(data.get("name", "random")), params=dict(data.get("params", {})))


@dataclass(frozen=True)
class PredicateSpec:
    """A communication predicate by name plus parameters."""

    name: str
    params: Mapping[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PredicateSpec":
        return cls(name=str(data["name"]), params=dict(data.get("params", {})))


# ----------------------------------------------------------------------
# Concrete runs and the campaign grid
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """One fully concrete simulation run of a campaign.

    Everything that determines the run's result is part of this spec, so
    :meth:`config_hash` is a sound cache key.
    """

    algorithm: AlgorithmSpec
    adversary: AdversarySpec
    workload: WorkloadSpec
    n: int
    seed: int
    run_index: int
    max_rounds: int = 60
    min_rounds: int = 0
    predicate: Optional[PredicateSpec] = None
    #: Engine backend for this run (``None`` = the runner's default).
    #: Result-identical backends never change a run's result, so the
    #: backend is deliberately *excluded* from
    #: :meth:`as_dict`/:meth:`config_hash`; the runner additionally
    #: refuses to cache runs on backends that are not result-identical.
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        _validate_backend(self.backend)

    def as_dict(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm.as_dict(),
            "adversary": self.adversary.as_dict(),
            "workload": self.workload.as_dict(),
            "n": self.n,
            "seed": self.seed,
            "run_index": self.run_index,
            "max_rounds": self.max_rounds,
            "min_rounds": self.min_rounds,
            "predicate": self.predicate.as_dict() if self.predicate else None,
        }

    def config_hash(self) -> str:
        return stable_hash({"schema": CACHE_SCHEMA_VERSION, **self.as_dict()})

    def cell(self) -> Dict[str, object]:
        """The grid-cell identity of this run (everything but seed/index)."""
        return {
            "algorithm": self.algorithm.name,
            "algorithm_params": dict(self.algorithm.params),
            "adversary": self.adversary.name,
            "adversary_params": dict(self.adversary.params),
            "n": self.n,
            "predicate": self.predicate.name if self.predicate else None,
        }


@dataclass
class CampaignSpec:
    """A declarative grid of runs: algorithms × adversaries × ns × runs.

    ``expand()`` produces the full, deterministically ordered and
    deterministically seeded list of :class:`RunSpec`s; two expansions of
    equal specs yield byte-identical run configurations.
    """

    campaign_id: str
    algorithms: Sequence[AlgorithmSpec]
    adversaries: Sequence[AdversarySpec]
    ns: Sequence[int]
    runs: int = 10
    base_seed: int = 0
    max_rounds: int = 60
    min_rounds: int = 0
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    predicates: Sequence[Optional[PredicateSpec]] = (None,)
    #: Engine backend for every run of the grid (``None`` = the
    #: runner's default).  Semantically invisible, so it participates
    #: in the JSON round-trip but never in run cache keys.
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.runs < 1:
            raise ValueError(f"runs must be >= 1, got {self.runs}")
        if not self.algorithms or not self.adversaries or not self.ns:
            raise ValueError("campaign needs at least one algorithm, adversary and n")
        _validate_backend(self.backend)

    # -- expansion ---------------------------------------------------------------
    def cells(self) -> Iterator[Dict[str, object]]:
        for algorithm in self.algorithms:
            for adversary in self.adversaries:
                for predicate in self.predicates or (None,):
                    for n in self.ns:
                        yield {
                            "algorithm": algorithm,
                            "adversary": adversary,
                            "predicate": predicate,
                            "n": n,
                        }

    def expand(self) -> List[RunSpec]:
        specs: List[RunSpec] = []
        for cell in self.cells():
            cell_key = stable_hash(
                {
                    "algorithm": cell["algorithm"].as_dict(),
                    "adversary": cell["adversary"].as_dict(),
                    "predicate": cell["predicate"].as_dict() if cell["predicate"] else None,
                    "n": cell["n"],
                    "workload": self.workload.as_dict(),
                    "max_rounds": self.max_rounds,
                    "min_rounds": self.min_rounds,
                }
            )
            for run_index in range(self.runs):
                specs.append(
                    RunSpec(
                        algorithm=cell["algorithm"],
                        adversary=cell["adversary"],
                        predicate=cell["predicate"],
                        workload=self.workload,
                        n=cell["n"],
                        seed=derive_seed(self.base_seed, cell_key, run_index),
                        run_index=run_index,
                        max_rounds=self.max_rounds,
                        min_rounds=self.min_rounds,
                        backend=self.backend,
                    )
                )
        return specs

    # -- serialisation -----------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        data = {
            "campaign_id": self.campaign_id,
            "algorithms": [a.as_dict() for a in self.algorithms],
            "adversaries": [a.as_dict() for a in self.adversaries],
            "ns": list(self.ns),
            "runs": self.runs,
            "base_seed": self.base_seed,
            "max_rounds": self.max_rounds,
            "min_rounds": self.min_rounds,
            "workload": self.workload.as_dict(),
            "predicates": [p.as_dict() if p else None for p in self.predicates],
        }
        # Only emitted when set: keeps the config hash of existing specs
        # stable, and the backend never affects results anyway.
        if self.backend is not None:
            data["backend"] = self.backend
        return data

    def config_hash(self) -> str:
        return stable_hash({"schema": CACHE_SCHEMA_VERSION, **self.as_dict()})

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        return cls(
            campaign_id=str(data["campaign_id"]),
            algorithms=[AlgorithmSpec.from_dict(a) for a in data["algorithms"]],
            adversaries=[AdversarySpec.from_dict(a) for a in data["adversaries"]],
            ns=[int(n) for n in data["ns"]],
            runs=int(data.get("runs", 10)),
            base_seed=int(data.get("base_seed", 0)),
            max_rounds=int(data.get("max_rounds", 60)),
            min_rounds=int(data.get("min_rounds", 0)),
            workload=WorkloadSpec.from_dict(data.get("workload", {})),
            predicates=[
                PredicateSpec.from_dict(p) if p else None
                for p in data.get("predicates", [None])
            ],
            backend=data.get("backend"),
        )

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "CampaignSpec":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    def to_json(self, path: Union[str, Path]) -> None:
        Path(path).write_text(
            json.dumps(self.as_dict(), indent=2, sort_keys=True, allow_nan=False),
            encoding="utf-8",
        )

"""On-disk result cache for campaign runs.

Each record is stored as one small JSON file whose name is the SHA-256
digest of the run's stable cache key (the key already includes
:data:`repro.runner.spec.CACHE_SCHEMA_VERSION`, so format changes
invalidate old entries automatically).  Two record kinds share the
store: full :class:`RunRecord`s (``get``/``put``) and
:class:`ReducedRecord`s (``get_reduced``/``put_reduced``), whose keys
mix in the reducer fingerprint so the two spaces cannot collide.  Files
are sharded into 256 two-hex-digit subdirectories to keep directories
small for large campaigns.

Serialisation is *strict*: a record whose payload is not exactly
representable in JSON (sets, Fractions, NaN, non-string dict keys, ...)
is rejected at ``put`` time with :class:`TypeError` rather than silently
stringified — a lossy write would make a cache round-trip change value
types and break the serial-vs-cached byte-identity guarantee.

Writes are atomic (write to a temp file in the same directory, then
``os.replace``), so concurrent campaigns sharing a cache directory never
observe half-written entries; a corrupt or unreadable entry is treated
as a miss.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Union

from repro.runner.records import RunRecord
from repro.runner.reduce import ReducedRecord


def encode_record_payload(key: str, payload: Dict[str, object]) -> str:
    """Strictly JSON-encode ``payload``, refusing anything lossy.

    ``json.dumps`` with ``default=str`` would silently stringify
    non-JSON cell values; instead we fail loudly at write time and also
    reject non-string dict keys (which JSON would coerce to strings,
    changing the type on the way back out).
    """
    _reject_non_string_keys(key, payload)
    try:
        return json.dumps(payload, allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise TypeError(
            f"cache refuses non-JSON-able record under key {key!r}: {exc}"
        ) from None


def _reject_non_string_keys(key: str, value: object) -> None:
    if isinstance(value, dict):
        for sub_key, sub_value in value.items():
            if not isinstance(sub_key, str):
                raise TypeError(
                    f"cache refuses non-JSON-able record under key {key!r}: "
                    f"dict key {sub_key!r} is not a string (JSON would "
                    f"stringify it, changing its type on read-back)"
                )
            _reject_non_string_keys(key, sub_value)
    elif isinstance(value, tuple):
        # json.dumps would serialise a tuple as an array, which reads
        # back as a list — a type change the strict mode must refuse.
        raise TypeError(
            f"cache refuses non-JSON-able record under key {key!r}: "
            f"tuple {value!r} would read back as a list"
        )
    elif isinstance(value, list):
        for item in value:
            _reject_non_string_keys(key, item)


class ResultCache:
    """A content-addressed store of run records."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return self.root / digest[:2] / f"{digest}.json"

    # -- raw payload plumbing --------------------------------------------------
    def _read(self, key: str) -> Optional[Dict[str, object]]:
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(payload, dict):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def _write(self, key: str, payload: Dict[str, object]) -> None:
        # Encode before touching the filesystem: a rejected record must
        # leave no trace (not even a temp file).
        encoded = encode_record_payload(key, payload)
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(encoded)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- full run records ------------------------------------------------------
    def get(self, key: str) -> Optional[RunRecord]:
        payload = self._read(key)
        return None if payload is None else RunRecord.from_dict(payload)

    def put(self, key: str, record: RunRecord) -> None:
        self._write(key, record.as_dict())

    # -- reduced records -------------------------------------------------------
    def get_reduced(self, key: str) -> Optional[ReducedRecord]:
        payload = self._read(key)
        return None if payload is None else ReducedRecord.from_dict(payload)

    def put_reduced(self, key: str, record: ReducedRecord) -> None:
        self._write(key, record.as_dict())

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

"""On-disk result cache for campaign runs.

Each run record is stored as one small JSON file whose name is the
SHA-256 digest of the run's stable cache key (the key already includes
:data:`repro.runner.spec.CACHE_SCHEMA_VERSION`, so format changes
invalidate old entries automatically).  Files are sharded into 256
two-hex-digit subdirectories to keep directories small for large
campaigns.

Writes are atomic (write to a temp file in the same directory, then
``os.replace``), so concurrent campaigns sharing a cache directory never
observe half-written entries; a corrupt or unreadable entry is treated
as a miss.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from repro.runner.records import RunRecord


class ResultCache:
    """A content-addressed store of :class:`RunRecord`s."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, key: str) -> Optional[RunRecord]:
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return RunRecord.from_dict(payload)

    def put(self, key: str, record: RunRecord) -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record.as_dict(), handle, default=str)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

"""On-disk result cache for campaign runs.

Each record is stored as one small JSON file whose name is the SHA-256
digest of the run's stable cache key (the key already includes
:data:`repro.runner.spec.CACHE_SCHEMA_VERSION`, so format changes
invalidate old entries automatically).  Two record kinds share the
store: full :class:`RunRecord`s (``get``/``put``) and
:class:`ReducedRecord`s (``get_reduced``/``put_reduced``), whose keys
mix in the reducer fingerprint so the two spaces cannot collide.  Files
are sharded into 256 two-hex-digit subdirectories to keep directories
small for large campaigns.

Serialisation is *strict*: a record whose payload is not exactly
representable in JSON (sets, Fractions, NaN, non-string dict keys, ...)
is rejected at ``put`` time with :class:`TypeError` rather than silently
stringified — a lossy write would make a cache round-trip change value
types and break the serial-vs-cached byte-identity guarantee.

Storage is pluggable (:mod:`repro.runner.store`): the default
:class:`~repro.runner.store.LocalDirStore` keeps today's single-machine
layout and write behaviour; pass a
:class:`~repro.runner.store.SharedStore` to put the cache on a
filesystem shared by a distributed worker fleet.  Writes are atomic
either way, so concurrent campaigns (or workers on other machines)
never observe half-written entries.

Reads are *crash-safe*: any entry that cannot be read back — truncated
file, invalid JSON, a payload the record classes reject — is treated as
a cache miss (with a warning naming the entry) so the run is simply
re-executed and the entry rewritten.  Raising instead would let one
corrupted shard entry sink a whole campaign, and a distributed fleet
must tolerate entries half-destroyed by a crashed writer's filesystem.
"""

from __future__ import annotations

import hashlib
import json
import logging
from pathlib import Path
from typing import Callable, Dict, Optional, Union

from repro.runner.records import RunRecord
from repro.runner.reduce import ReducedRecord
from repro.runner.store import CacheStore, LocalDirStore

logger = logging.getLogger(__name__)


def encode_record_payload(key: str, payload: Dict[str, object]) -> str:
    """Strictly JSON-encode ``payload``, refusing anything lossy.

    ``json.dumps`` with ``default=str`` would silently stringify
    non-JSON cell values; instead we fail loudly at write time and also
    reject non-string dict keys (which JSON would coerce to strings,
    changing the type on the way back out).
    """
    _reject_non_string_keys(key, payload)
    try:
        return json.dumps(payload, allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise TypeError(
            f"cache refuses non-JSON-able record under key {key!r}: {exc}"
        ) from None


def _reject_non_string_keys(key: str, value: object) -> None:
    if isinstance(value, dict):
        for sub_key, sub_value in value.items():
            if not isinstance(sub_key, str):
                raise TypeError(
                    f"cache refuses non-JSON-able record under key {key!r}: "
                    f"dict key {sub_key!r} is not a string (JSON would "
                    f"stringify it, changing its type on read-back)"
                )
            _reject_non_string_keys(key, sub_value)
    elif isinstance(value, tuple):
        # json.dumps would serialise a tuple as an array, which reads
        # back as a list — a type change the strict mode must refuse.
        raise TypeError(
            f"cache refuses non-JSON-able record under key {key!r}: "
            f"tuple {value!r} would read back as a list"
        )
    elif isinstance(value, list):
        for item in value:
            _reject_non_string_keys(key, item)


class ResultCache:
    """A content-addressed store of run records.

    ``root`` wraps a plain directory in the historical
    :class:`LocalDirStore`; pass ``store=`` instead to run the cache on
    any other :class:`CacheStore` (e.g. a :class:`SharedStore` for a
    distributed fleet).
    """

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        store: Optional[CacheStore] = None,
    ) -> None:
        if (root is None) == (store is None):
            raise ValueError("ResultCache needs exactly one of root= or store=")
        self.store: CacheStore = store if store is not None else LocalDirStore(root)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        #: Optional observability hook fired once per corrupt entry
        #: (the fleet wires it to ``repro_cache_corrupt_total``); hook
        #: errors are swallowed — metrics must never break a cache read.
        self.on_corrupt: Optional[Callable[[], None]] = None

    @property
    def root(self) -> Optional[Path]:
        """The backing directory, for filesystem-backed stores."""
        return getattr(self.store, "root", None)

    @staticmethod
    def relpath_for(key: str) -> str:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return f"{digest[:2]}/{digest}.json"

    def path_for(self, key: str) -> Path:
        """Absolute entry path (filesystem-backed stores only)."""
        root = self.root
        if root is None:
            raise TypeError(f"store {self.store!r} has no filesystem paths")
        return root / Path(self.relpath_for(key))

    # -- raw payload plumbing --------------------------------------------------
    def _read(self, key: str) -> Optional[Dict[str, object]]:
        text = self.store.read_text(self.relpath_for(key))
        if text is None:
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            self._warn_corrupt(key, "invalid JSON")
            return None
        if not isinstance(payload, dict):
            self._warn_corrupt(key, f"expected a JSON object, got {type(payload).__name__}")
            return None
        return payload

    def _decode(self, key: str, payload: Optional[Dict[str, object]], decoder):
        """Decode a payload, demoting any malformed entry to a miss."""
        if payload is not None:
            try:
                record = decoder(payload)
            except Exception as exc:
                self._warn_corrupt(key, f"{type(exc).__name__}: {exc}")
            else:
                self.hits += 1
                return record
        self.misses += 1
        return None

    def _warn_corrupt(self, key: str, reason: str) -> None:
        """A corrupted/truncated entry is a miss, not an error: warn, drop
        the entry so it cannot mask future writes, and let the caller
        requeue the run."""
        logger.warning(
            "cache entry for key %s is corrupt (%s); treating as a miss and "
            "requeuing the run", key, reason,
        )
        self.corrupt += 1
        if self.on_corrupt is not None:
            try:
                self.on_corrupt()
            except Exception:  # pragma: no cover - defensive
                logger.debug("on_corrupt hook failed", exc_info=True)
        self.store.delete(self.relpath_for(key))

    def _write(self, key: str, payload: Dict[str, object]) -> None:
        # Encode before touching the store: a rejected record must
        # leave no trace (not even a temp file).
        self.store.write_text(self.relpath_for(key), encode_record_payload(key, payload))

    # -- full run records ------------------------------------------------------
    def get(self, key: str) -> Optional[RunRecord]:
        return self._decode(key, self._read(key), RunRecord.from_dict)

    def put(self, key: str, record: RunRecord) -> None:
        self._write(key, record.as_dict())

    # -- reduced records -------------------------------------------------------
    def get_reduced(self, key: str) -> Optional[ReducedRecord]:
        return self._decode(key, self._read(key), ReducedRecord.from_dict)

    def put_reduced(self, key: str, record: ReducedRecord) -> None:
        self._write(key, record.as_dict())

    def __len__(self) -> int:
        return len(self.store.list("*/*.json"))

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        for relpath in self.store.list("*/*.json"):
            if self.store.delete(relpath):
                removed += 1
        return removed

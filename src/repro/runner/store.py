"""Pluggable cache stores: the storage seam under :class:`ResultCache`.

The result cache and the distributed work queue both persist small text
blobs (JSON records, manifests, lease files) under stable relative
paths.  This module factors that storage surface into a
:class:`CacheStore` protocol with two filesystem implementations:

* :class:`LocalDirStore` — a plain directory; atomic writes (temp file
  in the target directory + ``os.replace``) but no durability calls.
  This is exactly the behaviour :class:`repro.runner.cache.ResultCache`
  has always had, and stays the default for single-machine campaigns.
* :class:`SharedStore` — a directory on a filesystem shared by
  *concurrent writers on independent machines* (NFS, a bind-mounted
  volume, ...).  Writes are atomic **and durable**: the temp file is
  fsync'd before the rename and the parent directory is fsync'd after
  it, so a manifest or lease observed by one worker cannot vanish when
  another worker's kernel crashes.  It also offers
  :meth:`~LocalDirStore.try_create` (exclusive create), the primitive
  the lease-based :class:`repro.runner.distributed.WorkQueue` is built
  on.
* :class:`ObjectStore` — the same surface over a generic get/put/
  create-if-absent key-value client (:class:`ObjectClient`), proving the
  store seam extends beyond shared filesystems: an S3-style bucket, a
  key-value service or the in-process :class:`InMemoryObjectClient`
  test fake all plug in through five methods.  An optional
  ``fsspec``-backed client (:class:`FsspecObjectClient`) adapts any
  fsspec filesystem when that library is installed.

Entries are content-addressed by their callers — cache keys are SHA-256
config hashes and queue paths embed campaign/batch digests — so
concurrent writers for the *same* path always carry byte-identical
payloads and last-writer-wins replacement is safe.

The one non-content-addressed namespace is the queue's ``metrics/``
prefix (per-worker observability snapshots, see
:meth:`repro.runner.distributed.WorkQueue.write_metric_snapshot`):
there each path has a *single* writer that overwrites it in place, and
the atomic-replace guarantee above is what makes every read a complete,
monotone snapshot — readers may observe a stale file, never a torn one.
"""

from __future__ import annotations

import os
import re
import tempfile
import threading
from pathlib import Path
from typing import Dict, List, Optional, Protocol, Union, runtime_checkable


def check_relpath(relpath: str) -> str:
    """Validate a store-relative path; raises on anything escaping the root.

    All stores share one path discipline: relative, ``/``-separated,
    no ``..`` segments and no absolute paths.  Paths are internally
    generated (hash digests, zero-padded batch indices), so this cheap
    segment check is the whole defence — and it must hold for *every*
    implementation, not just the filesystem ones.
    """
    parts = Path(relpath).parts
    if Path(relpath).is_absolute() or ".." in parts or not parts:
        raise ValueError(f"store path {relpath!r} escapes the store root")
    return relpath


@runtime_checkable
class CacheStore(Protocol):
    """Keyed text-blob storage used by the cache and the work queue.

    Paths are relative, ``/``-separated, and never escape the store
    root.  ``write_text`` must be atomic: a reader never observes a
    half-written entry.  Implementations other than the two filesystem
    stores here (an object store, a key-value service, ...) only need
    these six methods to plug into :class:`ResultCache` and
    :class:`~repro.runner.distributed.WorkQueue`.
    """

    def read_text(self, relpath: str) -> Optional[str]:
        """The entry's text, or ``None`` when absent/unreadable."""
        ...

    def write_text(self, relpath: str, text: str) -> None:
        """Atomically create or replace the entry."""
        ...

    def try_create(self, relpath: str, text: str) -> bool:
        """Atomically create the entry iff absent; True when this call won."""
        ...

    def delete(self, relpath: str) -> bool:
        """Remove the entry; True when it existed."""
        ...

    def exists(self, relpath: str) -> bool:
        """Whether the entry is currently present."""
        ...

    def list(self, pattern: str) -> List[str]:
        """Sorted relative paths matching a glob ``pattern``."""
        ...


class LocalDirStore:
    """A directory of text blobs with atomic (but not durable) writes."""

    #: Whether writes are flushed through to stable storage (fsync).
    durable = False

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, relpath: str) -> Path:
        """The absolute path of ``relpath``, after escape validation."""
        return self.root / check_relpath(relpath)

    def read_text(self, relpath: str) -> Optional[str]:
        try:
            return self.path_for(relpath).read_text(encoding="utf-8")
        except OSError:
            return None

    def write_text(self, relpath: str, text: str) -> None:
        path = self.path_for(relpath)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
                if self.durable:
                    handle.flush()
                    os.fsync(handle.fileno())
            os.replace(tmp_name, path)
            if self.durable:
                self._fsync_dir(path.parent)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def try_create(self, relpath: str, text: str) -> bool:
        # Write the full content to a temp file first and publish it
        # with an exclusive hard link: creation is atomic *and*
        # crash-atomic — a writer killed at any point leaves either no
        # entry or the complete entry, never a torn one (leases and
        # result deposits rely on this).
        path = self.path_for(relpath)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
                if self.durable:
                    handle.flush()
                    os.fsync(handle.fileno())
            try:
                os.link(tmp_name, path)
            except FileExistsError:
                return False
            if self.durable:
                self._fsync_dir(path.parent)
            return True
        finally:
            try:
                os.unlink(tmp_name)
            except OSError:  # pragma: no cover - tmp already gone
                pass

    def delete(self, relpath: str) -> bool:
        try:
            self.path_for(relpath).unlink()
            return True
        except OSError:
            return False

    def exists(self, relpath: str) -> bool:
        return self.path_for(relpath).exists()

    def list(self, pattern: str) -> List[str]:
        return sorted(
            str(path.relative_to(self.root))
            for path in self.root.glob(pattern)
            if path.is_file()
        )

    @staticmethod
    def _fsync_dir(directory: Path) -> None:
        # Persist the rename itself: without the directory fsync a crash
        # can forget the entry even though its bytes reached the disk.
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - e.g. O_RDONLY dirs on odd fs
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - fsync unsupported on this fs
            pass
        finally:
            os.close(fd)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.root}>"


class SharedStore(LocalDirStore):
    """A :class:`LocalDirStore` hardened for concurrent multi-machine writers.

    Every write is fsync'd (file *and* parent directory), so manifests,
    leases and result records survive a writer's machine crashing right
    after another worker observed them.  Reads, atomic replacement and
    exclusive creation are inherited — POSIX rename/``O_EXCL`` semantics
    are what the lease queue relies on.
    """

    durable = True


class PrefixStore:
    """A view of another store under a fixed path prefix.

    Lets one backing store carve out namespaces (the work queue keeps
    its fleet-shared result cache under ``cache/`` of the queue store,
    whatever that store is) without the sub-user knowing the prefix.
    """

    def __init__(self, inner: CacheStore, prefix: str) -> None:
        prefix = prefix.strip("/")
        if not prefix:
            raise ValueError("PrefixStore needs a non-empty prefix")
        self.inner = inner
        self.prefix = prefix

    @property
    def root(self) -> Optional[Path]:
        """The prefixed directory, for filesystem-backed inner stores."""
        inner_root = getattr(self.inner, "root", None)
        return None if inner_root is None else inner_root / self.prefix

    def _prefixed(self, relpath: str) -> str:
        # Validate *before* prefixing: "cache" + "/etc/passwd" would
        # otherwise read as a harmless relative path to the inner store,
        # silently reinterpreting an escape attempt instead of rejecting it.
        return f"{self.prefix}/{check_relpath(relpath)}"

    def read_text(self, relpath: str) -> Optional[str]:
        return self.inner.read_text(self._prefixed(relpath))

    def write_text(self, relpath: str, text: str) -> None:
        self.inner.write_text(self._prefixed(relpath), text)

    def try_create(self, relpath: str, text: str) -> bool:
        return self.inner.try_create(self._prefixed(relpath), text)

    def delete(self, relpath: str) -> bool:
        return self.inner.delete(self._prefixed(relpath))

    def exists(self, relpath: str) -> bool:
        return self.inner.exists(self._prefixed(relpath))

    def list(self, pattern: str) -> List[str]:
        skip = len(self.prefix) + 1
        return [entry[skip:] for entry in self.inner.list(self._prefixed(pattern))]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<PrefixStore {self.prefix}/ over {self.inner!r}>"


@runtime_checkable
class ObjectClient(Protocol):
    """Minimal keyed-blob client an :class:`ObjectStore` adapts.

    This is the shape of every flat object service: S3-style buckets,
    key-value stores, fsspec filesystems.  Keys are the store's relative
    paths (already escape-validated by :class:`ObjectStore`); values are
    raw bytes.  ``put_if_absent`` should be atomic where the backing
    service offers conditional puts; a check-then-put fallback is
    acceptable because the work queue tolerates create races by design
    (runs are deterministic and deposits content-addressed — a lost race
    only costs duplicate execution, never correctness).
    """

    def get(self, key: str) -> Optional[bytes]:
        """The object's bytes, or ``None`` when absent."""
        ...

    def put(self, key: str, data: bytes) -> None:
        """Create or replace the object."""
        ...

    def put_if_absent(self, key: str, data: bytes) -> bool:
        """Create the object iff absent; True when this call won."""
        ...

    def delete(self, key: str) -> bool:
        """Remove the object; True when it existed."""
        ...

    def list_keys(self, prefix: str) -> List[str]:
        """All keys starting with ``prefix``, in any order."""
        ...


class InMemoryObjectClient:
    """A thread-safe in-process :class:`ObjectClient` fake for tests.

    Atomic ``put_if_absent`` under a lock, so it faithfully models a
    service with conditional puts; tests drive the whole cache and work
    queue over it without touching the filesystem.
    """

    def __init__(self) -> None:
        self._objects: Dict[str, bytes] = {}
        self._lock = threading.Lock()

    def get(self, key: str) -> Optional[bytes]:
        with self._lock:
            return self._objects.get(key)

    def put(self, key: str, data: bytes) -> None:
        with self._lock:
            self._objects[key] = bytes(data)

    def put_if_absent(self, key: str, data: bytes) -> bool:
        with self._lock:
            if key in self._objects:
                return False
            self._objects[key] = bytes(data)
            return True

    def delete(self, key: str) -> bool:
        with self._lock:
            return self._objects.pop(key, None) is not None

    def list_keys(self, prefix: str) -> List[str]:
        with self._lock:
            return [key for key in self._objects if key.startswith(prefix)]

    def __len__(self) -> int:
        with self._lock:
            return len(self._objects)


class FsspecObjectClient:
    """An :class:`ObjectClient` over any ``fsspec`` filesystem (optional).

    ``fsspec`` is *not* a dependency of this package; constructing this
    client without it installed raises a clear ``ImportError``.  With it,
    any fsspec URL (``s3://bucket/prefix``, ``memory://…``, ``file://…``)
    becomes a :class:`CacheStore` via ``ObjectStore(FsspecObjectClient(url))``.
    ``put_if_absent`` is check-then-put — not atomic on most object
    backends — which the work queue tolerates (see :class:`ObjectClient`).
    """

    def __init__(self, url: str, **storage_options: object) -> None:
        try:
            import fsspec
        except ImportError as exc:  # pragma: no cover - exercised only sans fsspec
            raise ImportError(
                "FsspecObjectClient requires the optional 'fsspec' package "
                "(pip install fsspec); for tests use InMemoryObjectClient instead"
            ) from exc
        self.fs, self.base = fsspec.core.url_to_fs(url, **storage_options)
        self.base = self.base.rstrip("/")

    def _key_path(self, key: str) -> str:
        return f"{self.base}/{key}" if self.base else key

    def get(self, key: str) -> Optional[bytes]:
        # Only a missing object maps to None; transient I/O errors
        # (throttles, resets) must propagate — swallowing them would make
        # live queue state look absent (e.g. a peer's lease "unreadable",
        # inviting a live-lease seizure).
        try:
            with self.fs.open(self._key_path(key), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None

    def put(self, key: str, data: bytes) -> None:
        path = self._key_path(key)
        parent = path.rsplit("/", 1)[0]
        if parent and parent != path:
            self.fs.makedirs(parent, exist_ok=True)
        with self.fs.open(path, "wb") as handle:
            handle.write(data)

    def put_if_absent(self, key: str, data: bytes) -> bool:
        if self.fs.exists(self._key_path(key)):
            return False
        self.put(key, data)
        return True

    def delete(self, key: str) -> bool:
        try:
            self.fs.rm(self._key_path(key))
            return True
        except FileNotFoundError:
            return False

    def exists(self, key: str) -> bool:
        """Presence without a payload transfer (``ObjectStore`` prefers
        this optional method over downloading the object)."""
        return bool(self.fs.exists(self._key_path(key)))

    def list_keys(self, prefix: str) -> List[str]:
        pattern = self._key_path(prefix) + "**"
        skip = len(self.base) + 1 if self.base else 0
        return [
            str(path)[skip:]
            for path in self.fs.glob(pattern)
            if self.fs.isfile(path)
        ]


def _glob_to_regex(pattern: str) -> "re.Pattern[str]":
    """Compile a store glob to a regex with pathlib semantics.

    ``fnmatch`` lets ``*`` cross ``/`` separators, but the filesystem
    stores use :meth:`pathlib.Path.glob`, where it does not; the object
    store must match them so queue listings behave identically on every
    backend.
    """
    out = []
    for fragment in re.split(r"(\*|\?)", pattern):
        if fragment == "*":
            out.append(r"[^/]*")
        elif fragment == "?":
            out.append(r"[^/]")
        else:
            out.append(re.escape(fragment))
    return re.compile("".join(out) + r"\Z")


class ObjectStore:
    """A :class:`CacheStore` over a generic :class:`ObjectClient`.

    Proves the store seam extends beyond shared filesystems: the result
    cache and the distributed work queue run unchanged over any keyed
    blob service.  Text is UTF-8; ``list`` translates the store's glob
    patterns onto the client's prefix listing (with filesystem-``glob``
    semantics: ``*`` never crosses ``/``).

    Atomicity is delegated to the client: ``put`` replaces whole objects
    (readers of a keyed blob service never observe partial writes) and
    ``try_create`` maps to ``put_if_absent``.  See :class:`ObjectClient`
    for why a non-atomic ``put_if_absent`` fallback is still safe for
    the work queue.
    """

    #: Durability is the client's concern; the adapter adds no buffering.
    durable = True

    def __init__(self, client: ObjectClient) -> None:
        self.client = client

    def read_text(self, relpath: str) -> Optional[str]:
        data = self.client.get(check_relpath(relpath))
        if data is None:
            return None
        try:
            return data.decode("utf-8")
        except UnicodeDecodeError:
            return None

    def write_text(self, relpath: str, text: str) -> None:
        self.client.put(check_relpath(relpath), text.encode("utf-8"))

    def try_create(self, relpath: str, text: str) -> bool:
        return self.client.put_if_absent(check_relpath(relpath), text.encode("utf-8"))

    def delete(self, relpath: str) -> bool:
        return self.client.delete(check_relpath(relpath))

    def exists(self, relpath: str) -> bool:
        key = check_relpath(relpath)
        # Clients may offer a cheap presence probe (a HEAD-style call);
        # it is optional on the protocol, so fall back to get() — fine
        # for in-process fakes, wasteful only for remote payloads.
        probe = getattr(self.client, "exists", None)
        if callable(probe):
            return bool(probe(key))
        return self.client.get(key) is not None

    def list(self, pattern: str) -> List[str]:
        check_relpath(pattern)
        prefix = re.split(r"[*?]", pattern, maxsplit=1)[0]
        matcher = _glob_to_regex(pattern)
        return sorted(
            key for key in self.client.list_keys(prefix) if matcher.match(key)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ObjectStore over {type(self.client).__name__}>"

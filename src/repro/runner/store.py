"""Pluggable cache stores: the storage seam under :class:`ResultCache`.

The result cache and the distributed work queue both persist small text
blobs (JSON records, manifests, lease files) under stable relative
paths.  This module factors that storage surface into a
:class:`CacheStore` protocol with two filesystem implementations:

* :class:`LocalDirStore` — a plain directory; atomic writes (temp file
  in the target directory + ``os.replace``) but no durability calls.
  This is exactly the behaviour :class:`repro.runner.cache.ResultCache`
  has always had, and stays the default for single-machine campaigns.
* :class:`SharedStore` — a directory on a filesystem shared by
  *concurrent writers on independent machines* (NFS, a bind-mounted
  volume, ...).  Writes are atomic **and durable**: the temp file is
  fsync'd before the rename and the parent directory is fsync'd after
  it, so a manifest or lease observed by one worker cannot vanish when
  another worker's kernel crashes.  It also offers
  :meth:`~LocalDirStore.try_create` (exclusive create), the primitive
  the lease-based :class:`repro.runner.distributed.WorkQueue` is built
  on.

Entries are content-addressed by their callers — cache keys are SHA-256
config hashes and queue paths embed campaign/batch digests — so
concurrent writers for the *same* path always carry byte-identical
payloads and last-writer-wins replacement is safe.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import List, Optional, Protocol, Union, runtime_checkable


@runtime_checkable
class CacheStore(Protocol):
    """Keyed text-blob storage used by the cache and the work queue.

    Paths are relative, ``/``-separated, and never escape the store
    root.  ``write_text`` must be atomic: a reader never observes a
    half-written entry.  Implementations other than the two filesystem
    stores here (an object store, a key-value service, ...) only need
    these six methods to plug into :class:`ResultCache` and
    :class:`~repro.runner.distributed.WorkQueue`.
    """

    def read_text(self, relpath: str) -> Optional[str]:
        """The entry's text, or ``None`` when absent/unreadable."""
        ...

    def write_text(self, relpath: str, text: str) -> None:
        """Atomically create or replace the entry."""
        ...

    def try_create(self, relpath: str, text: str) -> bool:
        """Atomically create the entry iff absent; True when this call won."""
        ...

    def delete(self, relpath: str) -> bool:
        """Remove the entry; True when it existed."""
        ...

    def exists(self, relpath: str) -> bool:
        """Whether the entry is currently present."""
        ...

    def list(self, pattern: str) -> List[str]:
        """Sorted relative paths matching a glob ``pattern``."""
        ...


class LocalDirStore:
    """A directory of text blobs with atomic (but not durable) writes."""

    #: Whether writes are flushed through to stable storage (fsync).
    durable = False

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, relpath: str) -> Path:
        # Paths are internally generated (hash digests, zero-padded batch
        # indices), so a cheap segment check suffices — no per-call
        # resolve() on the cache hot path.
        parts = Path(relpath).parts
        if Path(relpath).is_absolute() or ".." in parts or not parts:
            raise ValueError(f"store path {relpath!r} escapes the store root")
        return self.root / relpath

    def read_text(self, relpath: str) -> Optional[str]:
        try:
            return self.path_for(relpath).read_text(encoding="utf-8")
        except OSError:
            return None

    def write_text(self, relpath: str, text: str) -> None:
        path = self.path_for(relpath)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
                if self.durable:
                    handle.flush()
                    os.fsync(handle.fileno())
            os.replace(tmp_name, path)
            if self.durable:
                self._fsync_dir(path.parent)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def try_create(self, relpath: str, text: str) -> bool:
        # Write the full content to a temp file first and publish it
        # with an exclusive hard link: creation is atomic *and*
        # crash-atomic — a writer killed at any point leaves either no
        # entry or the complete entry, never a torn one (leases and
        # result deposits rely on this).
        path = self.path_for(relpath)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
                if self.durable:
                    handle.flush()
                    os.fsync(handle.fileno())
            try:
                os.link(tmp_name, path)
            except FileExistsError:
                return False
            if self.durable:
                self._fsync_dir(path.parent)
            return True
        finally:
            try:
                os.unlink(tmp_name)
            except OSError:  # pragma: no cover - tmp already gone
                pass

    def delete(self, relpath: str) -> bool:
        try:
            self.path_for(relpath).unlink()
            return True
        except OSError:
            return False

    def exists(self, relpath: str) -> bool:
        return self.path_for(relpath).exists()

    def list(self, pattern: str) -> List[str]:
        return sorted(
            str(path.relative_to(self.root))
            for path in self.root.glob(pattern)
            if path.is_file()
        )

    @staticmethod
    def _fsync_dir(directory: Path) -> None:
        # Persist the rename itself: without the directory fsync a crash
        # can forget the entry even though its bytes reached the disk.
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - e.g. O_RDONLY dirs on odd fs
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - fsync unsupported on this fs
            pass
        finally:
            os.close(fd)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.root}>"


class SharedStore(LocalDirStore):
    """A :class:`LocalDirStore` hardened for concurrent multi-machine writers.

    Every write is fsync'd (file *and* parent directory), so manifests,
    leases and result records survive a writer's machine crashing right
    after another worker observed them.  Reads, atomic replacement and
    exclusive creation are inherited — POSIX rename/``O_EXCL`` semantics
    are what the lease queue relies on.
    """

    durable = True


class PrefixStore:
    """A view of another store under a fixed path prefix.

    Lets one backing store carve out namespaces (the work queue keeps
    its fleet-shared result cache under ``cache/`` of the queue store,
    whatever that store is) without the sub-user knowing the prefix.
    """

    def __init__(self, inner: CacheStore, prefix: str) -> None:
        prefix = prefix.strip("/")
        if not prefix:
            raise ValueError("PrefixStore needs a non-empty prefix")
        self.inner = inner
        self.prefix = prefix

    @property
    def root(self) -> Optional[Path]:
        """The prefixed directory, for filesystem-backed inner stores."""
        inner_root = getattr(self.inner, "root", None)
        return None if inner_root is None else inner_root / self.prefix

    def _prefixed(self, relpath: str) -> str:
        return f"{self.prefix}/{relpath}"

    def read_text(self, relpath: str) -> Optional[str]:
        return self.inner.read_text(self._prefixed(relpath))

    def write_text(self, relpath: str, text: str) -> None:
        self.inner.write_text(self._prefixed(relpath), text)

    def try_create(self, relpath: str, text: str) -> bool:
        return self.inner.try_create(self._prefixed(relpath), text)

    def delete(self, relpath: str) -> bool:
        return self.inner.delete(self._prefixed(relpath))

    def exists(self, relpath: str) -> bool:
        return self.inner.exists(self._prefixed(relpath))

    def list(self, pattern: str) -> List[str]:
        skip = len(self.prefix) + 1
        return [entry[skip:] for entry in self.inner.list(self._prefixed(pattern))]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<PrefixStore {self.prefix}/ over {self.inner!r}>"

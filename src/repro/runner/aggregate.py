"""Folding runner records back into the existing reporting types.

The experiment layer reasons in :class:`BatchReport`s and
:class:`ExperimentReport`s; this module rebuilds them from the compact
:class:`RunRecord`s the executor produces, so routing a sweep through
the runner changes *where* runs execute but not what any report says.
``batch_report_from_records`` mirrors
:func:`repro.verification.properties.aggregate` field for field.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.runner.records import RunRecord
from repro.runner.reduce import Reducer, ReducedRecord, batch_report_from_reduced
from repro.runner.spec import CampaignSpec, stable_hash
from repro.verification.properties import BatchReport


def batch_report_from_records(records: Iterable[RunRecord]) -> BatchReport:
    """Build a :class:`BatchReport` equivalent to aggregating the raw results."""
    records = list(records)
    has_predicate = any(record.predicate_held is not None for record in records)
    report = BatchReport(predicate_held=0 if has_predicate else None)
    for record in records:
        if not record.ok:
            raise RuntimeError(
                f"cannot aggregate failed run (run_index={record.run_index}): {record.error}"
            )
        report.total += 1
        report.agreement_ok += int(record.agreement)
        report.integrity_ok += int(record.integrity)
        report.termination_ok += int(record.termination)
        report.validity_ok += int(record.validity)
        if record.last_decision_round is not None:
            report.decision_rounds.append(record.last_decision_round)
        report.corruption_totals.append(record.messages_corrupted)
        report.violations.extend(record.violations)
        if record.predicate_held is not None:
            report.predicate_held += int(record.predicate_held)
            if record.predicate_held and not record.all_satisfied:
                report.counterexamples += 1
    return report


def group_by_cell(
    records: Sequence,
) -> List[Tuple[Dict[str, object], List]]:
    """Group records by their grid cell, preserving first-seen order.

    Works for anything carrying a ``cell`` dict — both
    :class:`RunRecord` and :class:`ReducedRecord`.
    """
    groups: Dict[str, Tuple[Dict[str, object], List]] = {}
    order: List[str] = []
    for record in records:
        key = stable_hash(record.cell)
        if key not in groups:
            groups[key] = (dict(record.cell), [])
            order.append(key)
        groups[key][1].append(record)
    return [groups[key] for key in order]


def _cell_base_row(cell: Dict[str, object]) -> Dict[str, object]:
    """The identity columns every campaign row starts with."""
    row: Dict[str, object] = {
        "algorithm": cell.get("algorithm"),
        "adversary": cell.get("adversary"),
        "n": cell.get("n"),
    }
    if cell.get("predicate") is not None:
        row["predicate"] = cell.get("predicate")
    for params_field in ("algorithm_params", "adversary_params"):
        params = cell.get(params_field) or {}
        for name, value in sorted(params.items()):
            row[name] = value
    return row


def _rate_fields(batch: BatchReport) -> Dict[str, object]:
    """The aggregate columns shared by both campaign report flavours."""
    return {
        "runs": batch.total,
        "agreement_rate": round(batch.agreement_rate, 3),
        "integrity_rate": round(batch.integrity_rate, 3),
        "termination_rate": round(batch.termination_rate, 3),
        "mean_decision_round": (
            round(batch.mean_decision_round, 2)
            if batch.mean_decision_round is not None
            else None
        ),
    }


def _fold_cells(records: Sequence, report: "ExperimentReport", fold_succeeded) -> None:
    """Shared cell-row scaffolding: group, fold, flag failed runs."""
    for cell, cell_records in group_by_cell(records):
        failed = [record for record in cell_records if not record.ok]
        succeeded = [record for record in cell_records if record.ok]
        row = _cell_base_row(cell)
        if succeeded:
            row.update(fold_succeeded(succeeded))
        if failed:
            row["errors"] = len(failed)
        report.add_row(**row)
    if any(not record.ok for record in records):
        report.add_note(
            "cells with an 'errors' column had runs that failed or timed out; "
            "their rates cover the successful runs only."
        )


def campaign_report(spec: CampaignSpec, records: Sequence[RunRecord]) -> "ExperimentReport":
    """Fold campaign records into an :class:`ExperimentReport`, one row per cell."""
    # Imported here: experiments.common itself routes batches through the
    # runner, so a module-level import would be circular.
    from repro.experiments.common import ExperimentReport

    report = ExperimentReport(
        experiment_id=spec.campaign_id,
        title=f"campaign {spec.campaign_id} ({spec.runs} runs/cell, seed {spec.base_seed})",
    )

    def fold(succeeded: Sequence[RunRecord]) -> Dict[str, object]:
        batch = batch_report_from_records(succeeded)
        fields = _rate_fields(batch)
        if batch.predicate_held is not None:
            fields["predicate_held"] = batch.predicate_held
            fields["counterexamples"] = batch.counterexamples
        return fields

    _fold_cells(records, report, fold)
    return report


def reduced_campaign_report(
    spec: CampaignSpec, reducer: Reducer, records: Sequence[ReducedRecord]
) -> "ExperimentReport":
    """Fold reduced campaign records into an :class:`ExperimentReport`.

    One row per cell, identical in shape to :func:`campaign_report`'s
    rows (the reduced data carries every field batch aggregation needs),
    plus per-predicate hold counts when the reducer evaluated
    predicates in-worker.
    """
    from repro.experiments.common import ExperimentReport

    report = ExperimentReport(
        experiment_id=spec.campaign_id,
        title=(
            f"campaign {spec.campaign_id} (reduced: {reducer.name}, "
            f"{spec.runs} runs/cell, seed {spec.base_seed})"
        ),
    )

    def fold(succeeded: Sequence[ReducedRecord]) -> Dict[str, object]:
        rows_data = [record.data for record in succeeded]
        fields = _rate_fields(batch_report_from_reduced(rows_data))
        for label in sorted(
            {label for data in rows_data for label in data.get("predicates", {})}
        ):
            fields[f"held[{label}]"] = sum(
                1 for data in rows_data if data.get("predicates", {}).get(label)
            )
        return fields

    _fold_cells(records, report, fold)
    return report

"""Dependency-free metrics registry for the distributed fleet.

The fleet (``repro.runner.distributed``) needs operational visibility —
claim latency, lease breaks, deposit rates, cache hit ratios, scale
events — without adding a dependency or perturbing the determinism
contract.  This module provides a small Prometheus-flavoured registry:

* :class:`Counter`, :class:`Gauge` and :class:`Histogram` children with
  fixed buckets, grouped into labelled families
  (:class:`CounterFamily`, :class:`GaugeFamily`,
  :class:`HistogramFamily`) under a thread-safe
  :class:`MetricsRegistry`;
* a deterministic strict-JSON :meth:`MetricsRegistry.snapshot` /
  :meth:`MetricsRegistry.merge_snapshot` pair for cross-process
  aggregation (workers deposit snapshot files, readers merge them);
* Prometheus text exposition via :meth:`MetricsRegistry.expose_text`.

The registry is deliberately clock-free: histograms observe durations
*measured by the caller* (``time.perf_counter`` deltas), so importing
this module never touches wall-clock entropy and the repro-lint D202
clock seam stays confined to ``distributed.py``.

Merge semantics are purely additive — counters, histogram bucket
counts/sums and gauges all sum — which makes ``merge`` associative and
commutative (property-tested), the only semantics under which the order
in which worker snapshot shards arrive cannot change the fleet totals.
"""

from __future__ import annotations

import json
import math
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "UNIT_SECONDS_BUCKETS",
    "Counter",
    "CounterFamily",
    "FLEET_METRICS",
    "FleetMetricSpec",
    "Gauge",
    "GaugeFamily",
    "Histogram",
    "HistogramFamily",
    "MetricsRegistry",
    "escape_label_value",
    "fleet_registry",
    "metric_catalogue_markdown",
    "unescape_label_value",
]

#: Bucket upper bounds (seconds) for store round-trip latencies such as
#: lease claims: sub-millisecond local filesystems up to multi-second
#: remote object stores.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
)

#: Bucket upper bounds (seconds) for whole work-unit execution times,
#: which run from sub-second cached replays to minutes-long sweeps.
UNIT_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    30.0,
    120.0,
)


def escape_label_value(value: str) -> str:
    """Escape a label value for Prometheus text exposition.

    Backslash, double-quote and newline are escaped exactly as the
    Prometheus exposition format specifies; everything else passes
    through untouched.
    """
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def unescape_label_value(value: str) -> str:
    """Invert :func:`escape_label_value` (used by tests and scrapers)."""
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "\\":
                out.append("\\")
                i += 2
                continue
            if nxt == '"':
                out.append('"')
                i += 2
                continue
            if nxt == "n":
                out.append("\n")
                i += 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


def _escape_help(text: str) -> str:
    """Escape a HELP string (backslash and newline only, per the spec)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Render a sample value: integral floats without a trailing ``.0``."""
    if math.isfinite(value) and float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _check_finite(value: float, what: str) -> float:
    """Reject NaN/inf so snapshots always survive strict JSON."""
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"{what} must be finite, got {value!r}")
    return value


class Counter:
    """A monotonically non-decreasing counter child."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be finite and non-negative)."""
        amount = _check_finite(amount, "counter increment")
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount!r}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current total."""
        with self._lock:
            return self._value


class Gauge:
    """A gauge child: a value that can go up, down, or be set outright."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        value = _check_finite(value, "gauge value")
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        amount = _check_finite(amount, "gauge increment")
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """The current value."""
        with self._lock:
            return self._value


class Histogram:
    """A fixed-bucket histogram child.

    Buckets are defined by their finite upper bounds; an implicit
    ``+Inf`` bucket catches everything above the last bound.  Counts are
    stored per-bucket (non-cumulative) and accumulated at exposition
    time, which keeps :meth:`observe` O(log buckets) and merges exact.
    """

    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, lock: threading.Lock, bounds: Tuple[float, ...]) -> None:
        self._lock = lock
        self._bounds = bounds
        self._counts = [0.0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0.0

    def observe(self, value: float) -> None:
        """Record one observation (a caller-measured duration or size)."""
        value = _check_finite(value, "histogram observation")
        index = len(self._bounds)
        for i, bound in enumerate(self._bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum

    @property
    def count(self) -> float:
        """Number of observations."""
        with self._lock:
            return self._count

    @property
    def bucket_counts(self) -> List[float]:
        """Per-bucket (non-cumulative) counts, ``+Inf`` bucket last."""
        with self._lock:
            return list(self._counts)


def _label_key(
    labelnames: Tuple[str, ...], labels: Mapping[str, str]
) -> Tuple[str, ...]:
    """Validate a label mapping against the family and key the child."""
    if sorted(labels) != sorted(labelnames):
        raise ValueError(
            f"expected labels {sorted(labelnames)}, got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class CounterFamily:
    """A named family of :class:`Counter` children keyed by label values."""

    kind = "counter"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Tuple[str, ...],
        lock: threading.Lock,
    ) -> None:
        self.name = name
        self.help = help_text
        self.labelnames = labelnames
        self._lock = lock
        self._children: Dict[Tuple[str, ...], Counter] = {}

    def labels(self, **labels: str) -> Counter:
        """The child for exactly these label values (created on demand)."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = Counter(self._lock)
                self._children[key] = child
            return child

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabelled child (only valid without labels)."""
        if self.labelnames:
            raise ValueError(f"{self.name} requires labels {self.labelnames}")
        self.labels().inc(amount)

    @property
    def value(self) -> float:
        """The unlabelled child's total (only valid without labels)."""
        if self.labelnames:
            raise ValueError(f"{self.name} requires labels {self.labelnames}")
        return self.labels().value


class GaugeFamily:
    """A named family of :class:`Gauge` children keyed by label values."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Tuple[str, ...],
        lock: threading.Lock,
    ) -> None:
        self.name = name
        self.help = help_text
        self.labelnames = labelnames
        self._lock = lock
        self._children: Dict[Tuple[str, ...], Gauge] = {}

    def labels(self, **labels: str) -> Gauge:
        """The child for exactly these label values (created on demand)."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = Gauge(self._lock)
                self._children[key] = child
            return child

    def set(self, value: float) -> None:
        """Set the unlabelled child (only valid without labels)."""
        if self.labelnames:
            raise ValueError(f"{self.name} requires labels {self.labelnames}")
        self.labels().set(value)

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabelled child (only valid without labels)."""
        if self.labelnames:
            raise ValueError(f"{self.name} requires labels {self.labelnames}")
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        """Decrement the unlabelled child (only valid without labels)."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """The unlabelled child's value (only valid without labels)."""
        if self.labelnames:
            raise ValueError(f"{self.name} requires labels {self.labelnames}")
        return self.labels().value


class HistogramFamily:
    """A named family of :class:`Histogram` children keyed by label values."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Tuple[str, ...],
        buckets: Tuple[float, ...],
        lock: threading.Lock,
    ) -> None:
        self.name = name
        self.help = help_text
        self.labelnames = labelnames
        self.buckets = buckets
        self._lock = lock
        self._children: Dict[Tuple[str, ...], Histogram] = {}

    def labels(self, **labels: str) -> Histogram:
        """The child for exactly these label values (created on demand)."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = Histogram(self._lock, self.buckets)
                self._children[key] = child
            return child

    def observe(self, value: float) -> None:
        """Observe on the unlabelled child (only valid without labels)."""
        if self.labelnames:
            raise ValueError(f"{self.name} requires labels {self.labelnames}")
        self.labels().observe(value)


_SCALAR_FAMILIES = (CounterFamily, GaugeFamily)


def _validate_metric_name(name: str) -> str:
    """Reject names the exposition format cannot carry."""
    if not name or not all(ch.isalnum() or ch in "_:" for ch in name):
        raise ValueError(f"invalid metric name {name!r}")
    if name[0].isdigit():
        raise ValueError(f"invalid metric name {name!r}")
    return name


class MetricsRegistry:
    """A thread-safe collection of metric families.

    One registry is owned per process (the fleet hangs it off the
    :class:`~repro.runner.distributed.WorkQueue`); workers serialise it
    with :meth:`snapshot`, deposit the JSON beside their leases, and
    readers rebuild fleet totals by merging the per-worker shards with
    :meth:`merge_snapshot`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, object] = {}

    def _register(self, family: object) -> object:
        name = getattr(family, "name")
        with self._lock:
            existing = self._families.get(name)
            if existing is None:
                self._families[name] = family
                return family
            if type(existing) is not type(family) or getattr(
                existing, "labelnames"
            ) != getattr(family, "labelnames"):
                raise ValueError(f"metric {name!r} re-registered with a new shape")
            if isinstance(existing, HistogramFamily) and existing.buckets != getattr(
                family, "buckets"
            ):
                raise ValueError(f"metric {name!r} re-registered with new buckets")
            return existing

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> CounterFamily:
        """Get or create the counter family ``name`` (idempotent)."""
        family = CounterFamily(
            _validate_metric_name(name), help_text, tuple(labelnames), self._lock
        )
        out = self._register(family)
        assert isinstance(out, CounterFamily)
        return out

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> GaugeFamily:
        """Get or create the gauge family ``name`` (idempotent)."""
        family = GaugeFamily(
            _validate_metric_name(name), help_text, tuple(labelnames), self._lock
        )
        out = self._register(family)
        assert isinstance(out, GaugeFamily)
        return out

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> HistogramFamily:
        """Get or create the histogram family ``name`` (idempotent)."""
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds or any(not math.isfinite(b) for b in bounds):
            raise ValueError("histogram buckets must be finite and non-empty")
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be distinct")
        family = HistogramFamily(
            _validate_metric_name(name),
            help_text,
            tuple(labelnames),
            bounds,
            self._lock,
        )
        out = self._register(family)
        assert isinstance(out, HistogramFamily)
        return out

    def _sorted_families(self) -> List[object]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def snapshot(self) -> Dict[str, object]:
        """A deterministic, strict-JSON-safe dump of every sample.

        Families are sorted by name and children by label values, so two
        registries holding the same samples snapshot byte-identically.
        The payload round-trips through ``json.dumps(allow_nan=False)``
        by construction (observations are validated finite on entry).
        """
        metrics: List[Dict[str, object]] = []
        for family in self._sorted_families():
            entry: Dict[str, object] = {
                "name": getattr(family, "name"),
                "kind": getattr(family, "kind"),
                "help": getattr(family, "help"),
                "labelnames": list(getattr(family, "labelnames")),
            }
            children = getattr(family, "_children")
            with self._lock:
                keys = sorted(children)
            samples: List[Dict[str, object]] = []
            if isinstance(family, _SCALAR_FAMILIES):
                for key in keys:
                    samples.append(
                        {"labels": list(key), "value": children[key].value}
                    )
            else:
                assert isinstance(family, HistogramFamily)
                entry["buckets"] = list(family.buckets)
                for key in keys:
                    child = children[key]
                    samples.append(
                        {
                            "labels": list(key),
                            "bucket_counts": child.bucket_counts,
                            "sum": child.sum,
                            "count": child.count,
                        }
                    )
            entry["samples"] = samples
            metrics.append(entry)
        return {"metrics": metrics}

    def merge_snapshot(self, payload: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` payload into this registry, additively.

        Counters, gauges, histogram bucket counts and sums all add;
        unknown families are created from the payload's declaration.
        Raises :class:`ValueError` on a malformed payload or a shape
        conflict with an already-registered family.
        """
        metrics = payload.get("metrics")
        if not isinstance(metrics, list):
            raise ValueError("snapshot payload has no 'metrics' list")
        for entry in metrics:
            if not isinstance(entry, Mapping):
                raise ValueError("snapshot metric entry is not a mapping")
            name = str(entry["name"])
            kind = str(entry["kind"])
            help_text = str(entry.get("help", ""))
            labelnames = [str(n) for n in entry.get("labelnames", [])]
            samples = entry.get("samples", [])
            if not isinstance(samples, list):
                raise ValueError(f"metric {name!r} samples is not a list")
            if kind == "counter":
                family = self.counter(name, help_text, labelnames)
                for sample in samples:
                    child = family.labels(
                        **dict(zip(labelnames, [str(v) for v in sample["labels"]]))
                    )
                    child.inc(float(sample["value"]))
            elif kind == "gauge":
                gfamily = self.gauge(name, help_text, labelnames)
                for sample in samples:
                    gchild = gfamily.labels(
                        **dict(zip(labelnames, [str(v) for v in sample["labels"]]))
                    )
                    gchild.inc(float(sample["value"]))
            elif kind == "histogram":
                buckets = [float(b) for b in entry.get("buckets", [])]
                hfamily = self.histogram(name, help_text, labelnames, buckets)
                for sample in samples:
                    hchild = hfamily.labels(
                        **dict(zip(labelnames, [str(v) for v in sample["labels"]]))
                    )
                    counts = [float(c) for c in sample["bucket_counts"]]
                    if len(counts) != len(hfamily.buckets) + 1:
                        raise ValueError(
                            f"metric {name!r} bucket_counts length mismatch"
                        )
                    with self._lock:
                        for i, c in enumerate(counts):
                            hchild._counts[i] += c
                        hchild._sum += float(sample["sum"])
                        hchild._count += float(sample["count"])
            else:
                raise ValueError(f"unknown metric kind {kind!r}")

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's samples into this one, additively."""
        self.merge_snapshot(other.snapshot())

    def flat_values(self) -> Dict[str, float]:
        """Samples as a flat ``{'name{a="b"}': value}`` mapping.

        Histograms contribute ``name_count`` and ``name_sum`` entries.
        The mapping is deterministic (insertion-ordered by sorted family
        name, then sorted label values) and is what ``repro-ho status
        --json`` exposes for scrapers asserting counter monotonicity.
        """
        flat: Dict[str, float] = {}
        for family in self._sorted_families():
            labelnames = getattr(family, "labelnames")
            children = getattr(family, "_children")
            with self._lock:
                keys = sorted(children)
            for key in keys:
                suffix = _label_suffix(labelnames, key)
                if isinstance(family, _SCALAR_FAMILIES):
                    flat[f"{getattr(family, 'name')}{suffix}"] = children[key].value
                else:
                    child = children[key]
                    flat[f"{getattr(family, 'name')}_count{suffix}"] = child.count
                    flat[f"{getattr(family, 'name')}_sum{suffix}"] = child.sum
        return flat

    def expose_text(self) -> str:
        """Render every family in the Prometheus text exposition format."""
        lines: List[str] = []
        for family in self._sorted_families():
            name = getattr(family, "name")
            labelnames = getattr(family, "labelnames")
            children = getattr(family, "_children")
            help_text = getattr(family, "help")
            if help_text:
                lines.append(f"# HELP {name} {_escape_help(help_text)}")
            lines.append(f"# TYPE {name} {getattr(family, 'kind')}")
            with self._lock:
                keys = sorted(children)
            for key in keys:
                if isinstance(family, _SCALAR_FAMILIES):
                    suffix = _label_suffix(labelnames, key)
                    value = children[key].value
                    lines.append(f"{name}{suffix} {_format_value(value)}")
                else:
                    assert isinstance(family, HistogramFamily)
                    child = children[key]
                    cumulative = 0.0
                    bounds = [*[_format_value(b) for b in family.buckets], "+Inf"]
                    for bound_text, count in zip(bounds, child.bucket_counts):
                        cumulative += count
                        suffix = _label_suffix(
                            (*labelnames, "le"), (*key, bound_text)
                        )
                        lines.append(
                            f"{name}_bucket{suffix} {_format_value(cumulative)}"
                        )
                    suffix = _label_suffix(labelnames, key)
                    lines.append(f"{name}_sum{suffix} {_format_value(child.sum)}")
                    lines.append(
                        f"{name}_count{suffix} {_format_value(child.count)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _label_suffix(labelnames: Sequence[str], values: Sequence[str]) -> str:
    """Render ``{a="x",b="y"}`` (empty string when there are no labels)."""
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{escape_label_value(value)}"'
        for name, value in zip(labelnames, values)
    )
    return "{" + pairs + "}"


@dataclass(frozen=True)
class FleetMetricSpec:
    """Declaration of one fleet metric (drives both wiring and docs)."""

    name: str
    kind: str
    help: str
    labelnames: Tuple[str, ...] = ()
    buckets: Optional[Tuple[float, ...]] = None


#: Canonical catalogue of every metric the fleet emits.  Instrumentation
#: sites obtain their families through :func:`fleet_registry`, and
#: ``docs/observability.md`` renders this table via
#: :func:`metric_catalogue_markdown`, so the docs cannot drift from the
#: wiring.
FLEET_METRICS: Tuple[FleetMetricSpec, ...] = (
    FleetMetricSpec(
        name="repro_queue_claims_total",
        kind="counter",
        help="Batch leases won by this process (work units claimed for execution).",
    ),
    FleetMetricSpec(
        name="repro_queue_claim_latency_seconds",
        kind="histogram",
        help="Store round-trip time spent winning one batch lease.",
        buckets=DEFAULT_LATENCY_BUCKETS,
    ),
    FleetMetricSpec(
        name="repro_queue_lease_breaks_total",
        kind="counter",
        help="Expired or corrupt leases broken so their batches could be reclaimed.",
    ),
    FleetMetricSpec(
        name="repro_queue_deposits_total",
        kind="counter",
        help="Result part files deposited into the queue (the fleet's output rate).",
    ),
    FleetMetricSpec(
        name="repro_queue_requeues_total",
        kind="counter",
        help="Deposited results discarded so their batches re-execute "
        "(failures and corrupt payloads).",
    ),
    FleetMetricSpec(
        name="repro_worker_units_total",
        kind="counter",
        help="Work units (whole batches or stolen tails) a worker executed.",
    ),
    FleetMetricSpec(
        name="repro_worker_steals_total",
        kind="counter",
        help="Cooperative steals: live leases cut so an idle worker took the tail.",
    ),
    FleetMetricSpec(
        name="repro_runner_unit_seconds",
        kind="histogram",
        help="Wall-clock seconds executing one work unit (caller-measured).",
        buckets=UNIT_SECONDS_BUCKETS,
    ),
    FleetMetricSpec(
        name="repro_runner_window_seconds",
        kind="histogram",
        help="Wall-clock seconds per CampaignRunner execution window "
        "(the executor's scheduling granularity within a unit).",
        buckets=UNIT_SECONDS_BUCKETS,
    ),
    FleetMetricSpec(
        name="repro_runner_runs_total",
        kind="counter",
        help="RunnerStats counters folded in from executed units; the "
        "'counter' label names the RunnerStats field (executed, batched, "
        "batch_planned, batch_chunks, cache_hits, cache_misses, failures, "
        "timeouts, total).",
        labelnames=("counter",),
    ),
    FleetMetricSpec(
        name="repro_cache_corrupt_total",
        kind="counter",
        help="Corrupt cache payloads dropped so their runs re-execute.",
    ),
    FleetMetricSpec(
        name="repro_supervisor_scale_events_total",
        kind="counter",
        help="Supervisor fleet resizes; the 'direction' label is up or down.",
        labelnames=("direction",),
    ),
    FleetMetricSpec(
        name="repro_supervisor_target_workers",
        kind="gauge",
        help="Workers the scaling policy currently wants.",
    ),
    FleetMetricSpec(
        name="repro_supervisor_live_workers",
        kind="gauge",
        help="Worker processes currently alive under the supervisor.",
    ),
)


def fleet_registry() -> MetricsRegistry:
    """A fresh registry pre-declaring every :data:`FLEET_METRICS` family.

    Pre-declaration means snapshots always carry the full catalogue
    (zero-valued families included for unlabelled metrics) and any
    instrumentation site asking for a family with a drifted shape fails
    loudly instead of silently forking the name.
    """
    registry = MetricsRegistry()
    for spec in FLEET_METRICS:
        if spec.kind == "counter":
            family: object = registry.counter(spec.name, spec.help, spec.labelnames)
        elif spec.kind == "gauge":
            family = registry.gauge(spec.name, spec.help, spec.labelnames)
        else:
            family = registry.histogram(
                spec.name,
                spec.help,
                spec.labelnames,
                spec.buckets or DEFAULT_LATENCY_BUCKETS,
            )
        # Materialise the unlabelled child so zero values are visible in
        # snapshots before the first event; labelled children appear as
        # label values are first used.
        if not spec.labelnames:
            getattr(family, "labels")()
    return registry


def metric_catalogue_markdown() -> str:
    """The metric catalogue as a Markdown table (rendered into docs).

    ``docs/build.py --write-metric-catalogue`` splices this between the
    ``METRIC-CATALOGUE`` markers in ``docs/observability.md``; the docs
    build fails while the committed table is stale, exactly like the
    lint rule catalogue.
    """
    lines = [
        "| Metric | Type | Labels | Description |",
        "| --- | --- | --- | --- |",
    ]
    for spec in sorted(FLEET_METRICS, key=lambda s: s.name):
        labels = ", ".join(f"`{n}`" for n in spec.labelnames) or "—"
        help_text = " ".join(spec.help.split())
        lines.append(f"| `{spec.name}` | {spec.kind} | {labels} | {help_text} |")
    return "\n".join(lines) + "\n"


def snapshot_json(registry: MetricsRegistry) -> str:
    """Serialise ``registry.snapshot()`` as canonical strict JSON."""
    return json.dumps(
        registry.snapshot(), allow_nan=False, sort_keys=True, separators=(",", ":")
    )

"""The ``U_{T,E,alpha}`` algorithm (Algorithm 2 of the paper).

``U_{T,E,alpha}`` is a parametrisation of the UniformVoting algorithm of
Charron-Bost and Schiper, organised in *phases* of two rounds each.
Every process maintains an estimate ``x_p`` (initially its initial
value) and a vote ``vote_p`` (initially the placeholder ``?``):

* **Round 2φ−1** — every process broadcasts ``x_p``.  If strictly more
  than ``T`` of the received values equal some proper value ``v ∈ V``,
  the process *casts a true vote* ``vote_p := v``.
* **Round 2φ** — every process broadcasts ``vote_p``.  If at least
  ``alpha + 1`` received messages carry the same proper value ``v``,
  the process can be sure (under ``P_alpha``) that at least one process
  truly voted for ``v`` and sets ``x_p := v``; otherwise it adopts the
  default value ``v0``.  If strictly more than ``E`` received messages
  carry ``v``, the process decides ``v``.  Finally ``vote_p`` is reset
  to ``?``.

Correctness (Theorem 2): under ``P_alpha ∧ P^{U,safe}`` the algorithm is
safe when ``E >= n/2 + alpha`` and ``T >= n/2 + alpha``; it terminates
under the additional liveness predicate ``P^{U,live}`` when moreover
``n > E``, ``n > T`` and ``n > alpha``.  Solutions therefore exist iff
``alpha < n/2`` — twice the corruption tolerated by ``A_{T,E}``, at the
price of the permanent predicate ``P^{U,safe}``.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.algorithms.voting import values_above, values_at_least
from repro.core.algorithm import HOAlgorithm
from repro.core.parameters import UteParameters
from repro.core.predicates import (
    AlphaSafePredicate,
    AndPredicate,
    ULivePredicate,
    USafePredicate,
)
from repro.core.process import HOProcess, Payload, ProcessId, Value


class _QuestionMark:
    """The ``?`` placeholder vote (a singleton, distinct from every value in V)."""

    _instance: Optional["_QuestionMark"] = None

    def __new__(cls) -> "_QuestionMark":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "?"

    def __reduce__(self):  # keep the singleton property across deepcopy/pickle
        return (_QuestionMark, ())


#: The unique ``?`` vote placeholder.
QUESTION_MARK = _QuestionMark()


class UteProcess(HOProcess):
    """One process of ``U_{T,E,alpha}``."""

    def __init__(
        self,
        pid: ProcessId,
        n: int,
        initial_value: Value,
        params: UteParameters,
        default_value: Value = 0,
    ) -> None:
        super().__init__(pid, n, initial_value)
        if params.n != n:
            raise ValueError(f"parameters are for n={params.n}, algorithm instantiated with n={n}")
        self.params = params
        #: The estimate ``x_p``.
        self.x: Value = initial_value
        #: The current vote, ``?`` outside the second round of a phase.
        self.vote: Payload = QUESTION_MARK
        #: The default value ``v0`` adopted when no vote is trusted.
        self.default_value: Value = default_value

    # ------------------------------------------------------------------
    # Round structure: odd rounds are the first round of a phase, even
    # rounds the second.
    # ------------------------------------------------------------------
    @staticmethod
    def is_voting_round(round_num: int) -> bool:
        """True for rounds ``2φ − 1`` (broadcast estimates, cast votes)."""
        return round_num % 2 == 1

    # -- S_p^r -------------------------------------------------------------------
    def send(self, round_num: int) -> Payload:
        """Broadcast ``x_p`` on odd rounds and ``vote_p`` on even rounds."""
        if self.is_voting_round(round_num):
            return self.x
        return self.vote

    # -- T_p^r -------------------------------------------------------------------
    def transition(self, round_num: int, reception: Mapping[ProcessId, Payload]) -> None:
        if self.is_voting_round(round_num):
            self._first_round_transition(reception)
        else:
            self._second_round_transition(round_num, reception)

    def _first_round_transition(self, reception: Mapping[ProcessId, Payload]) -> None:
        """Lines 7-9: cast a true vote when > T received values agree."""
        received = [v for v in reception.values() if not isinstance(v, _QuestionMark)]
        winners = values_above(received, self.params.threshold)
        if winners:
            # Lemma 8: with T >= n/2 + alpha at most one value can clear the
            # bar under P_alpha; deterministic tie-break otherwise.
            self.vote = min(winners, key=lambda v: (type(v).__name__, repr(v)))

    def _second_round_transition(
        self, round_num: int, reception: Mapping[ProcessId, Payload]
    ) -> None:
        """Lines 13-20: adopt a safely-witnessed vote, possibly decide, reset vote."""
        proper = [v for v in reception.values() if not isinstance(v, _QuestionMark)]

        witnessed = values_at_least(proper, float(self.params.alpha) + 1)
        if witnessed:
            # Under P_alpha at least one process truly voted for any value
            # received alpha+1 times; Lemma 8 makes the choice unique.
            best = max(witnessed.values())
            candidates = [v for v, c in witnessed.items() if c == best]
            self.x = min(candidates, key=lambda v: (type(v).__name__, repr(v)))
        else:
            self.x = self.default_value

        if not self.decided:
            # Decisions are irrevocable; a decided process keeps participating
            # (sending and updating x) but never re-decides.
            winners = values_above(proper, self.params.enough)
            if winners:
                decision = min(winners, key=lambda v: (type(v).__name__, repr(v)))
                self._decide(decision, round_num)

        self.vote = QUESTION_MARK

    # -- introspection -------------------------------------------------------------
    def state_snapshot(self) -> Dict[str, object]:
        snapshot = super().state_snapshot()
        snapshot["x"] = self.x
        snapshot["vote"] = None if isinstance(self.vote, _QuestionMark) else self.vote
        return snapshot


class UteAlgorithm(HOAlgorithm):
    """Factory for ``U_{T,E,alpha}`` processes."""

    rounds_per_phase = 2

    def __init__(self, params: UteParameters, default_value: Value = 0) -> None:
        self.params = params
        self.default_value = default_value
        self.name = (
            f"U(T={_fmt(params.threshold)},E={_fmt(params.enough)},"
            f"alpha={_fmt(params.alpha)})[n={params.n}]"
        )

    @classmethod
    def minimal(cls, n: int, alpha: float = 0, default_value: Value = 0) -> "UteAlgorithm":
        """Section 4.3's minimal instance ``E = T = n/2 + alpha``."""
        return cls(UteParameters.minimal(n=n, alpha=alpha), default_value=default_value)

    def create_process(self, pid: ProcessId, n: int, initial_value: Value) -> UteProcess:
        return UteProcess(pid, n, initial_value, self.params, default_value=self.default_value)

    # -- predicates from the paper --------------------------------------------------
    def safety_predicate(self, n: Optional[int] = None) -> AndPredicate:
        """``P_alpha ∧ P^{U,safe}`` for this instance."""
        return AndPredicate(
            [
                AlphaSafePredicate(self.params.alpha),
                USafePredicate(
                    n=self.params.n,
                    alpha=self.params.alpha,
                    threshold=self.params.threshold,
                    enough=self.params.enough,
                ),
            ]
        )

    def liveness_predicate(self, n: Optional[int] = None) -> ULivePredicate:
        """``P^{U,live}`` for this instance."""
        return ULivePredicate(
            n=self.params.n,
            alpha=self.params.alpha,
            threshold=self.params.threshold,
            enough=self.params.enough,
        )

    def describe(self) -> str:
        return self.name


def _fmt(x) -> str:
    try:
        return f"{float(x):g}"
    except (TypeError, ValueError):  # pragma: no cover - defensive
        return str(x)

"""Shared vote-counting helpers used by the concrete algorithms.

The algorithms in the paper repeatedly reason about the multiset of
received values: how often each value occurs (the sets ``R_p^r(v)``),
which value occurs most often (with ties broken towards the smallest
value), and whether some value clears a threshold.  These helpers
centralise that logic so every algorithm counts in exactly the same,
well-tested way.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.process import Payload, Value


def value_counts(values: Iterable[Payload]) -> Counter:
    """Multiset of received values (``|R_p^r(v)|`` for every ``v``)."""
    return Counter(values)


def _sort_key(value: Value) -> Tuple[str, object]:
    """Total order over possibly heterogeneous values.

    Values of the same type compare natively (so "smallest" matches the
    paper for a homogeneous value domain); across types we fall back to
    ordering by type name then repr, which keeps the choice
    deterministic even when an adversary injects a value of an
    unexpected type.
    """
    try:
        hash(value)
    except TypeError:  # pragma: no cover - payloads are hashable by contract
        raise
    return (type(value).__name__, value if _is_self_comparable(value) else repr(value))


def _is_self_comparable(value: Value) -> bool:
    try:
        value < value  # type: ignore[operator]
        return True
    except TypeError:
        return False


def smallest_most_frequent(values: Iterable[Payload]) -> Optional[Value]:
    """Return "the smallest most often received value" (line 8 of Algorithm 1).

    Among the values with the maximum multiplicity, return the smallest
    one; return ``None`` when no value was received at all.
    """
    counts = value_counts(values)
    if not counts:
        return None
    best = max(counts.values())
    candidates: List[Value] = [v for v, c in counts.items() if c == best]
    return min(candidates, key=_sort_key)


def values_above(values: Iterable[Payload], threshold: float) -> Dict[Value, int]:
    """Values received strictly more than ``threshold`` times, with their counts."""
    counts = value_counts(values)
    return {v: c for v, c in counts.items() if c > threshold}


def values_at_least(values: Iterable[Payload], minimum: float) -> Dict[Value, int]:
    """Values received at least ``minimum`` times, with their counts."""
    counts = value_counts(values)
    return {v: c for v, c in counts.items() if c >= minimum}


def unique_value_above(values: Iterable[Payload], threshold: float) -> Optional[Value]:
    """The unique value received strictly more than ``threshold`` times.

    When more than one value clears the threshold (possible only when
    the relevant predicate is violated, cf. Lemma 2 / Lemma 7), the
    smallest such value is returned so the behaviour stays deterministic
    — the surrounding run is then outside the machine's correctness
    claim anyway.
    """
    winners = values_above(values, threshold)
    if not winners:
        return None
    return min(winners, key=_sort_key)

"""The UniformVoting-style benign baseline (Charron-Bost & Schiper).

``U_{T,E,alpha}`` is described by the paper as a parametrisation of "the
various thresholds that occur in the UniformVoting algorithm" of the
benign HO model.  The benign baseline used in this reproduction is the
corresponding instance at ``alpha = 0`` with the minimal thresholds
``T = E = n/2``: votes are cast on a strict majority, a single ``(alpha
+ 1 = 1)`` vote is enough to adopt a value, and a decision requires a
strict majority of identical votes.

This is the natural ``alpha = 0`` degeneration of Algorithm 2 and plays
the same role in the benchmarks that OneThirdRule plays for
``A_{T,E}``: it shows what the paper's parametrisation buys once
corruption is allowed.
"""

from __future__ import annotations

from fractions import Fraction

from repro.algorithms.ute import UteAlgorithm, UteProcess
from repro.core.parameters import UteParameters
from repro.core.process import ProcessId, Value


class UniformVotingAlgorithm(UteAlgorithm):
    """UniformVoting-style baseline = ``U`` with ``T = E = n/2`` and ``alpha = 0``."""

    def __init__(self, n: int, default_value: Value = 0) -> None:
        half = Fraction(n, 2)
        params = UteParameters(n=n, alpha=0, threshold=half, enough=half)
        super().__init__(params, default_value=default_value)
        self.name = f"UniformVoting[n={n}]"

    def create_process(self, pid: ProcessId, n: int, initial_value: Value) -> UteProcess:
        return super().create_process(pid, n, initial_value)

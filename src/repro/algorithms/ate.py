"""The ``A_{T,E}`` algorithm (Algorithm 1 of the paper).

``A_{T,E}`` is a parametrisation of the OneThirdRule algorithm of
Charron-Bost and Schiper.  Each process ``p`` maintains a single
variable ``x_p`` initialised to its initial value.  At every round it
broadcasts ``x_p``; on reception it

* updates ``x_p`` to the *smallest most often received value* whenever
  it heard of strictly more than ``T`` processes (the "Threshold"), and
* decides ``v`` whenever strictly more than ``E`` of the received values
  equal ``v`` (the "Enough" threshold).

Correctness (Theorem 1): under ``P_alpha`` the algorithm is safe when
``E >= n/2 + alpha`` and ``T >= 2(n + 2*alpha - E)``, and it terminates
under the additional liveness predicate ``P^{A,live}`` when moreover
``n > E`` and ``n > T``.  Solutions therefore exist iff ``alpha < n/4``;
Proposition 4's symmetric choice is ``E = T = 2(n + 2*alpha)/3``, which
at ``alpha = 0`` coincides exactly with OneThirdRule.

Implementation note — guard structure.  The listing in the paper nests
the decision test inside the ``|HO(p, r)| > T`` guard (inherited from
the OneThirdRule listing), but the proof of Proposition 3 (Termination)
only relies on a process receiving more than ``E`` equal values in
order to decide — without requiring ``|HO| > T`` at that round (the
liveness predicate's final conjunct only guarantees ``|SHO(p, r_p)| > E``).
For parameter choices with ``T > E`` the nested reading would break that
argument, so this implementation evaluates the two guards independently
(decide whenever more than ``E`` equal values are received, update
``x_p`` whenever more than ``T`` messages are received).  For ``E >= T``
— in particular the symmetric choice and OneThirdRule — both readings
coincide.  The nested behaviour is available via
``AteAlgorithm(..., nested_decision_guard=True)`` for ablation
experiments.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.algorithms.voting import smallest_most_frequent, values_above
from repro.core.algorithm import HOAlgorithm
from repro.core.parameters import AteParameters
from repro.core.predicates import AlphaSafePredicate, ALivePredicate
from repro.core.process import HOProcess, Payload, ProcessId, Value


class AteProcess(HOProcess):
    """One process of ``A_{T,E}``."""

    def __init__(
        self,
        pid: ProcessId,
        n: int,
        initial_value: Value,
        params: AteParameters,
        nested_decision_guard: bool = False,
    ) -> None:
        super().__init__(pid, n, initial_value)
        if params.n != n:
            raise ValueError(f"parameters are for n={params.n}, algorithm instantiated with n={n}")
        self.params = params
        self.nested_decision_guard = nested_decision_guard
        #: The estimate ``x_p``, initially the process's initial value.
        self.x: Value = initial_value

    # -- S_p^r -------------------------------------------------------------------
    def send(self, round_num: int) -> Payload:
        """Broadcast the current estimate ``x_p`` (line 5)."""
        return self.x

    # -- T_p^r -------------------------------------------------------------------
    def transition(self, round_num: int, reception: Mapping[ProcessId, Payload]) -> None:
        """Apply lines 7-10 of Algorithm 1 to the reception vector."""
        received = list(reception.values())
        heard = len(reception)

        updated = False
        if heard > self.params.threshold:
            candidate = smallest_most_frequent(received)
            if candidate is not None:
                self.x = candidate
            updated = True

        if self.nested_decision_guard and not updated:
            return
        if self.decided:
            # Decisions are irrevocable; once made, later rounds only keep
            # updating the estimate (the guard on line 9 has no further effect).
            return

        winners = values_above(received, self.params.enough)
        if winners:
            # Lemma 2: with E >= n/2 at most one value can clear the bar;
            # the deterministic tie-break of `values_above` callers keeps
            # behaviour well defined even outside the predicate.
            decision = min(winners, key=lambda v: (type(v).__name__, repr(v)))
            self._decide(decision, round_num)

    # -- introspection -------------------------------------------------------------
    def state_snapshot(self) -> Dict[str, object]:
        snapshot = super().state_snapshot()
        snapshot["x"] = self.x
        return snapshot


class AteAlgorithm(HOAlgorithm):
    """Factory for ``A_{T,E}`` processes."""

    rounds_per_phase = 1

    def __init__(self, params: AteParameters, nested_decision_guard: bool = False) -> None:
        self.params = params
        self.nested_decision_guard = nested_decision_guard
        self.name = (
            f"A(T={_fmt(params.threshold)},E={_fmt(params.enough)})"
            f"[n={params.n},alpha={_fmt(params.alpha)}]"
        )

    @classmethod
    def symmetric(cls, n: int, alpha: float = 0) -> "AteAlgorithm":
        """Proposition 4's instance ``E = T = 2(n + 2*alpha)/3``."""
        return cls(AteParameters.symmetric(n=n, alpha=alpha))

    def create_process(self, pid: ProcessId, n: int, initial_value: Value) -> AteProcess:
        return AteProcess(
            pid,
            n,
            initial_value,
            self.params,
            nested_decision_guard=self.nested_decision_guard,
        )

    # -- predicates from the paper --------------------------------------------------
    def safety_predicate(self, n: Optional[int] = None) -> AlphaSafePredicate:
        """``P_alpha`` with this instance's ``alpha``."""
        return AlphaSafePredicate(self.params.alpha)

    def liveness_predicate(self, n: Optional[int] = None) -> ALivePredicate:
        """``P^{A,live}`` for this instance's thresholds."""
        return ALivePredicate(
            n=self.params.n,
            alpha=self.params.alpha,
            threshold=self.params.threshold,
            enough=self.params.enough,
        )

    def describe(self) -> str:
        return self.name


def _fmt(x) -> str:
    try:
        return f"{float(x):g}"
    except (TypeError, ValueError):  # pragma: no cover - defensive
        return str(x)

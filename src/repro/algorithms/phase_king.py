"""Phase-King: a classical static-Byzantine consensus baseline.

Section 5 of the paper contrasts the HO/value-fault approach with the
classical model of *static, permanent* Byzantine process faults.  To
make those comparisons executable this module provides the phase-king
algorithm of Berman and Garay: a deterministic synchronous consensus
algorithm tolerating ``f`` Byzantine processes when ``n > 4f``,
running ``f + 1`` phases of two rounds each.

In the HO encoding of the classical setting (Section 5.2) a Byzantine
process is a process whose *outgoing transmissions* may be permanently
corrupted — i.e. the adversary corrupts the same ``f`` senders in every
round (``|AS| <= f``) while everything else is synchronous and reliable
(``|SK| >= n - f``).  Phase-king is the baseline used in experiment E11
and in the fast-decision comparison (E9): it terminates in ``2(f + 1)``
rounds regardless of the run, which is what the static model pays
compared to the paper's fast ``A_{T,E}``.

Phase structure (phase ``φ`` = rounds ``2φ−1`` and ``2φ``):

* Round ``2φ−1`` — everyone broadcasts its current value; each process
  records the majority value among received messages and its count.
* Round ``2φ``  — the *king* of the phase (process ``φ − 1``) broadcasts
  its majority value; a process keeps its own majority value if its
  count exceeded ``n/2 + f``, otherwise it adopts the king's value.

After phase ``f + 1`` every process decides its current value.  With at
most ``f`` Byzantine senders and ``f + 1`` phases, at least one phase
has a correct king, which makes all correct processes agree from that
phase on.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.algorithms.voting import smallest_most_frequent, value_counts
from repro.core.algorithm import HOAlgorithm
from repro.core.predicates import ByzantineSynchronousPredicate
from repro.core.process import HOProcess, Payload, ProcessId, Value


class PhaseKingProcess(HOProcess):
    """One process of the phase-king algorithm."""

    def __init__(self, pid: ProcessId, n: int, initial_value: Value, f: int) -> None:
        super().__init__(pid, n, initial_value)
        if f < 0:
            raise ValueError(f"f must be non-negative, got {f}")
        self.f = f
        #: Current estimate.
        self.x: Value = initial_value
        #: Majority value observed in the current phase's first round.
        self._majority: Optional[Value] = None
        #: Count of the majority value.
        self._majority_count: int = 0

    # ------------------------------------------------------------------
    # Phase / round bookkeeping
    # ------------------------------------------------------------------
    @property
    def total_phases(self) -> int:
        return self.f + 1

    @property
    def total_rounds(self) -> int:
        return 2 * self.total_phases

    @staticmethod
    def phase_of(round_num: int) -> int:
        return (round_num + 1) // 2

    @staticmethod
    def is_first_round(round_num: int) -> bool:
        return round_num % 2 == 1

    def king_of(self, phase: int) -> ProcessId:
        """The king of ``phase`` (phases are 1-based, kings rotate from 0)."""
        return (phase - 1) % self.n

    # -- S_p^r -------------------------------------------------------------------
    def send(self, round_num: int) -> Payload:
        if self.is_first_round(round_num):
            return self.x
        # Second round: the king broadcasts its majority value.  Non-king
        # processes still emit their majority value (everyone sends in the
        # HO model) but receivers only consult the king's entry.
        return self._majority if self._majority is not None else self.x

    # -- T_p^r -------------------------------------------------------------------
    def transition(self, round_num: int, reception: Mapping[ProcessId, Payload]) -> None:
        phase = self.phase_of(round_num)
        if phase > self.total_phases:
            return
        if self.is_first_round(round_num):
            self._first_round(reception)
        else:
            self._second_round(phase, round_num, reception)

    def _first_round(self, reception: Mapping[ProcessId, Payload]) -> None:
        received = list(reception.values())
        majority = smallest_most_frequent(received)
        if majority is None:
            self._majority = self.x
            self._majority_count = 0
            return
        self._majority = majority
        self._majority_count = value_counts(received)[majority]

    def _second_round(
        self, phase: int, round_num: int, reception: Mapping[ProcessId, Payload]
    ) -> None:
        king = self.king_of(phase)
        king_value = reception.get(king)
        if self._majority_count > self.n / 2 + self.f:
            self.x = self._majority
        elif king_value is not None:
            self.x = king_value
        elif self._majority is not None:
            self.x = self._majority
        if phase == self.total_phases:
            self._decide(self.x, round_num)

    # -- introspection -------------------------------------------------------------
    def state_snapshot(self) -> Dict[str, object]:
        snapshot = super().state_snapshot()
        snapshot["x"] = self.x
        snapshot["majority"] = self._majority
        snapshot["majority_count"] = self._majority_count
        return snapshot


class PhaseKingAlgorithm(HOAlgorithm):
    """Factory for phase-king processes (classical static-Byzantine baseline)."""

    rounds_per_phase = 2

    def __init__(self, n: int, f: int) -> None:
        if n <= 4 * f:
            # The classical requirement; we allow construction anyway for
            # experiments that deliberately exceed the bound, but flag it.
            self.within_resilience_bound = False
        else:
            self.within_resilience_bound = True
        self.n = n
        self.f = f
        self.name = f"PhaseKing[n={n},f={f}]"

    def create_process(self, pid: ProcessId, n: int, initial_value: Value) -> PhaseKingProcess:
        if n != self.n:
            raise ValueError(f"algorithm configured for n={self.n}, got n={n}")
        return PhaseKingProcess(pid, n, initial_value, self.f)

    @property
    def rounds_to_decide(self) -> int:
        """Phase-king always runs ``2(f + 1)`` rounds before deciding."""
        return 2 * (self.f + 1)

    def safety_predicate(self, n: Optional[int] = None) -> ByzantineSynchronousPredicate:
        """The classical synchronous assumption ``|SK| >= n − f`` (Section 5.2)."""
        return ByzantineSynchronousPredicate(self.n, self.f)

    def liveness_predicate(self, n: Optional[int] = None) -> ByzantineSynchronousPredicate:
        return ByzantineSynchronousPredicate(self.n, self.f)

"""Flat per-round step kernels for the fast simulation backend.

A *kernel* executes one algorithm's whole process family on flat state
arrays (lists indexed by process id) instead of per-process objects: the
fast engine hands it the broadcast payloads of a round plus, per
receiver, the multiset of actually received values, and the kernel
applies the transition function in place.  Each kernel mirrors its
process class line for line — same guards, same tie-breaks, same
irrevocable-decision semantics — which the differential backend tests
(``tests/simulation/test_fast_engine_differential.py``) assert across
the full algorithm × adversary × n grid.

Kernels exist for ``A_{T,E}`` (:class:`AteKernel`, covering
OneThirdRule and every ``alpha``-parametrisation) and ``U_{T,E,alpha}``
(:class:`UteKernel`, covering UniformVoting).  They are registered per
*exact* algorithm class — a subclass with a custom process would
silently diverge, so unknown classes get no kernel and the backend
dispatcher falls back to the reference engine.  The name registry
(:func:`repro.algorithms.registry.supports_fast`) advertises which
registry algorithms have kernels.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Type, Union

from repro.algorithms.ate import AteAlgorithm, AteProcess
from repro.algorithms.one_third_rule import OneThirdRuleAlgorithm
from repro.algorithms.uniform_voting import UniformVotingAlgorithm
from repro.algorithms.ute import QUESTION_MARK, UteAlgorithm, UteProcess, _QuestionMark
from repro.algorithms.voting import _sort_key
from repro.core.algorithm import HOAlgorithm
from repro.core.process import HOProcess, Payload, ProcessId, Value
from repro.core.registries import guard_builtin_overwrite, unknown_key_error


def _decision_key(value: Value):
    """The decision tie-break used by both process classes."""
    return (type(value).__name__, repr(value))


class StepKernel:
    """Base class: flat decision bookkeeping shared by all kernels."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.decisions: List[Optional[Value]] = [None] * n
        self.decision_rounds: List[Optional[int]] = [None] * n
        self.undecided = n

    @property
    def all_decided(self) -> bool:
        return self.undecided == 0

    def _decide(self, receiver: ProcessId, value: Value, round_num: int) -> None:
        # Mirrors HOProcess._decide for the degenerate None "decision"
        # (None payloads are reserved, but an initial value of None can
        # produce one): storing None never flips `decided`, so the
        # undecided counter must only move on a real first decision.
        if self.decisions[receiver] is None and value is not None:
            self.undecided -= 1
        self.decisions[receiver] = value
        self.decision_rounds[receiver] = round_num

    def sends(self, round_num: int) -> List[Payload]:
        """The broadcast payload of every process at ``round_num``."""
        raise NotImplementedError

    def step(self, round_num: int, receiver: ProcessId, values: Sequence[Payload]) -> None:
        """Apply ``receiver``'s transition to its received multiset."""
        raise NotImplementedError

    def apply_to(self, processes: Mapping[ProcessId, HOProcess]) -> None:
        """Write the kernel's final state back onto process objects."""
        raise NotImplementedError

    def _apply_decision(self, proc: HOProcess, pid: ProcessId) -> None:
        if self.decisions[pid] is not None:
            proc._decide(self.decisions[pid], self.decision_rounds[pid])
        elif self.decision_rounds[pid] is not None:
            # A degenerate None decision: HOProcess records the round
            # while staying undecided — mirror that for state parity.
            proc._decision_round = self.decision_rounds[pid]


class AteKernel(StepKernel):
    """Flat-state execution of ``A_{T,E}`` (mirrors :class:`AteProcess`)."""

    def __init__(self, algorithm: AteAlgorithm, initial_values: Mapping[ProcessId, Value]) -> None:
        params = algorithm.params
        super().__init__(params.n)
        self.threshold = params.threshold
        self.enough = params.enough
        self.nested_decision_guard = algorithm.nested_decision_guard
        self.xs: List[Value] = [initial_values[p] for p in range(self.n)]

    def sends(self, round_num: int) -> List[Payload]:
        return list(self.xs)

    def step(self, round_num: int, receiver: ProcessId, values: Sequence[Payload]) -> None:
        counts = Counter(values)
        heard = len(values)

        updated = False
        if heard > self.threshold:
            if counts:
                best = max(counts.values())
                self.xs[receiver] = min(
                    (v for v, c in counts.items() if c == best), key=_sort_key
                )
            updated = True

        if self.nested_decision_guard and not updated:
            return
        if self.decisions[receiver] is not None:
            return

        winners = [v for v, c in counts.items() if c > self.enough]
        if winners:
            self._decide(receiver, min(winners, key=_decision_key), round_num)

    def apply_to(self, processes: Mapping[ProcessId, HOProcess]) -> None:
        for pid in range(self.n):
            proc = processes[pid]
            assert isinstance(proc, AteProcess)
            proc.x = self.xs[pid]
            self._apply_decision(proc, pid)


class UteKernel(StepKernel):
    """Flat-state execution of ``U_{T,E,alpha}`` (mirrors :class:`UteProcess`)."""

    def __init__(self, algorithm: UteAlgorithm, initial_values: Mapping[ProcessId, Value]) -> None:
        params = algorithm.params
        super().__init__(params.n)
        self.threshold = params.threshold
        self.enough = params.enough
        self.witness_floor = float(params.alpha) + 1
        self.default_value = algorithm.default_value
        self.xs: List[Value] = [initial_values[p] for p in range(self.n)]
        self.votes: List[Payload] = [QUESTION_MARK] * self.n

    def sends(self, round_num: int) -> List[Payload]:
        if round_num % 2 == 1:
            return list(self.xs)
        return list(self.votes)

    def step(self, round_num: int, receiver: ProcessId, values: Sequence[Payload]) -> None:
        proper = [v for v in values if not isinstance(v, _QuestionMark)]
        counts = Counter(proper)
        if round_num % 2 == 1:
            winners = [v for v, c in counts.items() if c > self.threshold]
            if winners:
                self.votes[receiver] = min(winners, key=_decision_key)
            return

        witnessed = {v: c for v, c in counts.items() if c >= self.witness_floor}
        if witnessed:
            best = max(witnessed.values())
            candidates = [v for v, c in witnessed.items() if c == best]
            self.xs[receiver] = min(candidates, key=_decision_key)
        else:
            self.xs[receiver] = self.default_value

        if self.decisions[receiver] is None:
            winners = [v for v, c in counts.items() if c > self.enough]
            if winners:
                self._decide(receiver, min(winners, key=_decision_key), round_num)

        self.votes[receiver] = QUESTION_MARK

    def apply_to(self, processes: Mapping[ProcessId, HOProcess]) -> None:
        for pid in range(self.n):
            proc = processes[pid]
            assert isinstance(proc, UteProcess)
            proc.x = self.xs[pid]
            proc.vote = self.votes[pid]
            self._apply_decision(proc, pid)


#: Kernel factories keyed by *exact* algorithm class; subclasses are
#: deliberately not matched (their processes may behave differently).
_KERNELS: Dict[Type[HOAlgorithm], Callable[..., StepKernel]] = {
    AteAlgorithm: AteKernel,
    OneThirdRuleAlgorithm: AteKernel,
    UteAlgorithm: UteKernel,
    UniformVotingAlgorithm: UteKernel,
}


#: The kernel registrations that ship with the package; silently
#: replacing one would change semantics for every caller, so
#: :func:`register_kernel` refuses it without ``overwrite=True``.
_BUILTIN_KERNELS = frozenset(_KERNELS)


def register_kernel(
    algorithm_type: Type[HOAlgorithm],
    factory: Optional[Callable[..., StepKernel]] = None,
    *,
    overwrite: bool = False,
):
    """Register a kernel factory for ``algorithm_type`` (exact class).

    Usable directly (``register_kernel(MyAlgorithm, MyKernel)``) or as
    a decorator (``@register_kernel(MyAlgorithm)`` above the kernel
    class); either form returns the factory.  Replacing a built-in
    registration (e.g. the ``A_{T,E}`` kernel) raises unless
    ``overwrite=True`` is passed explicitly.

    Per-process registry: parallel campaign workers only see
    registrations performed at import time (register at module level in
    a module the workers import, or their runs silently fall back to
    the reference engine).
    """
    guard_builtin_overwrite(
        "step kernel",
        f"for {algorithm_type.__name__}",
        algorithm_type in _BUILTIN_KERNELS,
        overwrite,
    )

    def _register(kernel_factory: Callable[..., StepKernel]):
        _KERNELS[algorithm_type] = kernel_factory
        return kernel_factory

    if factory is None:
        return _register
    return _register(factory)


def get_kernel_factory(
    algorithm_type: Union[Type[HOAlgorithm], str]
) -> Callable[..., StepKernel]:
    """Look up a registered kernel factory, with a did-you-mean on typos.

    Accepts the algorithm class itself or its name; raises
    :class:`ValueError` (listing registered classes, with a close-match
    hint) when nothing is registered for it.
    """
    if isinstance(algorithm_type, str):
        by_name = {cls.__name__: cls for cls in _KERNELS}
        cls = by_name.get(algorithm_type)
        if cls is None:
            raise unknown_key_error("step kernel", algorithm_type, by_name)
        return _KERNELS[cls]
    factory = _KERNELS.get(algorithm_type)
    if factory is None:
        raise unknown_key_error(
            "step kernel",
            algorithm_type.__name__,
            (cls.__name__ for cls in _KERNELS),
        )
    return factory


def registered_kernel_factory(
    algorithm_type: Type[HOAlgorithm],
) -> Optional[Callable[..., StepKernel]]:
    """The registered factory for ``algorithm_type``, or None (no raise)."""
    return _KERNELS.get(algorithm_type)


def has_kernel(algorithm: HOAlgorithm) -> bool:
    """Whether the fast backend can execute ``algorithm`` natively."""
    return type(algorithm) in _KERNELS


def make_kernel(
    algorithm: HOAlgorithm, initial_values: Mapping[ProcessId, Value]
) -> Optional[StepKernel]:
    """Build the step kernel for ``algorithm``, or None if it has none."""
    factory = _KERNELS.get(type(algorithm))
    if factory is None:
        return None
    return factory(algorithm, initial_values)

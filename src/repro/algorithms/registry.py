"""A small registry mapping algorithm names to constructors.

Used by the CLI and the experiment drivers so that algorithms can be
selected by name on the command line or in experiment configuration
dictionaries.  Each entry declares the keyword arguments its factory
accepts — :func:`make_algorithm` rejects unknown kwargs with a
:class:`ValueError` listing the accepted ones (a typoed ``aplha=`` must
fail loudly, not silently fall back to the default), and unknown
algorithm names get a did-you-mean suggestion.  Entries also advertise
whether the algorithm has a fast-backend step kernel
(:func:`supports_fast`, see :mod:`repro.algorithms.kernels`).
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List

from repro.core.algorithm import HOAlgorithm


def _make_ate(n: int, alpha: float = 0) -> HOAlgorithm:
    from repro.algorithms.ate import AteAlgorithm

    return AteAlgorithm.symmetric(n=n, alpha=alpha)


def _make_ute(n: int, alpha: float = 0, default_value=0) -> HOAlgorithm:
    from repro.algorithms.ute import UteAlgorithm

    return UteAlgorithm.minimal(n=n, alpha=alpha, default_value=default_value)


def _make_one_third_rule(n: int) -> HOAlgorithm:
    from repro.algorithms.one_third_rule import OneThirdRuleAlgorithm

    return OneThirdRuleAlgorithm(n=n)


def _make_uniform_voting(n: int, default_value=0) -> HOAlgorithm:
    from repro.algorithms.uniform_voting import UniformVotingAlgorithm

    return UniformVotingAlgorithm(n=n, default_value=default_value)


def _make_phase_king(n: int, f: int = 0) -> HOAlgorithm:
    from repro.algorithms.phase_king import PhaseKingAlgorithm

    return PhaseKingAlgorithm(n=n, f=f)


@dataclass(frozen=True)
class _Entry:
    """One registry entry: factory plus the kwargs it accepts."""

    factory: Callable[..., HOAlgorithm]
    accepted: FrozenSet[str]


_REGISTRY: Dict[str, _Entry] = {
    "ate": _Entry(_make_ate, frozenset({"alpha"})),
    "ute": _Entry(_make_ute, frozenset({"alpha", "default_value"})),
    "one-third-rule": _Entry(_make_one_third_rule, frozenset()),
    "uniform-voting": _Entry(_make_uniform_voting, frozenset({"default_value"})),
    "phase-king": _Entry(_make_phase_king, frozenset({"f"})),
}

#: Accepted spellings that normalise to a canonical entry.
_ALIASES: Dict[str, str] = {
    "a-te": "ate",
    "u-te-alpha": "ute",
    "onethirdrule": "one-third-rule",
    "uniformvoting": "uniform-voting",
    "phaseking": "phase-king",
}


def _resolve(name: str) -> str:
    """Normalise ``name`` to a canonical registry key, or raise KeyError."""
    key = name.strip().lower().replace("_", "-")
    key = _ALIASES.get(key, key)
    if key in _REGISTRY:
        return key
    compact = key.replace("-", "")
    compact = _ALIASES.get(compact, compact)
    if compact in _REGISTRY:
        return compact
    candidates = sorted(set(_REGISTRY) | set(_ALIASES))
    suggestion = difflib.get_close_matches(key, candidates, n=1)
    hint = f"; did you mean {_ALIASES.get(suggestion[0], suggestion[0])!r}?" if suggestion else ""
    raise KeyError(
        f"unknown algorithm {name!r}{hint} "
        f"(available: {', '.join(available_algorithms())})"
    )


def available_algorithms() -> List[str]:
    """The canonical algorithm names accepted by :func:`make_algorithm`."""
    return sorted(_REGISTRY)


def accepted_kwargs(name: str) -> FrozenSet[str]:
    """The keyword arguments (besides ``n``) the named factory accepts."""
    return _REGISTRY[_resolve(name)].accepted


def supports_fast(name: str) -> bool:
    """Whether the named algorithm has a fast-backend step kernel.

    Consults the kernel registry itself (via a probe instance), so a
    kernel registered at runtime with
    :func:`repro.algorithms.kernels.register_kernel` is advertised
    immediately — there is no second table to drift.
    """
    from repro.algorithms.kernels import has_kernel

    return has_kernel(_REGISTRY[_resolve(name)].factory(n=4))


def make_algorithm(name: str, n: int, **kwargs) -> HOAlgorithm:
    """Construct an algorithm by (case-insensitive) name.

    Supported keyword arguments depend on the algorithm: ``alpha`` for
    ``ate``/``ute``, ``f`` for ``phase-king``, ``default_value`` for the
    voting algorithms.  Unknown names raise :class:`KeyError` (with a
    did-you-mean suggestion); unknown keyword arguments raise
    :class:`ValueError` listing the accepted ones.
    """
    entry = _REGISTRY[_resolve(name)]
    unknown = sorted(set(kwargs) - entry.accepted)
    if unknown:
        accepted = ", ".join(sorted(entry.accepted)) or "none (besides n)"
        raise ValueError(
            f"unknown keyword argument(s) {', '.join(map(repr, unknown))} for "
            f"algorithm {name!r}; accepted keyword argument(s): {accepted}"
        )
    return entry.factory(n=n, **kwargs)

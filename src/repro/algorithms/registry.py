"""A small registry mapping algorithm names to constructors.

Used by the CLI and the experiment drivers so that algorithms can be
selected by name on the command line or in experiment configuration
dictionaries.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.algorithm import HOAlgorithm


def _make_ate(n: int, alpha: float = 0, **kwargs) -> HOAlgorithm:
    from repro.algorithms.ate import AteAlgorithm

    return AteAlgorithm.symmetric(n=n, alpha=alpha)


def _make_ute(n: int, alpha: float = 0, **kwargs) -> HOAlgorithm:
    from repro.algorithms.ute import UteAlgorithm

    return UteAlgorithm.minimal(n=n, alpha=alpha, default_value=kwargs.get("default_value", 0))


def _make_one_third_rule(n: int, **kwargs) -> HOAlgorithm:
    from repro.algorithms.one_third_rule import OneThirdRuleAlgorithm

    return OneThirdRuleAlgorithm(n=n)


def _make_uniform_voting(n: int, **kwargs) -> HOAlgorithm:
    from repro.algorithms.uniform_voting import UniformVotingAlgorithm

    return UniformVotingAlgorithm(n=n, default_value=kwargs.get("default_value", 0))


def _make_phase_king(n: int, f: int = 0, **kwargs) -> HOAlgorithm:
    from repro.algorithms.phase_king import PhaseKingAlgorithm

    return PhaseKingAlgorithm(n=n, f=f)


_REGISTRY: Dict[str, Callable[..., HOAlgorithm]] = {
    "ate": _make_ate,
    "a_te": _make_ate,
    "ute": _make_ute,
    "u_te_alpha": _make_ute,
    "one-third-rule": _make_one_third_rule,
    "onethirdrule": _make_one_third_rule,
    "uniform-voting": _make_uniform_voting,
    "uniformvoting": _make_uniform_voting,
    "phase-king": _make_phase_king,
    "phaseking": _make_phase_king,
}


def available_algorithms() -> List[str]:
    """The canonical algorithm names accepted by :func:`make_algorithm`."""
    return sorted({"ate", "ute", "one-third-rule", "uniform-voting", "phase-king"})


def make_algorithm(name: str, n: int, **kwargs) -> HOAlgorithm:
    """Construct an algorithm by (case-insensitive) name.

    Supported keyword arguments depend on the algorithm: ``alpha`` for
    ``ate``/``ute``, ``f`` for ``phase-king``, ``default_value`` for the
    voting algorithms.
    """
    key = name.strip().lower().replace("_", "-")
    key_compact = key.replace("-", "")
    factory = _REGISTRY.get(key) or _REGISTRY.get(key_compact)
    if factory is None:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {', '.join(available_algorithms())}"
        )
    return factory(n=n, **kwargs)

"""Consensus algorithms.

* :class:`AteAlgorithm` — the paper's ``A_{T,E}`` (Algorithm 1).
* :class:`UteAlgorithm` — the paper's ``U_{T,E,alpha}`` (Algorithm 2).
* :class:`OneThirdRuleAlgorithm` — the benign-case OneThirdRule of
  Charron-Bost/Schiper, i.e. ``A_{2n/3, 2n/3}`` at ``alpha = 0``.
* :class:`UniformVotingAlgorithm` — the benign-case UniformVoting-style
  baseline, i.e. ``U`` at ``alpha = 0`` with the minimal thresholds.
* :class:`PhaseKingAlgorithm` — a classical static-Byzantine baseline
  (phase-king style) used in the Section 5 comparisons.

All algorithms are :class:`repro.core.algorithm.HOAlgorithm` factories;
their processes are :class:`repro.core.process.HOProcess` instances.
"""

from repro.algorithms.ate import AteAlgorithm, AteProcess
from repro.algorithms.kernels import (
    AteKernel,
    StepKernel,
    UteKernel,
    has_kernel,
    make_kernel,
    register_kernel,
)
from repro.algorithms.one_third_rule import OneThirdRuleAlgorithm
from repro.algorithms.phase_king import PhaseKingAlgorithm, PhaseKingProcess
from repro.algorithms.registry import (
    accepted_kwargs,
    available_algorithms,
    make_algorithm,
    supports_fast,
)
from repro.algorithms.uniform_voting import UniformVotingAlgorithm
from repro.algorithms.ute import QUESTION_MARK, UteAlgorithm, UteProcess

__all__ = [
    "AteAlgorithm",
    "AteKernel",
    "AteProcess",
    "OneThirdRuleAlgorithm",
    "PhaseKingAlgorithm",
    "PhaseKingProcess",
    "QUESTION_MARK",
    "StepKernel",
    "UniformVotingAlgorithm",
    "UteAlgorithm",
    "UteKernel",
    "UteProcess",
    "accepted_kwargs",
    "available_algorithms",
    "has_kernel",
    "make_algorithm",
    "make_kernel",
    "register_kernel",
    "supports_fast",
]

"""The OneThirdRule baseline (Charron-Bost & Schiper, benign HO model).

OneThirdRule is the benign-fault algorithm that ``A_{T,E}`` generalises:
a process updates its estimate to the smallest most frequent received
value whenever it hears of more than ``2n/3`` processes, and decides a
value received more than ``2n/3`` times.  The paper observes (end of
Section 3.3) that ``A_{2n/3, 2n/3}`` at ``alpha = 0`` "exactly coincides
with the OneThirdRule algorithm".

The class below is therefore a thin wrapper around
:class:`repro.algorithms.ate.AteAlgorithm` with the OneThirdRule
thresholds pinned; keeping it as a named algorithm makes the baseline
comparisons of the benchmark harness explicit and lets the equivalence
be *tested* rather than asserted (see
``tests/algorithms/test_one_third_rule.py``).
"""

from __future__ import annotations

from fractions import Fraction

from repro.algorithms.ate import AteAlgorithm, AteProcess
from repro.core.parameters import AteParameters
from repro.core.process import ProcessId, Value


class OneThirdRuleAlgorithm(AteAlgorithm):
    """OneThirdRule = ``A_{T,E}`` with ``T = E = 2n/3`` and ``alpha = 0``."""

    def __init__(self, n: int) -> None:
        two_thirds = Fraction(2, 3) * n
        params = AteParameters(n=n, alpha=0, threshold=two_thirds, enough=two_thirds)
        super().__init__(params)
        self.name = f"OneThirdRule[n={n}]"

    def create_process(self, pid: ProcessId, n: int, initial_value: Value) -> AteProcess:
        return super().create_process(pid, n, initial_value)

"""Shared infrastructure for the experiment drivers.

Every experiment of DESIGN.md's index (E1-E13) is implemented as a
driver function returning an :class:`ExperimentReport`: a structured
object with an id, a title, a list of result rows (plain dictionaries so
they can be rendered, asserted on and serialised), and free-form notes.
Benchmarks, the CLI and EXPERIMENTS.md are all generated from these
drivers so the numbers they show cannot drift apart.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.adversary.base import Adversary
from repro.core.algorithm import HOAlgorithm
from repro.core.predicates import CommunicationPredicate
from repro.core.process import ProcessId, Value
from repro.simulation.engine import SimulationResult
from repro.verification.properties import BatchReport

if TYPE_CHECKING:
    from repro.runner.executor import CampaignRunner, RunTask
    from repro.runner.reduce import Reducer


@dataclass
class ExperimentReport:
    """Structured output of one experiment driver."""

    experiment_id: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    paper_claim: str = ""

    def add_row(self, **fields: object) -> None:
        self.rows.append(dict(fields))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        """Human-readable rendering used by the CLI and the bench harness."""
        from repro.analysis.comparison import render_table

        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.paper_claim:
            lines.append(f"paper claim: {self.paper_claim}")
        if self.rows:
            lines.append(render_table(self.rows))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_json(self, path: Optional[Union[str, Path]] = None) -> str:
        """Serialise the report (optionally writing it to ``path``)."""
        payload = json.dumps(
            {
                "experiment_id": self.experiment_id,
                "title": self.title,
                "paper_claim": self.paper_claim,
                "rows": self.rows,
                "notes": self.notes,
            },
            indent=2,
            default=str,
        )
        if path is not None:
            Path(path).parent.mkdir(parents=True, exist_ok=True)
            Path(path).write_text(payload, encoding="utf-8")
        return payload


def _build_tasks(
    algorithm_factory: Callable[[int], HOAlgorithm],
    adversary_factory: Callable[[int], Adversary],
    initial_value_batches: Sequence[Mapping[ProcessId, Value]],
    max_rounds: int,
    predicate: Optional[CommunicationPredicate] = None,
    cache_key: Optional[str] = None,
) -> List["RunTask"]:
    from repro.runner.executor import RunTask

    return [
        RunTask(
            algorithm=algorithm_factory(index),
            adversary=adversary_factory(index),
            initial_values=initial_values,
            max_rounds=max_rounds,
            predicate=predicate,
            key=f"{cache_key}/{index:04d}" if cache_key else None,
            run_index=index,
        )
        for index, initial_values in enumerate(initial_value_batches)
    ]


def run_batch(
    algorithm_factory: Callable[[int], HOAlgorithm],
    adversary_factory: Callable[[int], Adversary],
    initial_value_batches: Sequence[Mapping[ProcessId, Value]],
    max_rounds: int = 60,
    predicate: Optional[CommunicationPredicate] = None,
    runner: Optional["CampaignRunner"] = None,
    cache_key: Optional[str] = None,
) -> BatchReport:
    """Run one simulation per initial configuration and aggregate the outcomes.

    The factories receive the run index so that every run gets fresh
    algorithm and adversary state with run-specific seeds.

    Execution is routed through a :class:`repro.runner.CampaignRunner`;
    pass one to fan the batch out over worker processes (``jobs > 1``)
    and/or reuse cached results (``cache_key`` must then identify every
    input that determines this batch's results — see
    :func:`repro.runner.spec.cell_cache_key`).  A
    :class:`repro.runner.DistributedCampaignRunner` is accepted through
    the same kwarg, which runs the sweep on a worker fleet with
    byte-identical results.  The default is an uncached in-process
    runner, which executes exactly as the historical serial loop did.
    """
    from repro.runner.aggregate import batch_report_from_records
    from repro.runner.executor import CampaignRunner

    runner = runner if runner is not None else CampaignRunner()
    tasks = _build_tasks(
        algorithm_factory,
        adversary_factory,
        initial_value_batches,
        max_rounds,
        predicate=predicate,
        cache_key=cache_key if runner.cache is not None else None,
    )
    return batch_report_from_records(runner.run_tasks(tasks))


def run_batch_results(
    algorithm_factory: Callable[[int], HOAlgorithm],
    adversary_factory: Callable[[int], Adversary],
    initial_value_batches: Sequence[Mapping[ProcessId, Value]],
    max_rounds: int = 60,
    runner: Optional["CampaignRunner"] = None,
) -> List[SimulationResult]:
    """Like :func:`run_batch` but returning the raw results for custom analysis.

    Full :class:`SimulationResult`s (heard-of collections included) are
    returned, so this path is never cached and every parallel run ships
    its whole heard-of collection back through pickle.  Prefer
    :func:`run_reduced_batch` unless the analysis genuinely needs whole
    collections in the parent process.
    """
    from repro.runner.executor import CampaignRunner

    runner = runner if runner is not None else CampaignRunner()
    tasks = _build_tasks(
        algorithm_factory, adversary_factory, initial_value_batches, max_rounds
    )
    return runner.run_simulations(tasks)


def run_reduced_batch(
    algorithm_factory: Callable[[int], HOAlgorithm],
    adversary_factory: Callable[[int], Adversary],
    initial_value_batches: Sequence[Mapping[ProcessId, Value]],
    reducer: "Reducer",
    max_rounds: int = 60,
    runner: Optional["CampaignRunner"] = None,
    cache_key: Optional[str] = None,
) -> List[Dict[str, object]]:
    """Run one simulation per configuration, reducing inside the worker.

    Returns ``reducer.reduce(result)`` for every run, in input order —
    only these compact dicts ever cross the process boundary, so a
    parallel runner's IPC volume stays flat in ``n`` instead of growing
    with the full heard-of collection.  With ``runner=None`` this
    executes serially in-process with byte-identical results.  Failed
    runs raise rather than being dropped (callers zip rows with their
    inputs).  With ``cache_key`` (and a caching runner) results are
    cached under reducer-fingerprinted keys.
    """
    from repro.runner.executor import CampaignRunner
    from repro.runner.reduce import reduced_data

    runner = runner if runner is not None else CampaignRunner()
    tasks = _build_tasks(
        algorithm_factory,
        adversary_factory,
        initial_value_batches,
        max_rounds,
        cache_key=cache_key if runner.cache is not None else None,
    )
    return reduced_data(runner.run_reduced(tasks, reducer))

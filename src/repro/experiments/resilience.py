"""Experiments E6 and E7: resilience boundaries (Sections 3.3 and 4.3).

``A_{T,E}`` admits valid thresholds iff ``alpha < n/4`` and
``U_{T,E,alpha}`` iff ``alpha < n/2``.  These drivers sweep ``alpha``
across each boundary and report, per value,

* whether valid thresholds exist analytically (and how many integer
  ``(T, E)`` pairs there are), and
* what happens in simulation at (or as close as possible to) the
  canonical threshold choice — including adversarial *split-vote* attacks
  whose per-receiver corruption budget equals ``alpha``, which succeed in
  breaking Agreement once the parameters leave the feasible region.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.adversary import (
    PeriodicGoodPhaseAdversary,
    PeriodicGoodRoundAdversary,
    RandomCorruptionAdversary,
    SplitVoteAdversary,
)
from repro.algorithms import AteAlgorithm, UteAlgorithm
from repro.analysis.feasibility import (
    ate_feasible,
    ate_integer_solutions,
    ate_max_alpha,
    ute_feasible,
    ute_integer_solutions,
    ute_max_alpha,
)
from repro.core.parameters import AteParameters, UteParameters
from repro.experiments.common import ExperimentReport, run_reduced_batch
from repro.runner.reduce import DecisionReducer, batch_report_from_reduced
from repro.workloads import generators

if TYPE_CHECKING:
    from repro.runner.executor import CampaignRunner


def _ate_params_for(n: int, alpha: int) -> AteParameters:
    """Symmetric thresholds when feasible, the closest in-range attempt otherwise."""
    if ate_feasible(n, alpha):
        return AteParameters.symmetric(n=n, alpha=alpha)
    return AteParameters(n=n, alpha=alpha, threshold=n - 1, enough=n - 1)


def _ute_params_for(n: int, alpha: int) -> UteParameters:
    if ute_feasible(n, alpha):
        return UteParameters.minimal(n=n, alpha=alpha)
    return UteParameters(n=n, alpha=alpha, threshold=n - 1, enough=n - 1)


def ate_resilience_sweep(
    n: int = 12,
    runs: int = 12,
    seed: int = 7,
    max_rounds: int = 60,
    runner: Optional["CampaignRunner"] = None,
) -> ExperimentReport:
    """E6 — sweep ``alpha`` across the ``n/4`` boundary for ``A_{T,E}``."""
    report = ExperimentReport(
        experiment_id="E6",
        title=f"A_(T,E) resilience boundary, n={n}",
        paper_claim="valid (T, E) exist iff alpha < n/4; Proposition 4 chooses E = T = 2(n + 2a)/3.",
    )
    limit = ate_max_alpha(n)
    alphas = list(range(0, limit + 1)) + [limit + 1, limit + 2]
    for alpha in alphas:
        params = _ate_params_for(n, alpha)
        feasible = ate_feasible(n, alpha)
        integer_solutions = len(ate_integer_solutions(n, alpha))

        def adversary(index: int, alpha=alpha) -> object:
            if index % 2 == 0:
                # Split-vote attack with exactly the allowed per-receiver budget.
                return SplitVoteAdversary(
                    budget_per_receiver=alpha, value_a=0, value_b=1, seed=seed + index
                )
            return PeriodicGoodRoundAdversary(
                inner=RandomCorruptionAdversary(alpha=alpha, value_domain=(0, 1), seed=seed + index),
                period=4,
            )

        rows = run_reduced_batch(
            algorithm_factory=lambda index, params=params: AteAlgorithm(params),
            adversary_factory=adversary,
            initial_value_batches=[generators.split(n) for _ in range(runs)],
            reducer=DecisionReducer(),
            max_rounds=max_rounds,
            runner=runner,
        )
        attack_runs = batch_report_from_reduced(rows[0::2])
        live_runs = batch_report_from_reduced(rows[1::2])
        overall = batch_report_from_reduced(rows)
        report.add_row(
            alpha=alpha,
            feasible=feasible,
            integer_threshold_pairs=integer_solutions,
            threshold=float(params.threshold),
            enough=float(params.enough),
            agreement_rate=round(overall.agreement_rate, 3),
            integrity_rate=round(overall.integrity_rate, 3),
            agreement_rate_under_attack=round(attack_runs.agreement_rate, 3),
            termination_rate_live_env=round(live_runs.termination_rate, 3),
        )
    report.add_note(
        "the split-vote attack rows measure safety only (that adversary provides no good rounds, "
        "so termination is not owed); the live-environment column measures termination under "
        "P^A,live-style good rounds.  Agreement stays at 1.0 for every feasible alpha; beyond "
        "n/4 no threshold choice exists and the same per-receiver budget breaks the machine."
    )
    return report


def ute_resilience_sweep(
    n: int = 9,
    runs: int = 12,
    seed: int = 8,
    max_rounds: int = 80,
    runner: Optional["CampaignRunner"] = None,
) -> ExperimentReport:
    """E7 — sweep ``alpha`` across the ``n/2`` boundary for ``U_{T,E,alpha}``."""
    report = ExperimentReport(
        experiment_id="E7",
        title=f"U_(T,E,alpha) resilience boundary, n={n}",
        paper_claim="valid (T, E) exist iff alpha < n/2; the minimal choice is E = T = n/2 + a.",
    )
    limit = ute_max_alpha(n)
    alphas = sorted(set([0, limit // 2, limit, limit + 1, limit + 2]))
    for alpha in alphas:
        params = _ute_params_for(n, alpha)
        feasible = ute_feasible(n, alpha)
        integer_solutions = len(ute_integer_solutions(n, alpha))

        def adversary(index: int, alpha=alpha) -> object:
            if index % 2 == 0:
                return SplitVoteAdversary(
                    budget_per_receiver=alpha, value_a=0, value_b=1, seed=seed + index
                )
            return PeriodicGoodPhaseAdversary(
                inner=RandomCorruptionAdversary(alpha=alpha, value_domain=(0, 1), seed=seed + index),
                period=3,
            )

        rows = run_reduced_batch(
            algorithm_factory=lambda index, params=params: UteAlgorithm(params),
            adversary_factory=adversary,
            initial_value_batches=[generators.split(n) for _ in range(runs)],
            reducer=DecisionReducer(),
            max_rounds=max_rounds,
            runner=runner,
        )
        attack_runs = batch_report_from_reduced(rows[0::2])
        live_runs = batch_report_from_reduced(rows[1::2])
        overall = batch_report_from_reduced(rows)
        report.add_row(
            alpha=alpha,
            feasible=feasible,
            integer_threshold_pairs=integer_solutions,
            threshold=float(params.threshold),
            enough=float(params.enough),
            agreement_rate=round(overall.agreement_rate, 3),
            integrity_rate=round(overall.integrity_rate, 3),
            agreement_rate_under_attack=round(attack_runs.agreement_rate, 3),
            termination_rate_live_env=round(live_runs.termination_rate, 3),
        )
    report.add_note(
        "U tolerates alpha up to just below n/2 — twice A's bound — provided P^U,safe holds; "
        "note that the split-vote attack with a budget above n/2 also violates P^U,safe, so "
        "those rows are outside the machine's claim as well as outside the feasible region."
    )
    return report

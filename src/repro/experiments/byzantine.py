"""Experiment E11: classical Byzantine assumptions expressed as predicates (Section 5.2).

The paper closes Section 5.2 by noting that, although processes never
deviate from their transition functions in this model, the *classical*
Byzantine assumptions are expressible as communication predicates:

* synchronous system, reliable links, at most ``f`` Byzantine processes:
  ``|SK| >= n − f``;
* asynchronous system, reliable links, at most ``f`` Byzantine
  processes: ``∀p, r: |HO(p, r)| >= n − f  ∧  |AS| <= f``.

The driver generates runs with a static equivocating adversary (the
transmission-level footprint of ``f`` Byzantine processes), verifies
both predicates hold on the generated collections, and compares how the
paper's algorithms and the classical phase-king baseline fare in that
environment.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.adversary import StaticByzantineAdversary
from repro.algorithms import AteAlgorithm, PhaseKingAlgorithm, UteAlgorithm
from repro.core.predicates import (
    AlphaSafePredicate,
    ByzantineAsynchronousPredicate,
    ByzantineSynchronousPredicate,
    PermanentAlphaPredicate,
)
from repro.experiments.common import ExperimentReport, run_reduced_batch
from repro.runner.reduce import PredicateReducer, batch_report_from_reduced
from repro.workloads import generators

if TYPE_CHECKING:
    from repro.runner.executor import CampaignRunner


def byzantine_predicates(
    n: int = 10,
    f: int = 2,
    runs: int = 10,
    seed: int = 12,
    max_rounds: int = 60,
    runner: Optional["CampaignRunner"] = None,
) -> ExperimentReport:
    """E11 — static Byzantine senders, checked against the Section 5.2 predicates."""
    report = ExperimentReport(
        experiment_id="E11",
        title=f"Classical Byzantine assumptions as predicates, n={n}, f={f}",
        paper_claim=(
            "static Byzantine faults are the special case |SK| >= n-f (synchronous) / "
            "|HO| >= n-f ∧ |AS| <= f (asynchronous) of the transmission-fault model; "
            "U_(T,E,alpha) with alpha = f handles them, and P^perm_f implies P_f."
        ),
    )

    sync_predicate = ByzantineSynchronousPredicate(n, f)
    async_predicate = ByzantineAsynchronousPredicate(n, f)
    perm_predicate = PermanentAlphaPredicate(f)
    alpha_predicate = AlphaSafePredicate(f)

    algorithms = {
        "U_(T,E,alpha=f)": lambda: UteAlgorithm.minimal(n=n, alpha=f),
        "A_(T,E) with alpha=f": lambda: AteAlgorithm.symmetric(n=n, alpha=f),
        f"PhaseKing(f={f})": lambda: PhaseKingAlgorithm(n=n, f=f),
    }

    reducer = PredicateReducer(
        {
            "sync (|SK|>=n-f)": sync_predicate,
            "async (|HO|>=n-f, |AS|<=f)": async_predicate,
            "P^perm_f": perm_predicate,
            "P_f": alpha_predicate,
        }
    )

    for label, algorithm_factory in algorithms.items():
        rows = run_reduced_batch(
            algorithm_factory=lambda index, factory=algorithm_factory: factory(),
            adversary_factory=lambda index: StaticByzantineAdversary(
                byzantine=range(f), value_domain=(0, 1), seed=seed * 7 + index
            ),
            initial_value_batches=[generators.skewed(n, seed=seed + index) for index in range(runs)],
            reducer=reducer,
            max_rounds=max_rounds,
            runner=runner,
        )
        batch = batch_report_from_reduced(rows)
        predicate_checks = {
            label: all(row["predicates"][label] for row in rows)
            for label in reducer.predicates
        }
        report.add_row(
            algorithm=label,
            agreement_rate=round(batch.agreement_rate, 3),
            integrity_rate=round(batch.integrity_rate, 3),
            termination_rate=round(batch.termination_rate, 3),
            mean_decision_round=(
                round(batch.mean_decision_round, 2)
                if batch.mean_decision_round is not None
                else None
            ),
            predicates_hold=all(predicate_checks.values()),
        )
    report.add_note(
        "the static adversary's runs satisfy every classical-encoding predicate; "
        "A_(T,E) stays safe but cannot be expected to terminate under permanent corruption "
        "(its liveness needs rounds with |SHO| > E), whereas U_(T,E,alpha=f) both stays safe "
        "and terminates, and phase-king needs its fixed 2(f+1) rounds."
    )
    return report

"""Experiment drivers reproducing every table and figure of the paper.

Each driver returns an :class:`repro.experiments.common.ExperimentReport`
and corresponds to one experiment id of DESIGN.md's index:

========  =======================================================================
E1, E2    Table 1 rows (``validate_ate_row``, ``validate_ute_row``)
E3, E4    Figures 1 and 2 liveness predicates (``alive_predicate_effect``,
          ``ulive_predicate_effect``)
E5        Figure 3 corruption taxonomy (``corruption_taxonomy``)
E6, E7    Resilience boundaries alpha < n/4 and alpha < n/2
          (``ate_resilience_sweep``, ``ute_resilience_sweep``)
E8        Santoro–Widmayer circumvention (``santoro_widmayer_circumvention``)
E9        Fast decision vs Martin–Alvisi (``fast_decision``)
E10       Lamport bound attainment (``lamport_attainment``)
E11       Classical Byzantine assumptions as predicates (``byzantine_predicates``)
E12       Benign baselines / alpha = 0 degeneration (``benign_baselines``)
========  =======================================================================

E13 (engine throughput) has no driver here — it is measured directly by
``benchmarks/test_bench_engine.py``.
"""

from repro.experiments.benign import benign_baselines
from repro.experiments.byzantine import byzantine_predicates
from repro.experiments.common import (
    ExperimentReport,
    run_batch,
    run_batch_results,
    run_reduced_batch,
)
from repro.experiments.liveness import alive_predicate_effect, ulive_predicate_effect
from repro.experiments.lower_bounds import (
    fast_decision,
    lamport_attainment,
    santoro_widmayer_circumvention,
)
from repro.experiments.resilience import ate_resilience_sweep, ute_resilience_sweep
from repro.experiments.table1 import validate_ate_row, validate_ute_row
from repro.experiments.taxonomy import corruption_taxonomy

ALL_EXPERIMENTS = {
    "E1": validate_ate_row,
    "E2": validate_ute_row,
    "E3": alive_predicate_effect,
    "E4": ulive_predicate_effect,
    "E5": corruption_taxonomy,
    "E6": ate_resilience_sweep,
    "E7": ute_resilience_sweep,
    "E8": santoro_widmayer_circumvention,
    "E9": fast_decision,
    "E10": lamport_attainment,
    "E11": byzantine_predicates,
    "E12": benign_baselines,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentReport",
    "alive_predicate_effect",
    "ate_resilience_sweep",
    "benign_baselines",
    "byzantine_predicates",
    "corruption_taxonomy",
    "fast_decision",
    "lamport_attainment",
    "run_batch",
    "run_batch_results",
    "run_reduced_batch",
    "santoro_widmayer_circumvention",
    "ulive_predicate_effect",
    "ute_resilience_sweep",
    "validate_ate_row",
    "validate_ute_row",
]

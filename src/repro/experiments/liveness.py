"""Experiments E3 and E4: the liveness predicates of Figures 1 and 2.

The paper's liveness conditions are *sporadic*: they do not require the
system to stabilise, only that good rounds (for ``A_{T,E}``) or good
phase windows (for ``U_{T,E,α}``) keep occurring.  These drivers run
each algorithm in two environments that are identical except for the
presence of that good structure, and show that termination is obtained
exactly when the corresponding predicate holds on the generated run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.adversary import (
    PartitionAdversary,
    PeriodicGoodPhaseAdversary,
    PeriodicGoodRoundAdversary,
    RandomCorruptionAdversary,
    SequentialAdversary,
)
from repro.algorithms import AteAlgorithm, UteAlgorithm
from repro.core.parameters import AteParameters, UteParameters
from repro.experiments.common import ExperimentReport, run_reduced_batch
from repro.runner.reduce import PredicateReducer, batch_report_from_reduced
from repro.workloads import generators

if TYPE_CHECKING:
    from repro.runner.executor import CampaignRunner


def _starved_adversary(n: int, threshold: float, seed: int) -> PartitionAdversary:
    """An omission pattern under which no process ever hears of more than T others.

    Splitting ``Pi`` into groups of at most ``floor(T)`` processes keeps
    ``|HO(p, r)| <= T`` forever, so the second conjunct of ``P^{A,live}``
    never holds and ``A_{T,E}`` can never update or decide (from a
    non-unanimous configuration).
    """
    group_size = max(int(threshold), 1)
    groups = [list(range(start, min(start + group_size, n))) for start in range(0, n, group_size)]
    return PartitionAdversary(groups, seed=seed)


def alive_predicate_effect(
    n: int = 9,
    alpha: int = 1,
    runs: int = 15,
    seed: int = 3,
    max_rounds: int = 50,
    good_round_period: int = 4,
    runner: Optional["CampaignRunner"] = None,
) -> ExperimentReport:
    """E3 — Figure 1: termination of ``A_{T,E}`` tracks ``P^{A,live}``."""
    params = AteParameters.symmetric(n=n, alpha=alpha)
    algorithm = lambda index: AteAlgorithm(params)  # noqa: E731 - tiny factory
    predicate = AteAlgorithm(params).liveness_predicate()
    report = ExperimentReport(
        experiment_id="E3",
        title=f"Figure 1 / P^A,live effect on termination, n={n}, alpha={alpha}",
        paper_claim=(
            "A_(T,E) terminates in every run satisfying P_alpha ∧ P^A,live; without the "
            "sporadic good rounds of P^A,live termination is not guaranteed (safety still is)."
        ),
    )

    environments = {
        "good-rounds (P^A,live holds)": lambda index: PeriodicGoodRoundAdversary(
            inner=RandomCorruptionAdversary(alpha=alpha, value_domain=(0, 1), seed=seed + index),
            period=good_round_period,
        ),
        "starved (no good rounds)": lambda index: _starved_adversary(
            n, float(params.threshold), seed + index
        ),
        "late good rounds (transient bad prefix)": lambda index: SequentialAdversary(
            [
                (1, _starved_adversary(n, float(params.threshold), seed + index)),
                (
                    max_rounds // 2,
                    PeriodicGoodRoundAdversary(
                        inner=RandomCorruptionAdversary(
                            alpha=alpha, value_domain=(0, 1), seed=seed + index
                        ),
                        period=good_round_period,
                    ),
                ),
            ]
        ),
    }

    reducer = PredicateReducer({"live": predicate})
    for label, adversary_factory in environments.items():
        batches = [generators.split(n) for _ in range(runs)]
        rows = run_reduced_batch(
            algorithm_factory=algorithm,
            adversary_factory=adversary_factory,
            initial_value_batches=batches,
            reducer=reducer,
            max_rounds=max_rounds,
            runner=runner,
        )
        batch_report = batch_report_from_reduced(rows)
        predicate_held = sum(1 for row in rows if row["predicates"]["live"])
        report.add_row(
            environment=label,
            predicate_held=f"{predicate_held}/{len(rows)}",
            agreement_rate=round(batch_report.agreement_rate, 3),
            integrity_rate=round(batch_report.integrity_rate, 3),
            termination_rate=round(batch_report.termination_rate, 3),
            mean_decision_round=(
                round(batch_report.mean_decision_round, 2)
                if batch_report.mean_decision_round is not None
                else None
            ),
        )
    report.add_note(
        "safety holds in every environment (P_alpha alone suffices); termination appears "
        "exactly in the environments whose runs satisfy P^A,live within the horizon."
    )
    return report


def ulive_predicate_effect(
    n: int = 9,
    alpha: int = 2,
    runs: int = 15,
    seed: int = 4,
    max_rounds: int = 60,
    good_phase_period: int = 3,
    runner: Optional["CampaignRunner"] = None,
) -> ExperimentReport:
    """E4 — Figure 2: termination of ``U_{T,E,α}`` tracks ``P^{U,live}``."""
    params = UteParameters.minimal(n=n, alpha=alpha)
    algorithm = lambda index: UteAlgorithm(params)  # noqa: E731 - tiny factory
    predicate = UteAlgorithm(params).liveness_predicate()
    report = ExperimentReport(
        experiment_id="E4",
        title=f"Figure 2 / P^U,live effect on termination, n={n}, alpha={alpha}",
        paper_claim=(
            "U_(T,E,alpha) terminates in every run satisfying P_alpha ∧ P^U,safe ∧ P^U,live; "
            "without the sporadic clean phase window termination is not guaranteed."
        ),
    )

    def corrupting(index: int) -> RandomCorruptionAdversary:
        # Corruption bounded by alpha; no omissions, so P^U,safe holds because
        # |SHO| >= n - alpha > max(n + 2a - E - 1, T, a) for the minimal thresholds.
        return RandomCorruptionAdversary(alpha=alpha, value_domain=(0, 1), seed=seed * 31 + index)

    group_size = max(int(params.enough), 1)
    starved_groups = [
        list(range(start, min(start + group_size, n))) for start in range(0, n, group_size)
    ]
    environments = {
        "good-phases (P^U,live holds)": lambda index: PeriodicGoodPhaseAdversary(
            inner=corrupting(index), period=good_phase_period
        ),
        "corruption every phase (no clean window)": corrupting,
        "starved (|HO| never exceeds E)": lambda index: PartitionAdversary(
            starved_groups, seed=seed + index
        ),
    }

    reducer = PredicateReducer({"live": predicate})
    for label, adversary_factory in environments.items():
        batches = [generators.split(n) for _ in range(runs)]
        rows = run_reduced_batch(
            algorithm_factory=algorithm,
            adversary_factory=adversary_factory,
            initial_value_batches=batches,
            reducer=reducer,
            max_rounds=max_rounds,
            runner=runner,
        )
        batch_report = batch_report_from_reduced(rows)
        predicate_held = sum(1 for row in rows if row["predicates"]["live"])
        report.add_row(
            environment=label,
            predicate_held=f"{predicate_held}/{len(rows)}",
            agreement_rate=round(batch_report.agreement_rate, 3),
            integrity_rate=round(batch_report.integrity_rate, 3),
            termination_rate=round(batch_report.termination_rate, 3),
            mean_decision_round=(
                round(batch_report.mean_decision_round, 2)
                if batch_report.mean_decision_round is not None
                else None
            ),
        )
    report.add_note(
        "P^U,live is sufficient but not necessary: under per-phase corruption the default-value "
        "mechanism may still drive the system to a decision even though the predicate fails; "
        "in the starved environment (which violates the predicates outright) termination fails "
        "while safety still holds."
    )
    return report

"""Experiment E5: the corruption taxonomy of Figure 3.

Figure 3 classifies how an HO machine can suffer corruption:

* **benign case** — transmissions and transitions both follow the
  functions (only omissions possible);
* **"symmetrical" case** — transitions may deviate (state corruption)
  but transmissions follow the sending function, so a sender cannot send
  two different values in one round (identical-Byzantine behaviour);
* **our case** — transitions follow the functions, transmissions may
  deviate (the paper's transmission value faults);
* **Byzantine case** — both may deviate.

State corruption cannot occur in this model (processes never deviate
from ``T_p^r``), so the two classes involving it are *approximated
through their transmission-level footprint*: symmetrical faults as a
non-equivocating corrupted sender (same corrupted value to everyone),
Byzantine faults as an equivocating permanently corrupted sender.  This
is exactly the observational-equivalence argument of Section 5.2 ("from
the perspective of an outside observer it is indistinguishable whether
such a process has a corrupted state or not").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.adversary import (
    PeriodicGoodRoundAdversary,
    RandomCorruptionAdversary,
    RandomOmissionAdversary,
    StaticByzantineAdversary,
)
from repro.algorithms import AteAlgorithm, UteAlgorithm
from repro.experiments.common import ExperimentReport, run_batch
from repro.workloads import generators

if TYPE_CHECKING:
    from repro.runner.executor import CampaignRunner


def corruption_taxonomy(
    n: int = 9,
    f: int = 2,
    runs: int = 12,
    seed: int = 5,
    max_rounds: int = 60,
    runner: Optional["CampaignRunner"] = None,
) -> ExperimentReport:
    """E5 — run both algorithms against each corruption class of Figure 3."""
    report = ExperimentReport(
        experiment_id="E5",
        title=f"Figure 3 / corruption taxonomy, n={n}, f=alpha={f}",
        paper_claim=(
            "The HO/value-fault model covers the whole spectrum of Figure 3 at the transmission "
            "level: benign omissions, symmetric (identical-Byzantine) corruption, dynamic "
            "transmission value faults, and permanent equivocating (Byzantine) corruption."
        ),
    )

    def environments(index: int):
        base_seed = seed * 101 + index
        return {
            "benign (omissions only)": PeriodicGoodRoundAdversary(
                inner=RandomOmissionAdversary(drop_probability=0.2, seed=base_seed), period=3
            ),
            "symmetric / identical-Byzantine (fixed senders, no equivocation)": StaticByzantineAdversary(
                byzantine=range(f), equivocate=False, value_domain=(0, 1), seed=base_seed
            ),
            "our case (dynamic transmission value faults)": PeriodicGoodRoundAdversary(
                inner=RandomCorruptionAdversary(alpha=f, value_domain=(0, 1), seed=base_seed),
                period=4,
            ),
            "Byzantine (fixed senders, equivocating)": StaticByzantineAdversary(
                byzantine=range(f), equivocate=True, value_domain=(0, 1), seed=base_seed
            ),
        }

    labels = list(environments(0).keys())
    algorithms = {
        "A_(T,E)": lambda: AteAlgorithm.symmetric(n=n, alpha=f),
        "U_(T,E,alpha)": lambda: UteAlgorithm.minimal(n=n, alpha=f),
    }

    for algorithm_name, algorithm_factory in algorithms.items():
        for label_index, label in enumerate(labels):
            batches = generators.batch(n, runs, seed=seed * 13 + label_index)
            batch_report = run_batch(
                algorithm_factory=lambda index: algorithm_factory(),
                adversary_factory=lambda index: environments(index)[label],
                initial_value_batches=batches,
                max_rounds=max_rounds,
                runner=runner,
            )
            report.add_row(
                algorithm=algorithm_name,
                fault_class=label,
                agreement_rate=round(batch_report.agreement_rate, 3),
                integrity_rate=round(batch_report.integrity_rate, 3),
                termination_rate=round(batch_report.termination_rate, 3),
                mean_decision_round=(
                    round(batch_report.mean_decision_round, 2)
                    if batch_report.mean_decision_round is not None
                    else None
                ),
            )
    report.add_note(
        "state corruption is not expressible in this model; the symmetric and Byzantine classes "
        "are represented by their transmission-level footprint per Section 5.2."
    )
    return report

"""Experiments E1 and E2: validating Table 1 (summary of results).

Table 1 states, per algorithm, the communication predicates and
threshold conditions under which the HO machine solves consensus.  The
drivers here validate each row by simulation:

* for parameter choices *inside* the conditions and adversaries that
  respect the predicates, every run must satisfy Integrity, Agreement
  and Termination;
* for the same adversaries but parameter choices *outside* the
  conditions (or adversaries exceeding the predicate), violations do
  appear — showing the conditions are load-bearing rather than
  incidental.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.adversary import (
    MinimumSafeDeliveryAdversary,
    PeriodicGoodPhaseAdversary,
    PeriodicGoodRoundAdversary,
    RandomCorruptionAdversary,
)
from repro.algorithms import AteAlgorithm, UteAlgorithm
from repro.analysis.feasibility import ate_max_alpha, ute_max_alpha
from repro.core.parameters import AteParameters, UteParameters
from repro.core.predicates import AlphaSafePredicate
from repro.experiments.common import ExperimentReport, run_batch
from repro.runner.spec import cell_cache_key
from repro.workloads import generators

if TYPE_CHECKING:
    from repro.runner.executor import CampaignRunner


def _corruption_with_good_rounds(alpha: int, seed: int, period: int = 4):
    """An adversary that respects ``P_alpha`` and provides sporadic perfect rounds."""
    return PeriodicGoodRoundAdversary(
        inner=RandomCorruptionAdversary(alpha=alpha, value_domain=(0, 1), seed=seed),
        period=period,
    )


def validate_ate_row(
    n: int = 9,
    runs: int = 20,
    seed: int = 1,
    max_rounds: int = 60,
    extra_alpha: Optional[int] = None,
    runner: Optional["CampaignRunner"] = None,
) -> ExperimentReport:
    """E1 — the ``A_{T,E}`` row of Table 1.

    For each ``alpha`` from 0 to the feasibility limit (and one value
    beyond it, attacked with the *same* per-round corruption budget) the
    driver runs ``runs`` random initial configurations and reports the
    consensus clause rates.
    """
    report = ExperimentReport(
        experiment_id="E1",
        title=f"Table 1 / A_(T,E) row, n={n}",
        paper_claim=(
            "A_(T,E) solves consensus under P_alpha ∧ P^A,live whenever n > E and "
            "n > T >= 2(n + 2a - E); solutions exist iff alpha < n/4."
        ),
    )
    max_alpha = ate_max_alpha(n)
    beyond = extra_alpha if extra_alpha is not None else max_alpha + 1

    for alpha in list(range(0, max_alpha + 1)) + [beyond]:
        in_range = alpha <= max_alpha
        if in_range:
            params = AteParameters.symmetric(n=n, alpha=alpha)
        else:
            # No valid thresholds exist; use the best infeasible attempt
            # (E as large as allowed, T clamped below n) to show what breaks.
            params = AteParameters(n=n, alpha=alpha, threshold=n - 1, enough=n - 1)
        algorithm_params = params
        batches = generators.batch(n, runs, seed=seed + alpha)
        batch_report = run_batch(
            algorithm_factory=lambda index: AteAlgorithm(algorithm_params),
            adversary_factory=lambda index: _corruption_with_good_rounds(
                alpha=alpha, seed=seed * 1000 + alpha * 100 + index
            ),
            initial_value_batches=batches,
            max_rounds=max_rounds,
            predicate=AlphaSafePredicate(alpha),
            runner=runner,
            cache_key=cell_cache_key(
                experiment="E1",
                n=n,
                alpha=alpha,
                runs=runs,
                seed=seed,
                max_rounds=max_rounds,
                threshold=str(params.threshold),
                enough=str(params.enough),
                adversary="corruption+good-rounds/period=4",
            ),
        )
        report.add_row(
            alpha=alpha,
            threshold=float(params.threshold),
            enough=float(params.enough),
            in_range=in_range,
            theorem_1_satisfied=params.satisfies_theorem_1,
            agreement_rate=round(batch_report.agreement_rate, 3),
            integrity_rate=round(batch_report.integrity_rate, 3),
            termination_rate=round(batch_report.termination_rate, 3),
            mean_decision_round=(
                round(batch_report.mean_decision_round, 2)
                if batch_report.mean_decision_round is not None
                else None
            ),
            counterexamples=batch_report.counterexamples,
        )
    report.add_note(
        "in-range rows must show rate 1.0 everywhere; the beyond-range row has no valid "
        "thresholds and is included to show the conditions are necessary in practice."
    )
    return report


def validate_ute_row(
    n: int = 9,
    runs: int = 20,
    seed: int = 2,
    max_rounds: int = 80,
    extra_alpha: Optional[int] = None,
    runner: Optional["CampaignRunner"] = None,
) -> ExperimentReport:
    """E2 — the ``U_{T,E,alpha}`` row of Table 1.

    The environment combines per-round bounded corruption with the
    ``P^{U,safe}`` minimum safe delivery and sporadic perfect phases
    (``P^{U,live}``), exactly the predicate conjunction of Theorem 2.
    """
    report = ExperimentReport(
        experiment_id="E2",
        title=f"Table 1 / U_(T,E,alpha) row, n={n}",
        paper_claim=(
            "U_(T,E,alpha) solves consensus under P_alpha ∧ P^U,safe ∧ P^U,live whenever "
            "n > E >= n/2 + a and n > T >= n/2 + a; solutions exist iff alpha < n/2."
        ),
    )
    max_alpha = ute_max_alpha(n)
    beyond = extra_alpha if extra_alpha is not None else max_alpha + 1
    alphas = sorted(set([0, max(1, max_alpha // 2), max_alpha, beyond]))

    for alpha in alphas:
        in_range = alpha <= max_alpha
        if in_range:
            params = UteParameters.minimal(n=n, alpha=alpha)
        else:
            params = UteParameters(n=n, alpha=alpha, threshold=n - 1, enough=n - 1)
        algorithm_params = params

        def make_adversary(index: int, alpha=alpha, params=params) -> PeriodicGoodPhaseAdversary:
            inner = RandomCorruptionAdversary(
                alpha=alpha, value_domain=(0, 1), seed=seed * 977 + alpha * 31 + index
            )
            constrained = MinimumSafeDeliveryAdversary.for_strict_bound(
                inner, float(params.u_safe_minimum)
            )
            return PeriodicGoodPhaseAdversary(inner=constrained, period=3)

        batches = generators.batch(n, runs, seed=seed + alpha)
        batch_report = run_batch(
            algorithm_factory=lambda index: UteAlgorithm(algorithm_params),
            adversary_factory=make_adversary,
            initial_value_batches=batches,
            max_rounds=max_rounds,
            predicate=AlphaSafePredicate(alpha),
            runner=runner,
            cache_key=cell_cache_key(
                experiment="E2",
                n=n,
                alpha=alpha,
                runs=runs,
                seed=seed,
                max_rounds=max_rounds,
                threshold=str(params.threshold),
                enough=str(params.enough),
                adversary="corruption+u-safe+good-phases/period=3",
            ),
        )
        report.add_row(
            alpha=alpha,
            threshold=float(params.threshold),
            enough=float(params.enough),
            in_range=in_range,
            theorem_2_satisfied=params.satisfies_theorem_2,
            agreement_rate=round(batch_report.agreement_rate, 3),
            integrity_rate=round(batch_report.integrity_rate, 3),
            termination_rate=round(batch_report.termination_rate, 3),
            mean_decision_round=(
                round(batch_report.mean_decision_round, 2)
                if batch_report.mean_decision_round is not None
                else None
            ),
            counterexamples=batch_report.counterexamples,
        )
    report.add_note(
        "the U row tolerates alpha up to just below n/2 — twice the corruption of the A row — "
        "at the price of the permanent P^U,safe lower bound on safe deliveries."
    )
    return report

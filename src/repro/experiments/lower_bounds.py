"""Experiments E8-E10: circumventing the lower bounds of Section 5.1.

* **E8 — Santoro–Widmayer.**  With ``⌊n/2⌋`` transmission faults per
  round arranged in blocks, agreement is impossible for algorithms that
  must tolerate them permanently.  The paper's algorithms stay *safe*
  under exactly that fault pattern and terminate as soon as the sporadic
  good rounds of their liveness predicates occur; moreover their safety
  absorbs up to ``n²/4`` (A) resp. ``n²/2`` (U) corrupted receptions per
  round — far beyond ``⌊n/2⌋``.
* **E9 — Martin–Alvisi.**  Fast (two-step) Byzantine consensus requires
  ``n ≥ 5f + 1`` with static faults; ``A_{T,E}`` is fast while absorbing
  up to ``(n−1)/4`` corrupted receptions per process per round, because
  the quorums are measured per round rather than over the whole run.
* **E10 — Lamport's bound.**  ``N > 2Q + F + 2M`` is attained by both
  algorithms for the appropriate ``(Q, F, M)`` assignments.
"""

from __future__ import annotations

from fractions import Fraction
from typing import TYPE_CHECKING, Optional

from repro.adversary import (
    BlockFaultAdversary,
    PeriodicGoodRoundAdversary,
    RandomCorruptionAdversary,
    ReliableAdversary,
    RotatingSenderCorruptionAdversary,
    SequentialAdversary,
)
from repro.algorithms import AteAlgorithm, PhaseKingAlgorithm, UteAlgorithm
from repro.analysis.bounds import (
    ate_lamport_attainment,
    corruption_capacity,
    martin_alvisi_max_faulty,
    santoro_widmayer_bound,
    ute_lamport_attainment,
)
from repro.analysis.feasibility import ate_max_alpha, ute_max_alpha
from repro.core.parameters import AteParameters, UteParameters
from repro.experiments.common import ExperimentReport, run_reduced_batch
from repro.runner.reduce import (
    DecisionReducer,
    FaultProfileReducer,
    batch_report_from_reduced,
)
from repro.workloads import generators

if TYPE_CHECKING:
    from repro.runner.executor import CampaignRunner


# ----------------------------------------------------------------------
# E8 — Santoro–Widmayer block faults
# ----------------------------------------------------------------------
def santoro_widmayer_circumvention(
    n: int = 10,
    runs: int = 12,
    seed: int = 9,
    max_rounds: int = 60,
    good_round_period: int = 5,
    runner: Optional["CampaignRunner"] = None,
) -> ExperimentReport:
    """E8 — block faults of [18] versus ``A_{T,E}`` and ``U_{T,E,α}``."""
    faults_per_round = santoro_widmayer_bound(n)
    capacity = corruption_capacity(n)
    report = ExperimentReport(
        experiment_id="E8",
        title=f"Santoro-Widmayer block faults, n={n}, floor(n/2)={faults_per_round} faults/round",
        paper_claim=(
            "floor(n/2) block transmission faults per round make agreement impossible for "
            "permanent-fault algorithms; A and U remain safe under the same pattern, terminate "
            "once sporadic good rounds occur, and absorb up to n^2/4 resp. n^2/2 corrupted "
            "receptions per round for safety."
        ),
    )

    ate_alpha = max(ate_max_alpha(n), 1)
    ute_alpha = max(ute_max_alpha(n), 1)
    configurations = {
        "A_(T,E), blocks only (no good rounds)": (
            lambda: AteAlgorithm.symmetric(n=n, alpha=ate_alpha),
            lambda index: BlockFaultAdversary(
                faults_per_round=faults_per_round, value_domain=(0, 1), seed=seed + index
            ),
        ),
        "A_(T,E), blocks + sporadic good rounds": (
            lambda: AteAlgorithm.symmetric(n=n, alpha=ate_alpha),
            lambda index: PeriodicGoodRoundAdversary(
                inner=BlockFaultAdversary(
                    faults_per_round=faults_per_round, value_domain=(0, 1), seed=seed + index
                ),
                period=good_round_period,
            ),
        ),
        "U_(T,E,alpha), blocks only (no good phases)": (
            lambda: UteAlgorithm.minimal(n=n, alpha=ute_alpha),
            lambda index: BlockFaultAdversary(
                faults_per_round=faults_per_round, value_domain=(0, 1), seed=seed + index
            ),
        ),
        "A_(T,E), heavy rotating corruption (alpha per receiver each round)": (
            lambda: AteAlgorithm.symmetric(n=n, alpha=ate_alpha),
            lambda index: PeriodicGoodRoundAdversary(
                inner=RandomCorruptionAdversary(
                    alpha=ate_alpha, value_domain=(0, 1), seed=seed + index
                ),
                period=good_round_period,
            ),
        ),
    }

    for label, (algorithm_factory, adversary_factory) in configurations.items():
        rows = run_reduced_batch(
            algorithm_factory=lambda index, factory=algorithm_factory: factory(),
            adversary_factory=adversary_factory,
            initial_value_batches=[generators.split(n) for _ in range(runs)],
            reducer=FaultProfileReducer(),
            max_rounds=max_rounds,
            runner=runner,
        )
        batch = batch_report_from_reduced(rows)
        max_corruptions_per_round = max(
            (row["max_corruptions_in_a_round"] for row in rows), default=0
        )
        report.add_row(
            configuration=label,
            agreement_rate=round(batch.agreement_rate, 3),
            integrity_rate=round(batch.integrity_rate, 3),
            termination_rate=round(batch.termination_rate, 3),
            max_corrupted_receptions_in_a_round=max_corruptions_per_round,
            sw_bound_per_round=faults_per_round,
        )
    report.add_note(
        f"safety capacity per round: A ~ n^2/4 = {float(capacity.ate_total_per_round):g}, "
        f"U ~ n^2/2 = {float(capacity.ute_total_per_round):g}, versus the SW impossibility at "
        f"{faults_per_round} faults per round for permanent-fault algorithms."
    )
    return report


# ----------------------------------------------------------------------
# E9 — fast decision versus Martin–Alvisi
# ----------------------------------------------------------------------
def fast_decision(
    n: int = 9,
    runs: int = 10,
    seed: int = 10,
    max_rounds: int = 30,
    runner: Optional["CampaignRunner"] = None,
) -> ExperimentReport:
    """E9 — decision latency of ``A_{T,E}`` versus the static fast-consensus bound."""
    alpha = max(ate_max_alpha(n), 1)
    params = AteParameters.symmetric(n=n, alpha=alpha)
    byz_f = martin_alvisi_max_faulty(n)
    phase_king_f = max(byz_f, 1)
    report = ExperimentReport(
        experiment_id="E9",
        title=f"Fast decision, n={n}: A_(T,E) with alpha={alpha} vs static bounds",
        paper_claim=(
            "A_(T,E) decides in two rounds in fault-free runs (one round when unanimous) while "
            "tolerating up to (n-1)/4 corrupted receptions per process per round — more than the "
            "n/5 static Byzantine processes Martin-Alvisi allow for fast consensus — but needs at "
            "least one clean round to decide."
        ),
    )

    scenarios = {
        "fault-free, unanimous initial values": (
            lambda index: ReliableAdversary(),
            lambda: generators.unanimous(n, value=1),
        ),
        "fault-free, split initial values": (
            lambda index: ReliableAdversary(),
            lambda: generators.split(n),
        ),
        "alpha corruptions/round for 3 rounds, then clean": (
            lambda index: SequentialAdversary(
                [
                    (
                        1,
                        RotatingSenderCorruptionAdversary(
                            alpha=alpha, value_domain=(0, 1), seed=seed + index
                        ),
                    ),
                    (4, ReliableAdversary()),
                ]
            ),
            lambda: generators.split(n),
        ),
    }

    for label, (adversary_factory, workload) in scenarios.items():
        rows = run_reduced_batch(
            algorithm_factory=lambda index: AteAlgorithm(params),
            adversary_factory=adversary_factory,
            initial_value_batches=[workload() for _ in range(runs)],
            reducer=DecisionReducer(),
            max_rounds=max_rounds,
            runner=runner,
        )
        batch = batch_report_from_reduced(rows)
        report.add_row(
            scenario=label,
            algorithm="A_(T,E)",
            termination_rate=round(batch.termination_rate, 3),
            mean_decision_round=(
                round(batch.mean_decision_round, 2)
                if batch.mean_decision_round is not None
                else None
            ),
            max_decision_round=batch.max_decision_round,
        )

    # Baseline: phase-king under the same fault-free conditions always needs
    # 2(f+1) rounds — the price of static-fault quorums.
    phase_king = PhaseKingAlgorithm(n=n, f=phase_king_f)
    pk_rows = run_reduced_batch(
        algorithm_factory=lambda index: PhaseKingAlgorithm(n=n, f=phase_king_f),
        adversary_factory=lambda index: ReliableAdversary(),
        initial_value_batches=[generators.split(n) for _ in range(runs)],
        reducer=DecisionReducer(),
        max_rounds=max_rounds,
        runner=runner,
    )
    pk_batch = batch_report_from_reduced(pk_rows)
    report.add_row(
        scenario="fault-free, split initial values",
        algorithm=f"PhaseKing(f={phase_king_f})",
        termination_rate=round(pk_batch.termination_rate, 3),
        mean_decision_round=(
            round(pk_batch.mean_decision_round, 2)
            if pk_batch.mean_decision_round is not None
            else None
        ),
        max_decision_round=pk_batch.max_decision_round,
    )
    report.add_note(
        f"Martin-Alvisi static bound at n={n}: at most f={byz_f} Byzantine processes for fast "
        f"consensus; A_(T,E) is fast while tolerating alpha={alpha} corrupted receptions per "
        f"process per round (dynamic, transient); phase-king needs {phase_king.rounds_to_decide} "
        "rounds regardless."
    )
    return report


# ----------------------------------------------------------------------
# E10 — Lamport's N > 2Q + F + 2M
# ----------------------------------------------------------------------
def lamport_attainment(
    ns=(5, 9, 13, 17, 21),
    runs: int = 6,
    seed: int = 11,
    max_rounds: int = 40,
    runner: Optional["CampaignRunner"] = None,
) -> ExperimentReport:
    """E10 — attainment of ``N > 2Q + F + 2M`` by both algorithms.

    For each ``n`` the analytic attainment is reported; the extreme
    safe-only configuration of ``U`` (integer ``alpha = ⌊(n−1)/2⌋``) and
    the safe-and-fast configuration of ``A`` (integer ``alpha = ⌊(n−1)/4⌋``)
    are additionally validated by simulation under a corruption adversary
    using that exact budget (safety must hold; termination is not owed in
    the safe-only configuration).
    """
    report = ExperimentReport(
        experiment_id="E10",
        title="Lamport bound N > 2Q + F + 2M attainment",
        paper_claim=(
            "with dynamic per-round faults, U attains the bound with M=(n-1)/2 (safe only) and A "
            "attains it with M=Q=(n-1)/4 (safe and fast); F=0 because liveness needs the stronger "
            "sporadic conditions."
        ),
    )
    for n in ns:
        ate = ate_lamport_attainment(n)
        ute = ute_lamport_attainment(n)

        # Simulation check of the safe-only U configuration.  The adversary
        # respects the full safety predicate P_alpha ∧ P^U,safe: corruption is
        # bounded by alpha per receiver and enough messages are restored that
        # |SHO| stays above the P^U,safe minimum (at the extreme alpha that
        # minimum leaves very little per-round corruption room — which is the
        # price the bound attributes to M = (n-1)/2).
        u_alpha = int(Fraction(n - 1, 2))
        u_params = UteParameters.minimal(n=n, alpha=u_alpha)

        def u_adversary(index: int, u_alpha=u_alpha, u_params=u_params):
            from repro.adversary import MinimumSafeDeliveryAdversary

            inner = RandomCorruptionAdversary(
                alpha=u_alpha, value_domain=(0, 1), seed=seed + index
            )
            return MinimumSafeDeliveryAdversary.for_strict_bound(
                inner, float(u_params.u_safe_minimum)
            )

        u_rows = run_reduced_batch(
            algorithm_factory=lambda index, p=u_params: UteAlgorithm(p),
            adversary_factory=u_adversary,
            initial_value_batches=[generators.split(n) for _ in range(runs)],
            reducer=DecisionReducer(),
            max_rounds=max_rounds,
            runner=runner,
        )
        u_batch = batch_report_from_reduced(u_rows)

        # Simulation check of the safe-and-fast A configuration.
        a_alpha = int(Fraction(n - 1, 4))
        a_params = AteParameters.symmetric(n=n, alpha=a_alpha)
        a_rows = run_reduced_batch(
            algorithm_factory=lambda index, p=a_params: AteAlgorithm(p),
            adversary_factory=lambda index: PeriodicGoodRoundAdversary(
                inner=RandomCorruptionAdversary(
                    alpha=a_alpha, value_domain=(0, 1), seed=seed + index
                ),
                period=3,
            ),
            initial_value_batches=[generators.split(n) for _ in range(runs)],
            reducer=DecisionReducer(),
            max_rounds=max_rounds,
            runner=runner,
        )
        a_batch = batch_report_from_reduced(a_rows)

        report.add_row(
            n=n,
            ate_M=str(ate.m),
            ate_Q=str(ate.q),
            ate_bound_satisfied=ate.bound_satisfied,
            ate_tight=ate.tight,
            ate_safety_rate_sim=round(min(a_batch.agreement_rate, a_batch.integrity_rate), 3),
            ute_M=str(ute.m),
            ute_bound_satisfied=ute.bound_satisfied,
            ute_tight=ute.tight,
            ute_safety_rate_sim=round(min(u_batch.agreement_rate, u_batch.integrity_rate), 3),
        )
    report.add_note(
        "F = 0 for both algorithms: they do not tolerate classical (permanent) Byzantine faults "
        "for termination, only for safety — which is exactly the trade-off Lamport's bound prices."
    )
    return report

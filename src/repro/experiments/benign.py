"""Experiment E12: benign baselines and the alpha = 0 degeneration.

The paper's algorithms are parametrisations of the benign-case
OneThirdRule and UniformVoting algorithms; at ``alpha = 0`` they must
behave exactly like their ancestors.  This driver

* checks the literal equivalence ``A_{2n/3, 2n/3} ≡ OneThirdRule`` by
  running both on identical workloads and fault schedules and comparing
  decisions and decision rounds, and
* sweeps benign omission rates to show the baseline behaviour the paper
  departs from (safety under any loss, termination under sporadic good
  rounds).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.adversary import PeriodicGoodRoundAdversary, RandomOmissionAdversary
from repro.algorithms import (
    AteAlgorithm,
    OneThirdRuleAlgorithm,
    UniformVotingAlgorithm,
    UteAlgorithm,
)
from repro.core.parameters import AteParameters
from repro.experiments.common import ExperimentReport, run_reduced_batch
from repro.runner.reduce import DecisionReducer, batch_report_from_reduced
from repro.workloads import generators

if TYPE_CHECKING:
    from repro.runner.executor import CampaignRunner


def benign_baselines(
    n: int = 9,
    runs: int = 12,
    seed: int = 13,
    max_rounds: int = 60,
    drop_probabilities=(0.0, 0.1, 0.3),
    runner: Optional["CampaignRunner"] = None,
) -> ExperimentReport:
    """E12 — benign-omission sweep for the baselines and the alpha = 0 instances."""
    report = ExperimentReport(
        experiment_id="E12",
        title=f"Benign baselines (alpha = 0), n={n}",
        paper_claim=(
            "at alpha = 0, A_(2n/3,2n/3) coincides with OneThirdRule; both are safe under any "
            "number of omissions and decide fast once good rounds occur."
        ),
    )

    # -- literal equivalence check -------------------------------------------------
    equivalence_mismatches = 0
    for index in range(runs):
        workload = generators.uniform_random(n, seed=seed + index)
        adversary_a = PeriodicGoodRoundAdversary(
            inner=RandomOmissionAdversary(drop_probability=0.2, seed=seed * 31 + index), period=3
        )
        adversary_b = PeriodicGoodRoundAdversary(
            inner=RandomOmissionAdversary(drop_probability=0.2, seed=seed * 31 + index), period=3
        )
        ate = run_reduced_batch(
            algorithm_factory=lambda i: AteAlgorithm(AteParameters.symmetric(n=n, alpha=0)),
            adversary_factory=lambda i, adv=adversary_a: adv,
            initial_value_batches=[workload],
            reducer=DecisionReducer(),
            max_rounds=max_rounds,
            runner=runner,
        )[0]
        otr = run_reduced_batch(
            algorithm_factory=lambda i: OneThirdRuleAlgorithm(n),
            adversary_factory=lambda i, adv=adversary_b: adv,
            initial_value_batches=[workload],
            reducer=DecisionReducer(),
            max_rounds=max_rounds,
            runner=runner,
        )[0]
        same_values = ate["decision_values"] == otr["decision_values"]
        same_rounds = ate["decision_rounds"] == otr["decision_rounds"]
        if not (same_values and same_rounds):
            equivalence_mismatches += 1
    report.add_row(
        check="A_(2n/3,2n/3) == OneThirdRule (decisions and decision rounds)",
        runs=runs,
        mismatches=equivalence_mismatches,
    )

    # -- omission sweep --------------------------------------------------------------
    algorithms = {
        "OneThirdRule": lambda: OneThirdRuleAlgorithm(n),
        "A_(T,E) alpha=0": lambda: AteAlgorithm(AteParameters.symmetric(n=n, alpha=0)),
        "UniformVoting": lambda: UniformVotingAlgorithm(n),
        "U_(T,E,alpha) alpha=0": lambda: UteAlgorithm.minimal(n=n, alpha=0),
    }
    for drop_probability in drop_probabilities:
        for label, algorithm_factory in algorithms.items():
            rows = run_reduced_batch(
                algorithm_factory=lambda index, factory=algorithm_factory: factory(),
                adversary_factory=lambda index, p=drop_probability: PeriodicGoodRoundAdversary(
                    inner=RandomOmissionAdversary(drop_probability=p, seed=seed * 97 + index),
                    period=4,
                ),
                initial_value_batches=generators.batch(n, runs, seed=seed),
                reducer=DecisionReducer(),
                max_rounds=max_rounds,
                runner=runner,
            )
            batch = batch_report_from_reduced(rows)
            report.add_row(
                check="omission sweep",
                algorithm=label,
                drop_probability=drop_probability,
                agreement_rate=round(batch.agreement_rate, 3),
                integrity_rate=round(batch.integrity_rate, 3),
                termination_rate=round(batch.termination_rate, 3),
                mean_decision_round=(
                    round(batch.mean_decision_round, 2)
                    if batch.mean_decision_round is not None
                    else None
                ),
            )
    report.add_note(
        "the equivalence check reuses identical workloads and identically seeded fault schedules "
        "for both algorithms, so any behavioural difference would show up as a mismatch."
    )
    return report

"""Shared behaviour of the repository's registries.

The repository has four extension seams that map names (or classes) to
pluggable implementations: engine backends
(:func:`repro.simulation.backends.register_backend`), native mask
planners (:func:`repro.adversary.plan.register_planner`), algorithm
step kernels (:func:`repro.algorithms.kernels.register_kernel`) and
static-analysis rules (:func:`repro.devtools.lint.register_rule`).  All
four share the same contract, implemented here:

* registration functions are usable directly *and* as decorators;
* overwriting a **built-in** entry raises unless ``overwrite=True`` is
  passed explicitly (silently shadowing ``fast``, the ``A_{T,E}``
  kernel or lint rule ``D201`` would change semantics for every caller
  in the process);
* lookups of unknown entries raise with a did-you-mean suggestion.
"""

from __future__ import annotations

import difflib
from typing import Iterable


def did_you_mean(name: str, candidates: Iterable[str]) -> str:
    """A ``" (did you mean 'x'?)"`` hint, or ``""`` when nothing is close."""
    suggestion = difflib.get_close_matches(name, list(candidates), n=1)
    return f" (did you mean {suggestion[0]!r}?)" if suggestion else ""


def guard_builtin_overwrite(
    kind: str, key_label: str, is_builtin: bool, overwrite: bool
) -> None:
    """Refuse to silently replace a built-in registry entry.

    ``kind`` names the registry ("engine backend", "mask planner",
    "step kernel"); ``key_label`` is the human-readable key being
    registered.  Custom entries may always be replaced — only the
    built-ins that ship with the package are protected, because
    replacing one changes behaviour for every existing caller.
    """
    if is_builtin and not overwrite:
        raise ValueError(
            f"refusing to overwrite the built-in {kind} {key_label}; "
            f"pass overwrite=True to replace it deliberately"
        )


def unknown_key_error(kind: str, name: str, candidates: Iterable[str]) -> ValueError:
    """The lookup error shared by all three registries."""
    names = sorted(candidates)
    return ValueError(
        f"unknown {kind} {name!r}{did_you_mean(name, names)}; "
        f"available: {', '.join(names)}"
    )

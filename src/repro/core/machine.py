"""HO machines: the pairing ``⟨A, P⟩`` of an algorithm and a predicate.

An HO machine *solves consensus* if every run whose heard-of collections
satisfy the communication predicate ``P`` satisfies Integrity, Agreement
and Termination (Section 2.3).  In this reproduction, an
:class:`HOMachine` bundles the algorithm with the predicate so that the
simulation engine can (a) record the heard-of collection of the run it
produces, (b) report whether the predicate actually held for that run,
and (c) evaluate the consensus clauses — which is exactly the shape of
the paper's correctness statements ("any run for which P holds satisfies
...").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.algorithm import HOAlgorithm
from repro.core.consensus import ConsensusOutcome
from repro.core.heardof import HeardOfCollection
from repro.core.predicates import CommunicationPredicate, TruePredicate


@dataclass
class MachineVerdict:
    """The result of checking one run of an HO machine.

    ``predicate_held`` tells whether the run's communication satisfied
    ``P``; ``outcome`` is the consensus verdict.  The machine's
    correctness claim is only about runs where ``predicate_held`` is
    True — a violated specification in a run where the predicate did
    *not* hold is not a counterexample to the paper's theorems (though
    it may still be interesting, e.g. when demonstrating which
    assumption is load-bearing).
    """

    predicate_held: bool
    outcome: ConsensusOutcome
    predicate_violations: tuple

    @property
    def counterexample(self) -> bool:
        """True iff this run refutes the machine's correctness claim."""
        return self.predicate_held and not self.outcome.all_satisfied

    @property
    def safety_counterexample(self) -> bool:
        """True iff safety (Agreement or Integrity) failed despite the predicate."""
        return self.predicate_held and not self.outcome.safe


class HOMachine:
    """The pair ``⟨A, P⟩`` of Section 2.2."""

    def __init__(
        self,
        algorithm: HOAlgorithm,
        predicate: Optional[CommunicationPredicate] = None,
        name: Optional[str] = None,
    ) -> None:
        self.algorithm = algorithm
        self.predicate = predicate if predicate is not None else TruePredicate()
        self.name = name or f"⟨{algorithm.name}, {self.predicate.name}⟩"

    def check(
        self, collection: HeardOfCollection, outcome: ConsensusOutcome
    ) -> MachineVerdict:
        """Evaluate this machine's correctness claim against one finished run."""
        violations = tuple(self.predicate.violations(collection))
        return MachineVerdict(
            predicate_held=not violations,
            outcome=outcome,
            predicate_violations=violations,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<HOMachine {self.name}>"

"""Communication predicates (Section 2.2, Figures 1 and 2, Section 5.2).

A communication predicate is a predicate over the collections
``(HO(p, r))`` and ``(SHO(p, r))``.  Predicates over the SHO collection
capture communication *safety* (how much corruption there is), while
predicates over the HO collection alone capture communication
*liveness* (how much loss there is).

The paper's predicates implemented here:

``P_alpha``
    ``∀r>0, ∀p: |AHO(p, r)| <= alpha`` — at most ``alpha`` corrupted
    receptions per process per round (:class:`AlphaSafePredicate`).
``P^perm_alpha``
    ``|AS| <= alpha`` — at most ``alpha`` processes ever emit a corrupted
    message, the classical permanent-fault assumption
    (:class:`PermanentAlphaPredicate`).
``P_benign``
    ``SHO(p, r) = HO(p, r)`` everywhere — the benign case of
    Charron-Bost/Schiper (:class:`BenignPredicate`).
``P^{A,live}``
    Figure 1 — the liveness predicate of ``A_{T,E}``
    (:class:`ALivePredicate`).
``P^{U,safe}``
    Equation (7) — the per-round safe-heard-of cardinality bound of
    ``U_{T,E,alpha}`` (:class:`USafePredicate`).
``P^{U,live}``
    Figure 2 — the phase-structured liveness predicate of
    ``U_{T,E,alpha}`` (:class:`ULivePredicate`).
``|SK| >= n - f`` and ``|HO| >= n-f ∧ |AS| <= f``
    Section 5.2's encodings of classical synchronous/asynchronous
    Byzantine assumptions (:class:`ByzantineSynchronousPredicate`,
    :class:`ByzantineAsynchronousPredicate`).

Predicates are evaluated over finite run prefixes
(:class:`repro.core.heardof.HeardOfCollection`).  "Eventually"-style
clauses are interpreted as "within the recorded horizon"; this is the
standard finite-trace reading and is what simulations can observe.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from fractions import Fraction
from typing import FrozenSet, List, Optional, Sequence, Union

from repro.core.heardof import HeardOfCollection, RoundRecord

Number = Union[int, float, Fraction]


class CommunicationPredicate(ABC):
    """Base class of all communication predicates.

    Subclasses implement :meth:`holds`, and may refine
    :meth:`violations` to report *why* a collection fails the predicate
    (used extensively by tests and the experiment reports).
    """

    #: Human-readable name used in reports.
    name: str = "P"

    @abstractmethod
    def holds(self, collection: HeardOfCollection) -> bool:
        """Return True iff the predicate holds on the recorded prefix."""

    def violations(self, collection: HeardOfCollection) -> List[str]:
        """Return human-readable descriptions of violations (empty if none)."""
        return [] if self.holds(collection) else [f"{self.name} does not hold"]

    def check_round(self, record: RoundRecord) -> Optional[bool]:
        """Per-round check for permanent predicates.

        Returns ``True``/``False`` for predicates that constrain every
        round independently, and ``None`` for predicates with temporal
        structure that cannot be judged from a single round.
        """
        return None

    # -- combinators -----------------------------------------------------------
    def __and__(self, other: "CommunicationPredicate") -> "AndPredicate":
        return AndPredicate([self, other])

    def __or__(self, other: "CommunicationPredicate") -> "OrPredicate":
        return OrPredicate([self, other])

    def describe(self) -> str:
        """A one-line description for experiment reports."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.describe()}>"


# ----------------------------------------------------------------------
# Combinators
# ----------------------------------------------------------------------
class AndPredicate(CommunicationPredicate):
    """Conjunction of predicates (e.g. ``P_alpha ∧ P^{A,live}``)."""

    def __init__(self, parts: Sequence[CommunicationPredicate]) -> None:
        if not parts:
            raise ValueError("AndPredicate requires at least one part")
        flattened: List[CommunicationPredicate] = []
        for part in parts:
            if isinstance(part, AndPredicate):
                flattened.extend(part.parts)
            else:
                flattened.append(part)
        self.parts: List[CommunicationPredicate] = flattened
        self.name = " ∧ ".join(p.name for p in self.parts)

    def holds(self, collection: HeardOfCollection) -> bool:
        return all(part.holds(collection) for part in self.parts)

    def violations(self, collection: HeardOfCollection) -> List[str]:
        result: List[str] = []
        for part in self.parts:
            result.extend(part.violations(collection))
        return result

    def check_round(self, record: RoundRecord) -> Optional[bool]:
        results = [part.check_round(record) for part in self.parts]
        per_round = [r for r in results if r is not None]
        if not per_round:
            return None
        return all(per_round)


class OrPredicate(CommunicationPredicate):
    """Disjunction of predicates."""

    def __init__(self, parts: Sequence[CommunicationPredicate]) -> None:
        if not parts:
            raise ValueError("OrPredicate requires at least one part")
        self.parts = list(parts)
        self.name = " ∨ ".join(p.name for p in self.parts)

    def holds(self, collection: HeardOfCollection) -> bool:
        return any(part.holds(collection) for part in self.parts)

    def violations(self, collection: HeardOfCollection) -> List[str]:
        if self.holds(collection):
            return []
        return [f"none of the disjuncts of {self.name} holds"]


class TruePredicate(CommunicationPredicate):
    """The trivially true predicate (no communication assumptions)."""

    name = "true"

    def holds(self, collection: HeardOfCollection) -> bool:
        return True

    def check_round(self, record: RoundRecord) -> Optional[bool]:
        return True


# ----------------------------------------------------------------------
# Safety predicates
# ----------------------------------------------------------------------
class AlphaSafePredicate(CommunicationPredicate):
    """``P_alpha :: ∀r>0, ∀p ∈ Π: |AHO(p, r)| <= alpha``  (equation (2)).

    Bounds the number of *corrupted* receptions per process and per
    round; it says nothing about omissions, so arbitrarily many messages
    may be lost while ``P_alpha`` still holds.
    """

    def __init__(self, alpha: Number) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = alpha
        self.name = f"P_alpha(alpha={alpha})"

    def holds(self, collection: HeardOfCollection) -> bool:
        return collection.max_aho() <= self.alpha

    def violations(self, collection: HeardOfCollection) -> List[str]:
        result = []
        for record in collection:
            for pid, rv in record.receptions.items():
                aho = rv.altered_heard_of
                if len(aho) > self.alpha:
                    result.append(
                        f"round {record.round_num}: |AHO({pid})| = {len(aho)} > {self.alpha}"
                    )
        return result

    def check_round(self, record: RoundRecord) -> Optional[bool]:
        return record.max_aho() <= self.alpha


class PermanentAlphaPredicate(CommunicationPredicate):
    """``P^perm_alpha :: |AS| <= alpha``  (equation (1)).

    The classical assumption that at most ``alpha`` processes ever send
    corrupted information during the whole computation.  The paper notes
    ``P^perm_alpha`` implies ``P_alpha``.
    """

    def __init__(self, alpha: Number) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = alpha
        self.name = f"P^perm_alpha(alpha={alpha})"

    def holds(self, collection: HeardOfCollection) -> bool:
        return len(collection.global_altered_span()) <= self.alpha

    def violations(self, collection: HeardOfCollection) -> List[str]:
        span = collection.global_altered_span()
        if len(span) <= self.alpha:
            return []
        return [f"|AS| = {len(span)} > {self.alpha} (AS = {sorted(span)})"]


class BenignPredicate(CommunicationPredicate):
    """``P_benign :: ∀p, ∀r: SHO(p, r) = HO(p, r)`` — no corruption at all."""

    name = "P_benign"

    def holds(self, collection: HeardOfCollection) -> bool:
        return collection.is_benign()

    def violations(self, collection: HeardOfCollection) -> List[str]:
        result = []
        for record in collection:
            for pid, rv in record.receptions.items():
                if rv.altered_heard_of:
                    result.append(
                        f"round {record.round_num}: process {pid} received corrupted "
                        f"messages from {sorted(rv.altered_heard_of)}"
                    )
        return result

    def check_round(self, record: RoundRecord) -> Optional[bool]:
        return record.max_aho() == 0


# ----------------------------------------------------------------------
# Liveness / mixed predicates of the two algorithms
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GoodRoundWitness:
    """A witness for the space-structure clause of ``P^{A,live}``.

    ``pi1`` is the set of processes that commonly and safely hear of the
    same set ``pi2``; the round is the one at which this happened.
    """

    round_num: int
    pi1: FrozenSet[int]
    pi2: FrozenSet[int]


class ALivePredicate(CommunicationPredicate):
    """``P^{A,live}`` — Figure 1, the liveness predicate of ``A_{T,E}``.

    Three conjuncts (interpreted on the recorded finite prefix):

    1. *Uniformisation rounds*: for every round there is a later round
       ``r`` and sets ``Π¹_r``, ``Π²_r`` with ``|Π¹_r| > E − α``,
       ``|Π²_r| > T`` such that every ``p ∈ Π¹_r`` has
       ``HO(p, r) = SHO(p, r) = Π²_r``.
    2. Every process infinitely often hears of more than ``T`` processes.
    3. Every process infinitely often *safely* hears of more than ``E``
       processes.

    On a finite prefix the checks become: at least one uniformisation
    round exists, and after the *first* such round every process has at
    least one round with ``|HO| > T`` and one with ``|SHO| > E``.
    :meth:`good_rounds` exposes all uniformisation-round witnesses so
    experiments can report where they fall.
    """

    def __init__(self, n: int, alpha: Number, threshold: Number, enough: Number) -> None:
        self.n = n
        self.alpha = alpha
        self.threshold = threshold
        self.enough = enough
        self.name = f"P^A,live(T={threshold}, E={enough}, alpha={alpha})"

    # -- clause 1 ---------------------------------------------------------------
    def good_round_witness(self, record: RoundRecord) -> Optional[GoodRoundWitness]:
        """Return a witness if ``record`` is a uniformisation round, else None.

        A candidate ``Π²`` must be the common value of ``HO(p, r)`` and
        ``SHO(p, r)`` for every member of ``Π¹``; we group processes by
        their (HO = SHO) set and look for a group that is large enough
        and whose common set is large enough.
        """
        groups: dict = {}
        for pid, rv in record.receptions.items():
            ho = rv.heard_of
            if ho != rv.safe_heard_of:
                continue
            groups.setdefault(ho, set()).add(pid)
        for pi2, pi1 in groups.items():
            if len(pi1) > self.enough - self.alpha and len(pi2) > self.threshold:
                return GoodRoundWitness(
                    round_num=record.round_num,
                    pi1=frozenset(pi1),
                    pi2=frozenset(pi2),
                )
        return None

    def good_rounds(self, collection: HeardOfCollection) -> List[GoodRoundWitness]:
        """All uniformisation-round witnesses in the prefix."""
        witnesses = []
        for record in collection:
            witness = self.good_round_witness(record)
            if witness is not None:
                witnesses.append(witness)
        return witnesses

    # -- full predicate ---------------------------------------------------------
    def holds(self, collection: HeardOfCollection) -> bool:
        return not self.violations(collection)

    def violations(self, collection: HeardOfCollection) -> List[str]:
        result: List[str] = []
        witnesses = self.good_rounds(collection)
        if not witnesses:
            result.append(
                "no uniformisation round: no round r with Π¹, Π² such that "
                f"|Π¹| > E−α = {self.enough}-{self.alpha} and |Π²| > T = {self.threshold} "
                "and HO = SHO = Π² for all of Π¹"
            )
            return result
        first_good = witnesses[0].round_num
        for pid in range(collection.n):
            has_ho = any(
                len(record.ho(pid)) > self.threshold
                for record in collection
                if record.round_num > first_good
            )
            if not has_ho:
                result.append(
                    f"process {pid} never hears of more than T = {self.threshold} "
                    f"processes after round {first_good}"
                )
            has_sho = any(
                len(record.sho(pid)) > self.enough
                for record in collection
                if record.round_num > first_good
            )
            if not has_sho:
                result.append(
                    f"process {pid} never safely hears of more than E = {self.enough} "
                    f"processes after round {first_good}"
                )
        return result


class USafePredicate(CommunicationPredicate):
    """``P^{U,safe}`` — equation (7).

    ``∀p ∈ Π, ∀r > 0: |SHO(p, r)| > max(n + 2α − E − 1, T, α)``.

    The paper points out that this predicate mixes safety and liveness:
    it is a *permanent* lower bound on how many messages must arrive
    uncorrupted at every process in every round.
    """

    def __init__(self, n: int, alpha: Number, threshold: Number, enough: Number) -> None:
        self.n = n
        self.alpha = alpha
        self.threshold = threshold
        self.enough = enough
        self.minimum = max(n + 2 * alpha - enough - 1, threshold, alpha)
        self.name = f"P^U,safe(min |SHO| > {self.minimum})"

    def holds(self, collection: HeardOfCollection) -> bool:
        return all(
            len(rv.safe_heard_of) > self.minimum
            for record in collection
            for rv in record.receptions.values()
        )

    def violations(self, collection: HeardOfCollection) -> List[str]:
        result = []
        for record in collection:
            for pid, rv in record.receptions.items():
                if len(rv.safe_heard_of) <= self.minimum:
                    result.append(
                        f"round {record.round_num}: |SHO({pid})| = "
                        f"{len(rv.safe_heard_of)} <= {self.minimum}"
                    )
        return result

    def check_round(self, record: RoundRecord) -> Optional[bool]:
        return all(
            len(rv.safe_heard_of) > self.minimum for rv in record.receptions.values()
        )


@dataclass(frozen=True)
class GoodPhaseWitness:
    """A witness for ``P^{U,live}``: the phase ``phi0`` whose three rounds are good."""

    phase: int
    pi0: FrozenSet[int]


class ULivePredicate(CommunicationPredicate):
    """``P^{U,live}`` — Figure 2, the liveness predicate of ``U_{T,E,α}``.

    For every phase there is a later phase ``φ0`` and a set ``Π0`` such
    that for all processes ``p``:

    * ``HO(p, 2φ0) = SHO(p, 2φ0) = Π0``  (a corruption-free second round
      of phase ``φ0`` in which everyone hears of exactly the same set),
    * ``|SHO(p, 2φ0 + 1)| > T``  (the first round of the next phase is
      safely live enough for everyone to cast a true vote), and
    * ``|SHO(p, 2φ0 + 2)| > max(E, α)``  (the second round of the next
      phase delivers enough uncorrupted votes for everyone to decide).

    Rounds are numbered from 1; phase ``φ`` consists of rounds ``2φ−1``
    and ``2φ``.
    """

    def __init__(self, n: int, alpha: Number, threshold: Number, enough: Number) -> None:
        self.n = n
        self.alpha = alpha
        self.threshold = threshold
        self.enough = enough
        self.name = f"P^U,live(T={threshold}, E={enough}, alpha={alpha})"

    def good_phase_witness(
        self, collection: HeardOfCollection, phase: int
    ) -> Optional[GoodPhaseWitness]:
        """Check whether ``phase`` satisfies the body of the predicate."""
        round_2phi = 2 * phase
        if round_2phi + 2 > collection.num_rounds or round_2phi < 1:
            return None
        record = collection[round_2phi]
        pi0: Optional[FrozenSet[int]] = None
        for pid in range(collection.n):
            rv = record.receptions[pid]
            if rv.heard_of != rv.safe_heard_of:
                return None
            if pi0 is None:
                pi0 = rv.heard_of
            elif rv.heard_of != pi0:
                return None
        if pi0 is None:
            return None
        next_first = collection[round_2phi + 1]
        next_second = collection[round_2phi + 2]
        for pid in range(collection.n):
            if len(next_first.sho(pid)) <= self.threshold:
                return None
            if len(next_second.sho(pid)) <= max(self.enough, self.alpha):
                return None
        return GoodPhaseWitness(phase=phase, pi0=pi0)

    def good_phases(self, collection: HeardOfCollection) -> List[GoodPhaseWitness]:
        witnesses = []
        max_phase = collection.num_rounds // 2
        for phase in range(1, max_phase + 1):
            witness = self.good_phase_witness(collection, phase)
            if witness is not None:
                witnesses.append(witness)
        return witnesses

    def holds(self, collection: HeardOfCollection) -> bool:
        return bool(self.good_phases(collection))

    def violations(self, collection: HeardOfCollection) -> List[str]:
        if self.holds(collection):
            return []
        return [
            "no good phase: no phase φ0 with a common, corruption-free round 2φ0 "
            f"followed by |SHO| > T = {self.threshold} and "
            f"|SHO| > max(E, α) = {max(self.enough, self.alpha)} rounds"
        ]


# ----------------------------------------------------------------------
# Section 5.2: classical Byzantine assumptions as predicates
# ----------------------------------------------------------------------
class ByzantineSynchronousPredicate(CommunicationPredicate):
    """``|SK| >= n − f``: synchronous system, reliable links, ≤ f Byzantine processes.

    At least ``n − f`` processes are *safely heard by everyone in every
    round*, i.e. behave (from the transmission point of view) like
    correct processes of the classical model.
    """

    def __init__(self, n: int, f: int) -> None:
        if f < 0 or f > n:
            raise ValueError(f"f must be in [0, n], got {f}")
        self.n = n
        self.f = f
        self.name = f"|SK| >= n - f (n={n}, f={f})"

    def holds(self, collection: HeardOfCollection) -> bool:
        return len(collection.global_safe_kernel()) >= self.n - self.f

    def violations(self, collection: HeardOfCollection) -> List[str]:
        sk = collection.global_safe_kernel()
        if len(sk) >= self.n - self.f:
            return []
        return [f"|SK| = {len(sk)} < n - f = {self.n - self.f}"]


class ByzantineAsynchronousPredicate(CommunicationPredicate):
    """``∀p, r: |HO(p, r)| >= n − f  ∧  |AS| <= f``.

    Section 5.2's predicate for an asynchronous system with reliable
    links and at most ``f`` Byzantine processes.
    """

    def __init__(self, n: int, f: int) -> None:
        if f < 0 or f > n:
            raise ValueError(f"f must be in [0, n], got {f}")
        self.n = n
        self.f = f
        self.name = f"|HO| >= n-f ∧ |AS| <= f (n={n}, f={f})"

    def holds(self, collection: HeardOfCollection) -> bool:
        ho_ok = all(
            len(rv.heard_of) >= self.n - self.f
            for record in collection
            for rv in record.receptions.values()
        )
        return ho_ok and len(collection.global_altered_span()) <= self.f

    def violations(self, collection: HeardOfCollection) -> List[str]:
        result = []
        for record in collection:
            for pid, rv in record.receptions.items():
                if len(rv.heard_of) < self.n - self.f:
                    result.append(
                        f"round {record.round_num}: |HO({pid})| = {len(rv.heard_of)} "
                        f"< n - f = {self.n - self.f}"
                    )
        span = collection.global_altered_span()
        if len(span) > self.f:
            result.append(f"|AS| = {len(span)} > f = {self.f}")
        return result

"""Algorithm abstraction: a family of processes indexed by ``Pi``.

The paper calls "the collection of processes" an *algorithm on Pi*.
Concretely, an :class:`HOAlgorithm` is a factory that, given the number
of processes and each process's initial value, instantiates the
per-process objects (subclasses of :class:`repro.core.process.HOProcess`)
that implement the sending and transition functions.

Concrete algorithms live in :mod:`repro.algorithms`; this module only
holds the abstraction so that the core model, the simulation engines and
the verification layer do not depend on any particular algorithm.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Mapping

from repro.core.process import HOProcess, ProcessId, Value


class HOAlgorithm(ABC):
    """A factory for the ``n`` processes of one algorithm instance.

    Subclasses define :meth:`create_process` and may advertise the
    communication predicates under which the paper proves them safe and
    live (used by experiment drivers to pair algorithms with matching
    adversaries automatically).
    """

    #: Human readable algorithm name used in reports and benchmarks.
    name: str = "HOAlgorithm"

    #: Number of rounds per phase (1 for single-round algorithms such as
    #: ``A_{T,E}``/OneThirdRule, 2 for ``U_{T,E,alpha}``/UniformVoting).
    rounds_per_phase: int = 1

    @abstractmethod
    def create_process(self, pid: ProcessId, n: int, initial_value: Value) -> HOProcess:
        """Instantiate the process object for ``pid``."""

    def create_all(self, initial_values: Mapping[ProcessId, Value]) -> Dict[ProcessId, HOProcess]:
        """Instantiate every process of ``Pi`` from its initial value.

        ``initial_values`` must be keyed exactly by ``0 .. n-1``.
        """
        n = len(initial_values)
        expected = set(range(n))
        if set(initial_values) != expected:
            raise ValueError(
                f"initial_values must be keyed by 0..{n - 1}, got {sorted(initial_values)}"
            )
        return {
            pid: self.create_process(pid, n, initial_values[pid]) for pid in range(n)
        }

    # -- optional metadata ------------------------------------------------------
    def safety_predicate(self, n: int):  # pragma: no cover - overridden by subclasses
        """The communication predicate under which the algorithm is proved safe.

        Returns ``None`` when not applicable (e.g. baselines outside the
        paper).  Concrete algorithms override this.
        """
        return None

    def liveness_predicate(self, n: int):  # pragma: no cover - overridden by subclasses
        """The communication predicate under which termination is proved."""
        return None

    def describe(self) -> str:
        """One-line description used by the CLI and experiment reports."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.describe()}>"


class FunctionAlgorithm(HOAlgorithm):
    """Adapter turning a plain process-constructor callable into an algorithm.

    Useful in tests and for quick experiments::

        algorithm = FunctionAlgorithm(lambda pid, n, v: MyProcess(pid, n, v), name="mine")
    """

    def __init__(self, factory, name: str = "function-algorithm", rounds_per_phase: int = 1):
        self._factory = factory
        self.name = name
        self.rounds_per_phase = rounds_per_phase

    def create_process(self, pid: ProcessId, n: int, initial_value: Value) -> HOProcess:
        return self._factory(pid, n, initial_value)

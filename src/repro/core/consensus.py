"""The consensus problem specification (Section 2.3).

Every process starts with an initial value ``v_p`` from a totally
ordered set ``V`` and must irrevocably decide, such that

* **Integrity** — if all processes have the same initial value, it is
  the only possible decision value;
* **Agreement** — no two processes decide differently;
* **Termination** — all processes eventually decide.

Because processes are never "faulty" in this model (only transmissions
are), the specification makes *no exemptions*: every process must
decide, and Integrity/Agreement quantify over all processes.

This module provides :class:`ConsensusSpec` (checks a finished run) and
:class:`ConsensusOutcome` (the structured verdict used throughout the
tests, benchmarks and reports).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.process import ProcessId, Value


@dataclass(frozen=True)
class DecisionRecord:
    """A single decision event: who decided what, and when."""

    process: ProcessId
    value: Value
    round_num: int


@dataclass(frozen=True)
class ConsensusOutcome:
    """The verdict of a finished (finite-horizon) consensus run.

    Termination over a finite horizon means "all processes decided
    within the simulated number of rounds"; for runs whose communication
    predicate does not guarantee liveness this may legitimately be
    False without constituting an algorithm bug.
    """

    n: int
    initial_values: Mapping[ProcessId, Value]
    decisions: Tuple[DecisionRecord, ...]
    rounds_executed: int
    integrity: bool
    agreement: bool
    termination: bool
    validity: bool
    violations: Tuple[str, ...] = ()
    metadata: Mapping[str, object] = field(default_factory=dict)

    @property
    def all_satisfied(self) -> bool:
        """True iff Integrity, Agreement and Termination all hold."""
        return self.integrity and self.agreement and self.termination

    @property
    def safe(self) -> bool:
        """True iff the safety clauses (Integrity and Agreement) hold."""
        return self.integrity and self.agreement

    @property
    def decided_processes(self) -> Tuple[ProcessId, ...]:
        return tuple(sorted(d.process for d in self.decisions))

    @property
    def decision_values(self) -> Tuple[Value, ...]:
        """The distinct decided values (sorted by repr for determinism)."""
        return tuple(sorted({d.value for d in self.decisions}, key=repr))

    @property
    def decision_rounds(self) -> Dict[ProcessId, int]:
        return {d.process: d.round_num for d in self.decisions}

    @property
    def first_decision_round(self) -> Optional[int]:
        """Earliest round at which some process decided, or None."""
        if not self.decisions:
            return None
        return min(d.round_num for d in self.decisions)

    @property
    def last_decision_round(self) -> Optional[int]:
        """Round by which the *last* decision happened (None if nobody decided)."""
        if not self.decisions:
            return None
        return max(d.round_num for d in self.decisions)

    def summary(self) -> str:
        """One-line human-readable summary used by the CLI and examples."""
        decided = len(self.decisions)
        parts = [
            f"n={self.n}",
            f"rounds={self.rounds_executed}",
            f"decided={decided}/{self.n}",
            f"integrity={'ok' if self.integrity else 'VIOLATED'}",
            f"agreement={'ok' if self.agreement else 'VIOLATED'}",
            f"termination={'ok' if self.termination else 'no'}",
        ]
        if self.decisions:
            parts.append(f"values={list(self.decision_values)!r}")
            parts.append(f"last_decision_round={self.last_decision_round}")
        return " ".join(parts)


class ConsensusSpec:
    """Checker for the consensus specification over a finished run.

    Besides the paper's three clauses it also evaluates *validity* (every
    decision value is some process's initial value), which the paper's
    algorithms ensure and which is a useful additional sanity check in
    the presence of corruption (a corrupted value could otherwise leak
    into decisions).  Validity is reported separately and does not
    affect :attr:`ConsensusOutcome.all_satisfied`.
    """

    def __init__(self, require_validity: bool = False) -> None:
        self.require_validity = require_validity

    def evaluate(
        self,
        initial_values: Mapping[ProcessId, Value],
        decisions: Sequence[DecisionRecord],
        rounds_executed: int,
        metadata: Optional[Mapping[str, object]] = None,
    ) -> ConsensusOutcome:
        """Evaluate the three clauses and produce a :class:`ConsensusOutcome`."""
        n = len(initial_values)
        violations: List[str] = []

        decided_values = {d.value for d in decisions}
        initial_set = set(initial_values.values())

        # Integrity: with a unanimous initial configuration, the common
        # initial value is the only possible decision value.
        integrity = True
        if len(initial_set) == 1 and decided_values:
            (only_value,) = initial_set
            bad = decided_values - {only_value}
            if bad:
                integrity = False
                violations.append(
                    f"Integrity violated: initial values all {only_value!r} but "
                    f"decisions include {sorted(bad, key=repr)!r}"
                )

        # Agreement: no two processes decide differently.
        agreement = len(decided_values) <= 1
        if not agreement:
            violations.append(
                f"Agreement violated: distinct decisions {sorted(decided_values, key=repr)!r}"
            )

        # A process deciding twice (differently) is prevented upstream by
        # HOProcess._decide, but double-check single decision per process.
        per_process: Dict[ProcessId, Value] = {}
        for d in decisions:
            if d.process in per_process and per_process[d.process] != d.value:
                agreement = False
                violations.append(
                    f"process {d.process} decided twice with different values "
                    f"({per_process[d.process]!r} then {d.value!r})"
                )
            per_process.setdefault(d.process, d.value)

        # Termination (finite-horizon reading).
        termination = len(per_process) == n
        if not termination:
            missing = sorted(set(initial_values) - set(per_process))
            violations.append(
                f"Termination not reached within {rounds_executed} rounds: "
                f"{len(missing)} process(es) undecided ({missing[:10]}{'...' if len(missing) > 10 else ''})"
            )

        # Validity (stronger than Integrity; reported separately).
        validity = decided_values <= initial_set
        if not validity:
            invented = decided_values - initial_set
            message = (
                f"Validity violated: decided values {sorted(invented, key=repr)!r} "
                "are not initial values of any process"
            )
            if self.require_validity:
                violations.append(message)

        return ConsensusOutcome(
            n=n,
            initial_values=dict(initial_values),
            decisions=tuple(decisions),
            rounds_executed=rounds_executed,
            integrity=integrity,
            agreement=agreement,
            termination=termination,
            validity=validity,
            violations=tuple(violations),
            metadata=dict(metadata or {}),
        )

"""Heard-of sets, safe heard-of sets and derived quantities (Section 2.1).

For each process ``p`` and round ``r`` the paper defines

* the reception vector ``mu_p^r`` — the partial vector of messages that
  ``p`` receives at round ``r``;
* ``HO(p, r)``  — the support of ``mu_p^r`` (who was heard of);
* ``SHO(p, r)`` — the senders whose message arrived *uncorrupted*, i.e.
  equal to what their sending function prescribed;
* ``AHO(p, r) = HO(p, r) \\ SHO(p, r)`` — the altered heard-of set;
* the round kernel ``K(r)`` and safe kernel ``SK(r)`` (intersection over
  all receivers), their global counterparts ``K`` and ``SK``;
* the altered span ``AS(r)`` and ``AS`` (union of altered heard-of sets).

This module provides small, immutable data containers for a single
round (:class:`ReceptionVector`, :class:`RoundRecord`) and for an entire
run (:class:`HeardOfCollection`), plus the free functions computing the
derived sets.  Communication predicates (:mod:`repro.core.predicates`)
are evaluated over :class:`HeardOfCollection`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from repro.core.process import Payload, ProcessId


# ----------------------------------------------------------------------
# Free functions on HO / SHO sets
# ----------------------------------------------------------------------
def altered_heard_of(ho: Iterable[ProcessId], sho: Iterable[ProcessId]) -> FrozenSet[ProcessId]:
    """Return ``AHO = HO \\ SHO``.

    Raises :class:`ValueError` if ``sho`` is not a subset of ``ho`` —
    by definition a message can only be "safely heard" if it was heard
    at all.
    """
    ho_set = frozenset(ho)
    sho_set = frozenset(sho)
    if not sho_set <= ho_set:
        raise ValueError(f"SHO {sorted(sho_set)} is not a subset of HO {sorted(ho_set)}")
    return ho_set - sho_set


def kernel(ho_sets: Mapping[ProcessId, Iterable[ProcessId]]) -> FrozenSet[ProcessId]:
    """Return the kernel of a round: processes heard by *all* receivers.

    ``ho_sets`` maps each receiver ``p`` to ``HO(p, r)``.  An empty
    mapping yields the empty kernel (there is no receiver to constrain,
    but also no process set to take an intersection over, so we return
    the empty set which is the conservative choice used by predicates).
    """
    sets = [frozenset(s) for s in ho_sets.values()]
    if not sets:
        return frozenset()
    result = sets[0]
    for s in sets[1:]:
        result &= s
    return result


def safe_kernel(sho_sets: Mapping[ProcessId, Iterable[ProcessId]]) -> FrozenSet[ProcessId]:
    """Return the safe kernel of a round: processes *safely* heard by all."""
    return kernel(sho_sets)


def altered_span(
    ho_sets: Mapping[ProcessId, Iterable[ProcessId]],
    sho_sets: Mapping[ProcessId, Iterable[ProcessId]],
) -> FrozenSet[ProcessId]:
    """Return ``AS(r)``: processes from which *some* receiver got a corrupted message."""
    span: Set[ProcessId] = set()
    for receiver, ho in ho_sets.items():
        sho = sho_sets.get(receiver, frozenset())
        span |= altered_heard_of(ho, sho)
    return frozenset(span)


# ----------------------------------------------------------------------
# Per-round containers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReceptionVector:
    """The partial reception vector ``mu_p^r`` of one receiver at one round.

    Attributes
    ----------
    receiver:
        The process this vector belongs to.
    received:
        Mapping from sender to the payload actually received (possibly
        corrupted).  Senders not heard of are absent.
    intended:
        Mapping from sender to the payload the sender's sending function
        prescribed for this receiver.  Present for *every* sender (all
        processes send at every round in this model); used to compute
        ``SHO``.
    """

    receiver: ProcessId
    received: Mapping[ProcessId, Payload]
    intended: Mapping[ProcessId, Payload]

    @property
    def heard_of(self) -> FrozenSet[ProcessId]:
        """``HO(p, r)``: the support of the reception vector."""
        return frozenset(self.received)

    @property
    def safe_heard_of(self) -> FrozenSet[ProcessId]:
        """``SHO(p, r)``: senders whose message arrived uncorrupted."""
        return frozenset(
            sender
            for sender, payload in self.received.items()
            if sender in self.intended and payload == self.intended[sender]
        )

    @property
    def altered_heard_of(self) -> FrozenSet[ProcessId]:
        """``AHO(p, r) = HO(p, r) \\ SHO(p, r)``."""
        return self.heard_of - self.safe_heard_of

    def values_received(self) -> Tuple[Payload, ...]:
        """All payloads received, in sender order (useful in tests)."""
        return tuple(self.received[s] for s in sorted(self.received))

    def count_of(self, value: Payload) -> int:
        """Number of received messages equal to ``value`` (the set ``R_p^r(v)``)."""
        return sum(1 for payload in self.received.values() if payload == value)

    def senders_of(self, value: Payload) -> FrozenSet[ProcessId]:
        """The set ``R_p^r(v)`` of senders from which ``value`` was received."""
        return frozenset(s for s, payload in self.received.items() if payload == value)


@dataclass(frozen=True)
class RoundRecord:
    """Everything observable about a single round of a run.

    Attributes
    ----------
    round_num:
        The 1-based round number.
    receptions:
        Mapping from receiver to its :class:`ReceptionVector`.
    states_before:
        Optional per-process state snapshots taken before the round's
        transitions (used by invariant monitors); may be empty.
    states_after:
        Optional per-process state snapshots after the transitions.
    """

    round_num: int
    receptions: Mapping[ProcessId, ReceptionVector]
    states_before: Mapping[ProcessId, Mapping[str, object]] = field(default_factory=dict)
    states_after: Mapping[ProcessId, Mapping[str, object]] = field(default_factory=dict)

    @property
    def processes(self) -> FrozenSet[ProcessId]:
        return frozenset(self.receptions)

    def ho(self, receiver: ProcessId) -> FrozenSet[ProcessId]:
        """``HO(receiver, round_num)``."""
        return self.receptions[receiver].heard_of

    def sho(self, receiver: ProcessId) -> FrozenSet[ProcessId]:
        """``SHO(receiver, round_num)``."""
        return self.receptions[receiver].safe_heard_of

    def aho(self, receiver: ProcessId) -> FrozenSet[ProcessId]:
        """``AHO(receiver, round_num)``."""
        return self.receptions[receiver].altered_heard_of

    def ho_sets(self) -> Dict[ProcessId, FrozenSet[ProcessId]]:
        return {p: rv.heard_of for p, rv in self.receptions.items()}

    def sho_sets(self) -> Dict[ProcessId, FrozenSet[ProcessId]]:
        return {p: rv.safe_heard_of for p, rv in self.receptions.items()}

    def kernel(self) -> FrozenSet[ProcessId]:
        """``K(r)``: processes heard of by every receiver at this round."""
        return kernel(self.ho_sets())

    def safe_kernel(self) -> FrozenSet[ProcessId]:
        """``SK(r)``: processes safely heard of by every receiver."""
        return safe_kernel(self.sho_sets())

    def altered_span(self) -> FrozenSet[ProcessId]:
        """``AS(r)``: processes from which someone received a corrupted message."""
        return altered_span(self.ho_sets(), self.sho_sets())

    def total_corruptions(self) -> int:
        """Total number of corrupted receptions at this round (summed over receivers)."""
        return sum(len(rv.altered_heard_of) for rv in self.receptions.values())

    def total_omissions(self) -> int:
        """Total number of messages not received at this round."""
        return sum(
            len(rv.intended) - len(rv.received) for rv in self.receptions.values()
        )

    def max_aho(self) -> int:
        """``max_p |AHO(p, r)|`` — the per-receiver corruption peak of this round."""
        if not self.receptions:
            return 0
        return max(len(rv.altered_heard_of) for rv in self.receptions.values())


# ----------------------------------------------------------------------
# Whole-run container
# ----------------------------------------------------------------------
class HeardOfCollection:
    """The collection of HO/SHO sets of a (finite prefix of a) run.

    The paper's communication predicates are defined over the infinite
    collection ``(HO(p, r); SHO(p, r))`` for all ``p`` and ``r``; a
    simulation produces a finite prefix, which this class stores as a
    list of :class:`RoundRecord`.  Predicates evaluated on a finite
    prefix interpret "eventually" clauses as "within the recorded
    horizon".
    """

    def __init__(self, n: int, rounds: Optional[Iterable[RoundRecord]] = None) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        self.n = n
        self._rounds: List[RoundRecord] = list(rounds) if rounds is not None else []
        for expected, record in enumerate(self._rounds, start=1):
            if record.round_num != expected:
                raise ValueError(
                    f"round records must be consecutive starting at 1; "
                    f"expected {expected}, got {record.round_num}"
                )

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._rounds)

    def __iter__(self) -> Iterator[RoundRecord]:
        return iter(self._rounds)

    def __getitem__(self, round_num: int) -> RoundRecord:
        """Return the record of 1-based ``round_num``."""
        if round_num < 1 or round_num > len(self._rounds):
            raise KeyError(f"no record for round {round_num}")
        return self._rounds[round_num - 1]

    @property
    def num_rounds(self) -> int:
        return len(self._rounds)

    @property
    def processes(self) -> FrozenSet[ProcessId]:
        return frozenset(range(self.n))

    def append(self, record: RoundRecord) -> None:
        """Append the next round's record (round numbers must be consecutive)."""
        expected = len(self._rounds) + 1
        if record.round_num != expected:
            raise ValueError(
                f"expected round {expected}, got record for round {record.round_num}"
            )
        self._rounds.append(record)

    # -- per-round accessors --------------------------------------------------
    def ho(self, p: ProcessId, r: int) -> FrozenSet[ProcessId]:
        return self[r].ho(p)

    def sho(self, p: ProcessId, r: int) -> FrozenSet[ProcessId]:
        return self[r].sho(p)

    def aho(self, p: ProcessId, r: int) -> FrozenSet[ProcessId]:
        return self[r].aho(p)

    # -- global derived sets ---------------------------------------------------
    def global_kernel(self) -> FrozenSet[ProcessId]:
        """``K``: processes heard by everyone at every recorded round."""
        result = self.processes
        for record in self._rounds:
            result &= record.kernel()
        return result

    def global_safe_kernel(self) -> FrozenSet[ProcessId]:
        """``SK``: processes safely heard by everyone at every recorded round."""
        result = self.processes
        for record in self._rounds:
            result &= record.safe_kernel()
        return result

    def global_altered_span(self) -> FrozenSet[ProcessId]:
        """``AS``: processes that emitted at least one corrupted message, ever."""
        span: Set[ProcessId] = set()
        for record in self._rounds:
            span |= record.altered_span()
        return frozenset(span)

    # -- aggregate statistics --------------------------------------------------
    def max_aho(self) -> int:
        """``max_{p,r} |AHO(p, r)|`` over the recorded prefix."""
        if not self._rounds:
            return 0
        return max(record.max_aho() for record in self._rounds)

    def total_corruptions(self) -> int:
        return sum(record.total_corruptions() for record in self._rounds)

    def total_omissions(self) -> int:
        return sum(record.total_omissions() for record in self._rounds)

    def corruption_profile(self) -> List[int]:
        """Per-round total corruptions, useful for plots and reports."""
        return [record.total_corruptions() for record in self._rounds]

    def is_benign(self) -> bool:
        """True iff ``SHO(p, r) = HO(p, r)`` everywhere (the benign special case)."""
        return all(
            rv.altered_heard_of == frozenset()
            for record in self._rounds
            for rv in record.receptions.values()
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<HeardOfCollection n={self.n} rounds={len(self._rounds)} "
            f"corruptions={self.total_corruptions()}>"
        )

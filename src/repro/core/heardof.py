"""Heard-of sets, safe heard-of sets and derived quantities (Section 2.1).

For each process ``p`` and round ``r`` the paper defines

* the reception vector ``mu_p^r`` — the partial vector of messages that
  ``p`` receives at round ``r``;
* ``HO(p, r)``  — the support of ``mu_p^r`` (who was heard of);
* ``SHO(p, r)`` — the senders whose message arrived *uncorrupted*, i.e.
  equal to what their sending function prescribed;
* ``AHO(p, r) = HO(p, r) \\ SHO(p, r)`` — the altered heard-of set;
* the round kernel ``K(r)`` and safe kernel ``SK(r)`` (intersection over
  all receivers), their global counterparts ``K`` and ``SK``;
* the altered span ``AS(r)`` and ``AS`` (union of altered heard-of sets).

This module provides small, immutable data containers for a single
round (:class:`ReceptionVector`, :class:`RoundRecord`) and for an entire
run (:class:`HeardOfCollection`), plus the free functions computing the
derived sets.  Communication predicates (:mod:`repro.core.predicates`)
are evaluated over :class:`HeardOfCollection`.

Bitmask representation
----------------------
Process ids are the integers ``0 .. n-1``, so every subset of ``Pi`` is
an ``n``-bit integer: bit ``p`` is set iff process ``p`` is a member.
``HO``/``SHO``/``AHO`` sets and all the derived quantities (kernels,
spans, cardinalities) become single-word integer operations in this
representation, which is what the fast simulation backend
(:mod:`repro.simulation.fast_engine`) computes with.
:class:`MaskReception` and :class:`MaskRoundRecord` are the mask-level
counterparts of :class:`ReceptionVector` and :class:`RoundRecord`; the
round-trips are lossless, and :class:`MaskRoundRecord` exposes the same
read API as :class:`RoundRecord` so collections, predicates and metrics
work identically over either record type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

try:  # NumPy is optional everywhere in this package: the word-array
    import numpy as _np  # helpers below degrade to a clear error without it.
except ImportError:  # pragma: no cover - exercised by the numpy-less CI leg
    _np = None  # type: ignore[assignment]

from repro.core.process import Payload, ProcessId


# ----------------------------------------------------------------------
# Bitmask helpers
# ----------------------------------------------------------------------
def full_mask(n: int) -> int:
    """The mask of the whole process set ``Pi = {0, .., n-1}``."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return (1 << n) - 1


def mask_from_ids(ids: Iterable[ProcessId]) -> int:
    """Encode a set of process ids as a bitmask."""
    mask = 0
    for pid in ids:
        if pid < 0:
            raise ValueError(f"process ids must be non-negative, got {pid}")
        mask |= 1 << pid
    return mask


def ids_from_mask(mask: int) -> FrozenSet[ProcessId]:
    """Decode a bitmask back into the frozenset of process ids."""
    if mask < 0:
        raise ValueError(f"mask must be non-negative, got {mask}")
    ids = []
    while mask:
        low = mask & -mask
        ids.append(low.bit_length() - 1)
        mask ^= low
    return frozenset(ids)


def iter_mask(mask: int) -> Iterator[ProcessId]:
    """Iterate the set bits of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


# ----------------------------------------------------------------------
# Mask <-> packed-word helpers
# ----------------------------------------------------------------------
# The batch engine carries reception as arrays of 64-bit words instead
# of dense boolean matrices; these helpers define the one word layout
# shared by every producer and consumer: *little-endian*, so bit ``s``
# of a mask lives in word ``s >> 6`` at shift ``s & 63``, and a
# ``(words_per_mask(n) * 8)``-byte little-endian serialisation of the
# mask int views directly as the word row.
def words_per_mask(n: int) -> int:
    """Number of 64-bit words needed for an ``n``-bit mask (min 1)."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return max(1, (n + 63) // 64)


def mask_to_words(mask: int, n: int) -> Tuple[int, ...]:
    """Split an ``n``-bit mask into ``words_per_mask(n)`` little-endian words."""
    if mask < 0:
        raise ValueError(f"mask must be non-negative, got {mask}")
    width = words_per_mask(n)
    return tuple((mask >> (64 * k)) & 0xFFFFFFFFFFFFFFFF for k in range(width))


def words_to_mask(words: Iterable[int]) -> int:
    """Recombine little-endian 64-bit words into a single mask int."""
    mask = 0
    for k, word in enumerate(words):
        mask |= word << (64 * k)
    return mask


def pack_mask_rows(bits: "_np.ndarray") -> "_np.ndarray":
    """Pack a boolean array along its last axis into little-endian uint64 words.

    ``bits[..., s]`` becomes bit ``s & 63`` of ``out[..., s >> 6]`` —
    the same layout as :func:`mask_to_words`, so a packed row views
    back to the mask int via :func:`words_to_mask`.  Requires NumPy.
    """
    if _np is None:  # pragma: no cover - numpy-less environments never pack
        raise RuntimeError("pack_mask_rows requires numpy")
    packed = _np.packbits(bits, axis=-1, bitorder="little")
    nbytes = packed.shape[-1]
    width = words_per_mask(bits.shape[-1])
    if nbytes != width * 8:
        pad = _np.zeros(packed.shape[:-1] + (width * 8 - nbytes,), dtype=_np.uint8)
        packed = _np.concatenate([packed, pad], axis=-1)
    return _np.ascontiguousarray(packed).view("<u8")


def unpack_mask_rows(words: "_np.ndarray", n: int) -> "_np.ndarray":
    """Inverse of :func:`pack_mask_rows`: words back to an ``(..., n)`` bool array."""
    if _np is None:  # pragma: no cover - numpy-less environments never pack
        raise RuntimeError("unpack_mask_rows requires numpy")
    as_bytes = _np.ascontiguousarray(words).astype("<u8", copy=False).view(_np.uint8)
    bits = _np.unpackbits(as_bytes, axis=-1, count=n, bitorder="little")
    return bits.astype(bool)


# ----------------------------------------------------------------------
# Free functions on HO / SHO sets
# ----------------------------------------------------------------------
def altered_heard_of(ho: Iterable[ProcessId], sho: Iterable[ProcessId]) -> FrozenSet[ProcessId]:
    """Return ``AHO = HO \\ SHO``.

    Raises :class:`ValueError` if ``sho`` is not a subset of ``ho`` —
    by definition a message can only be "safely heard" if it was heard
    at all.
    """
    ho_set = frozenset(ho)
    sho_set = frozenset(sho)
    if not sho_set <= ho_set:
        raise ValueError(f"SHO {sorted(sho_set)} is not a subset of HO {sorted(ho_set)}")
    return ho_set - sho_set


def kernel(ho_sets: Mapping[ProcessId, Iterable[ProcessId]]) -> FrozenSet[ProcessId]:
    """Return the kernel of a round: processes heard by *all* receivers.

    ``ho_sets`` maps each receiver ``p`` to ``HO(p, r)``.  An empty
    mapping yields the empty kernel (there is no receiver to constrain,
    but also no process set to take an intersection over, so we return
    the empty set which is the conservative choice used by predicates).
    """
    sets = [frozenset(s) for s in ho_sets.values()]
    if not sets:
        return frozenset()
    result = sets[0]
    for s in sets[1:]:
        result &= s
    return result


def safe_kernel(sho_sets: Mapping[ProcessId, Iterable[ProcessId]]) -> FrozenSet[ProcessId]:
    """Return the safe kernel of a round: processes *safely* heard by all."""
    return kernel(sho_sets)


def altered_span(
    ho_sets: Mapping[ProcessId, Iterable[ProcessId]],
    sho_sets: Mapping[ProcessId, Iterable[ProcessId]],
) -> FrozenSet[ProcessId]:
    """Return ``AS(r)``: processes from which *some* receiver got a corrupted message."""
    span: Set[ProcessId] = set()
    for receiver, ho in ho_sets.items():
        sho = sho_sets.get(receiver, frozenset())
        span |= altered_heard_of(ho, sho)
    return frozenset(span)


# ----------------------------------------------------------------------
# Per-round containers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReceptionVector:
    """The partial reception vector ``mu_p^r`` of one receiver at one round.

    Attributes
    ----------
    receiver:
        The process this vector belongs to.
    received:
        Mapping from sender to the payload actually received (possibly
        corrupted).  Senders not heard of are absent.
    intended:
        Mapping from sender to the payload the sender's sending function
        prescribed for this receiver.  Present for *every* sender (all
        processes send at every round in this model); used to compute
        ``SHO``.
    """

    receiver: ProcessId
    received: Mapping[ProcessId, Payload]
    intended: Mapping[ProcessId, Payload]

    @property
    def heard_of(self) -> FrozenSet[ProcessId]:
        """``HO(p, r)``: the support of the reception vector."""
        return frozenset(self.received)

    @property
    def safe_heard_of(self) -> FrozenSet[ProcessId]:
        """``SHO(p, r)``: senders whose message arrived uncorrupted."""
        return frozenset(
            sender
            for sender, payload in self.received.items()
            if sender in self.intended and payload == self.intended[sender]
        )

    @property
    def altered_heard_of(self) -> FrozenSet[ProcessId]:
        """``AHO(p, r) = HO(p, r) \\ SHO(p, r)``."""
        return self.heard_of - self.safe_heard_of

    def values_received(self) -> Tuple[Payload, ...]:
        """All payloads received, in sender order (useful in tests)."""
        return tuple(self.received[s] for s in sorted(self.received))

    def count_of(self, value: Payload) -> int:
        """Number of received messages equal to ``value`` (the set ``R_p^r(v)``)."""
        return sum(1 for payload in self.received.values() if payload == value)

    def senders_of(self, value: Payload) -> FrozenSet[ProcessId]:
        """The set ``R_p^r(v)`` of senders from which ``value`` was received."""
        return frozenset(s for s, payload in self.received.items() if payload == value)


@dataclass(frozen=True)
class RoundRecord:
    """Everything observable about a single round of a run.

    Attributes
    ----------
    round_num:
        The 1-based round number.
    receptions:
        Mapping from receiver to its :class:`ReceptionVector`.
    states_before:
        Optional per-process state snapshots taken before the round's
        transitions (used by invariant monitors); may be empty.
    states_after:
        Optional per-process state snapshots after the transitions.
    """

    round_num: int
    receptions: Mapping[ProcessId, ReceptionVector]
    states_before: Mapping[ProcessId, Mapping[str, object]] = field(default_factory=dict)
    states_after: Mapping[ProcessId, Mapping[str, object]] = field(default_factory=dict)

    @property
    def processes(self) -> FrozenSet[ProcessId]:
        return frozenset(self.receptions)

    def ho(self, receiver: ProcessId) -> FrozenSet[ProcessId]:
        """``HO(receiver, round_num)``."""
        return self.receptions[receiver].heard_of

    def sho(self, receiver: ProcessId) -> FrozenSet[ProcessId]:
        """``SHO(receiver, round_num)``."""
        return self.receptions[receiver].safe_heard_of

    def aho(self, receiver: ProcessId) -> FrozenSet[ProcessId]:
        """``AHO(receiver, round_num)``."""
        return self.receptions[receiver].altered_heard_of

    def ho_sets(self) -> Dict[ProcessId, FrozenSet[ProcessId]]:
        return {p: rv.heard_of for p, rv in self.receptions.items()}

    def sho_sets(self) -> Dict[ProcessId, FrozenSet[ProcessId]]:
        return {p: rv.safe_heard_of for p, rv in self.receptions.items()}

    def kernel(self) -> FrozenSet[ProcessId]:
        """``K(r)``: processes heard of by every receiver at this round."""
        return kernel(self.ho_sets())

    def safe_kernel(self) -> FrozenSet[ProcessId]:
        """``SK(r)``: processes safely heard of by every receiver."""
        return safe_kernel(self.sho_sets())

    def altered_span(self) -> FrozenSet[ProcessId]:
        """``AS(r)``: processes from which someone received a corrupted message."""
        return altered_span(self.ho_sets(), self.sho_sets())

    def total_corruptions(self) -> int:
        """Total number of corrupted receptions at this round (summed over receivers)."""
        return sum(len(rv.altered_heard_of) for rv in self.receptions.values())

    def total_omissions(self) -> int:
        """Total number of messages not received at this round."""
        return sum(
            len(rv.intended) - len(rv.received) for rv in self.receptions.values()
        )

    def max_aho(self) -> int:
        """``max_p |AHO(p, r)|`` — the per-receiver corruption peak of this round."""
        if not self.receptions:
            return 0
        return max(len(rv.altered_heard_of) for rv in self.receptions.values())


# ----------------------------------------------------------------------
# Bitmask counterparts of ReceptionVector / RoundRecord
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MaskReception:
    """Bitmask encoding of one :class:`ReceptionVector`.

    Attributes
    ----------
    receiver:
        The process this reception belongs to.
    n:
        System size (masks are ``n``-bit integers).
    ho_mask:
        ``HO(p, r)`` as a bitmask.
    sho_mask:
        ``SHO(p, r)`` as a bitmask (subset of ``ho_mask``).
    received:
        The payloads actually received, one per set bit of ``ho_mask``
        in ascending sender order.
    intended:
        The payload each sender's sending function prescribed for this
        receiver, for *every* sender ``0 .. n-1``.
    """

    receiver: ProcessId
    n: int
    ho_mask: int
    sho_mask: int
    received: Tuple[Payload, ...]
    intended: Tuple[Payload, ...]

    def __post_init__(self) -> None:
        full = full_mask(self.n)
        if not 0 <= self.ho_mask <= full:
            raise ValueError(f"ho_mask {self.ho_mask:#x} out of range for n={self.n}")
        if self.sho_mask & ~self.ho_mask:
            raise ValueError(
                f"SHO mask {self.sho_mask:#x} is not a subset of HO mask {self.ho_mask:#x}"
            )
        if len(self.received) != self.ho_mask.bit_count():
            raise ValueError(
                f"expected {self.ho_mask.bit_count()} received payloads, got {len(self.received)}"
            )
        if len(self.intended) != self.n:
            raise ValueError(f"expected {self.n} intended payloads, got {len(self.intended)}")

    @classmethod
    def from_vector(cls, vector: ReceptionVector, n: int) -> "MaskReception":
        """Lossless encoding of a :class:`ReceptionVector` (ids must be ``0..n-1``)."""
        ho_mask = mask_from_ids(vector.received)
        if ho_mask >= (1 << n):
            raise ValueError(f"sender ids exceed n={n}")
        return cls(
            receiver=vector.receiver,
            n=n,
            ho_mask=ho_mask,
            sho_mask=mask_from_ids(vector.safe_heard_of),
            received=tuple(vector.received[s] for s in iter_mask(ho_mask)),
            intended=tuple(vector.intended[s] for s in range(n)),
        )

    def to_vector(self) -> ReceptionVector:
        """Materialise the equivalent :class:`ReceptionVector`."""
        received = dict(zip(iter_mask(self.ho_mask), self.received))
        return ReceptionVector(
            receiver=self.receiver,
            received=received,
            intended={s: self.intended[s] for s in range(self.n)},
        )

    @property
    def heard_of(self) -> FrozenSet[ProcessId]:
        return ids_from_mask(self.ho_mask)

    @property
    def safe_heard_of(self) -> FrozenSet[ProcessId]:
        return ids_from_mask(self.sho_mask)

    @property
    def altered_heard_of(self) -> FrozenSet[ProcessId]:
        return ids_from_mask(self.ho_mask & ~self.sho_mask)


class MaskRoundRecord:
    """Bitmask counterpart of :class:`RoundRecord` for broadcast rounds.

    The fast backend executes algorithms whose sending function
    broadcasts one payload per sender and round, so a whole round is
    captured by the per-sender broadcast payloads plus, per receiver,
    the ``HO``/``SHO`` masks and the corrupted payloads (senders in
    ``AHO`` only).  The class exposes the same read API as
    :class:`RoundRecord` — every set accessor, kernel/span computation
    and fault count — so :class:`HeardOfCollection`, the communication
    predicates and the metrics work identically over either record
    type; :attr:`receptions` materialises full
    :class:`ReceptionVector` objects lazily (and caches them) for
    consumers that need actual payload maps.

    State snapshots are never recorded by the fast backend, so
    ``states_before``/``states_after`` are always empty.
    """

    __slots__ = ("round_num", "n", "sent", "ho_masks", "sho_masks", "corrupt", "_receptions")

    def __init__(
        self,
        round_num: int,
        n: int,
        sent: Tuple[Payload, ...],
        ho_masks: Tuple[int, ...],
        sho_masks: Tuple[int, ...],
        corrupt: Tuple[Optional[Mapping[ProcessId, Payload]], ...],
    ) -> None:
        if not (len(sent) == len(ho_masks) == len(sho_masks) == len(corrupt) == n):
            raise ValueError(f"per-sender/per-receiver tuples must all have length n={n}")
        self.round_num = round_num
        self.n = n
        self.sent = sent
        self.ho_masks = ho_masks
        self.sho_masks = sho_masks
        self.corrupt = corrupt
        self._receptions: Optional[Dict[ProcessId, ReceptionVector]] = None

    # -- conversions ---------------------------------------------------------
    @classmethod
    def from_round_record(cls, record: RoundRecord, n: int) -> "MaskRoundRecord":
        """Encode a broadcast :class:`RoundRecord` (receivers ``0..n-1``).

        Raises :class:`ValueError` when the record is not a broadcast
        round (some sender prescribed different payloads for different
        receivers) — such rounds have no single per-sender payload and
        must stay in matrix form.
        """
        if set(record.receptions) != set(range(n)):
            raise ValueError(f"receivers must be exactly 0..{n - 1}")
        sent: List[Payload] = [None] * n
        seen = [False] * n
        for rv in record.receptions.values():
            for sender in range(n):
                payload = rv.intended[sender]
                if not seen[sender]:
                    sent[sender] = payload
                    seen[sender] = True
                elif payload != sent[sender]:
                    raise ValueError(
                        f"sender {sender} is not broadcasting at round {record.round_num}; "
                        f"cannot encode as MaskRoundRecord"
                    )
        ho_masks: List[int] = []
        sho_masks: List[int] = []
        corrupt: List[Optional[Dict[ProcessId, Payload]]] = []
        for receiver in range(n):
            rv = record.receptions[receiver]
            ho = mask_from_ids(rv.received)
            sho = mask_from_ids(rv.safe_heard_of)
            altered = ho & ~sho
            ho_masks.append(ho)
            sho_masks.append(sho)
            corrupt.append(
                {s: rv.received[s] for s in iter_mask(altered)} if altered else None
            )
        return cls(
            round_num=record.round_num,
            n=n,
            sent=tuple(sent),
            ho_masks=tuple(ho_masks),
            sho_masks=tuple(sho_masks),
            corrupt=tuple(corrupt),
        )

    def to_round_record(self) -> RoundRecord:
        """Materialise the equivalent frozen :class:`RoundRecord`."""
        return RoundRecord(round_num=self.round_num, receptions=dict(self.receptions))

    def received_payload(self, receiver: ProcessId, sender: ProcessId) -> Payload:
        """The payload ``receiver`` got from ``sender`` (must be in ``HO``)."""
        corrupted = self.corrupt[receiver]
        if corrupted is not None and sender in corrupted:
            return corrupted[sender]
        return self.sent[sender]

    # -- RoundRecord read API -------------------------------------------------
    @property
    def receptions(self) -> Mapping[ProcessId, ReceptionVector]:
        if self._receptions is None:
            intended = {s: self.sent[s] for s in range(self.n)}
            vectors: Dict[ProcessId, ReceptionVector] = {}
            for receiver in range(self.n):
                corrupted = self.corrupt[receiver] or {}
                received = {
                    s: corrupted.get(s, self.sent[s]) for s in iter_mask(self.ho_masks[receiver])
                }
                vectors[receiver] = ReceptionVector(
                    receiver=receiver, received=received, intended=intended
                )
            self._receptions = vectors
        return self._receptions

    @property
    def states_before(self) -> Mapping[ProcessId, Mapping[str, object]]:
        return {}

    @property
    def states_after(self) -> Mapping[ProcessId, Mapping[str, object]]:
        return {}

    @property
    def processes(self) -> FrozenSet[ProcessId]:
        return frozenset(range(self.n))

    def ho(self, receiver: ProcessId) -> FrozenSet[ProcessId]:
        return ids_from_mask(self.ho_masks[receiver])

    def sho(self, receiver: ProcessId) -> FrozenSet[ProcessId]:
        return ids_from_mask(self.sho_masks[receiver])

    def aho(self, receiver: ProcessId) -> FrozenSet[ProcessId]:
        return ids_from_mask(self.ho_masks[receiver] & ~self.sho_masks[receiver])

    def ho_sets(self) -> Dict[ProcessId, FrozenSet[ProcessId]]:
        return {p: self.ho(p) for p in range(self.n)}

    def sho_sets(self) -> Dict[ProcessId, FrozenSet[ProcessId]]:
        return {p: self.sho(p) for p in range(self.n)}

    def kernel_mask(self) -> int:
        result = full_mask(self.n) if self.n else 0
        for mask in self.ho_masks:
            result &= mask
        return result

    def safe_kernel_mask(self) -> int:
        result = full_mask(self.n) if self.n else 0
        for mask in self.sho_masks:
            result &= mask
        return result

    def altered_span_mask(self) -> int:
        # Perfect rounds share one tuple object for HO and SHO (both
        # engines' fast paths) — nothing was altered, skip the walk.
        if self.sho_masks is self.ho_masks:
            return 0
        span = 0
        for ho, sho in zip(self.ho_masks, self.sho_masks):
            span |= ho & ~sho
        return span

    def kernel(self) -> FrozenSet[ProcessId]:
        return ids_from_mask(self.kernel_mask())

    def safe_kernel(self) -> FrozenSet[ProcessId]:
        return ids_from_mask(self.safe_kernel_mask())

    def altered_span(self) -> FrozenSet[ProcessId]:
        return ids_from_mask(self.altered_span_mask())

    def total_corruptions(self) -> int:
        if self.sho_masks is self.ho_masks:  # shared perfect-round tuple
            return 0
        return sum((ho & ~sho).bit_count() for ho, sho in zip(self.ho_masks, self.sho_masks))

    def total_omissions(self) -> int:
        # sum(n - popcount(ho)) with the popcounts folded in one C-level
        # map pass — these totals run once per record per metrics call,
        # the hottest scalar loop of a large fault-free sweep.
        return self.n * self.n - sum(map(int.bit_count, self.ho_masks))

    def max_aho(self) -> int:
        if not self.n:
            return 0
        if self.sho_masks is self.ho_masks:  # shared perfect-round tuple
            return 0
        return max((ho & ~sho).bit_count() for ho, sho in zip(self.ho_masks, self.sho_masks))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<MaskRoundRecord r={self.round_num} n={self.n}>"


# ----------------------------------------------------------------------
# Whole-run container
# ----------------------------------------------------------------------
class HeardOfCollection:
    """The collection of HO/SHO sets of a (finite prefix of a) run.

    The paper's communication predicates are defined over the infinite
    collection ``(HO(p, r); SHO(p, r))`` for all ``p`` and ``r``; a
    simulation produces a finite prefix, which this class stores as a
    list of :class:`RoundRecord`.  Predicates evaluated on a finite
    prefix interpret "eventually" clauses as "within the recorded
    horizon".
    """

    def __init__(self, n: int, rounds: Optional[Iterable[RoundRecord]] = None) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        self.n = n
        self._rounds: List[RoundRecord] = list(rounds) if rounds is not None else []
        for expected, record in enumerate(self._rounds, start=1):
            if record.round_num != expected:
                raise ValueError(
                    f"round records must be consecutive starting at 1; "
                    f"expected {expected}, got {record.round_num}"
                )

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._rounds)

    def __iter__(self) -> Iterator[RoundRecord]:
        return iter(self._rounds)

    def __getitem__(self, round_num: int) -> RoundRecord:
        """Return the record of 1-based ``round_num``."""
        if round_num < 1 or round_num > len(self._rounds):
            raise KeyError(f"no record for round {round_num}")
        return self._rounds[round_num - 1]

    @property
    def num_rounds(self) -> int:
        return len(self._rounds)

    @property
    def processes(self) -> FrozenSet[ProcessId]:
        return frozenset(range(self.n))

    def append(self, record: RoundRecord) -> None:
        """Append the next round's record (round numbers must be consecutive)."""
        expected = len(self._rounds) + 1
        if record.round_num != expected:
            raise ValueError(
                f"expected round {expected}, got record for round {record.round_num}"
            )
        self._rounds.append(record)

    # -- per-round accessors --------------------------------------------------
    def ho(self, p: ProcessId, r: int) -> FrozenSet[ProcessId]:
        return self[r].ho(p)

    def sho(self, p: ProcessId, r: int) -> FrozenSet[ProcessId]:
        return self[r].sho(p)

    def aho(self, p: ProcessId, r: int) -> FrozenSet[ProcessId]:
        return self[r].aho(p)

    # -- global derived sets ---------------------------------------------------
    # Mask-backed records (the fast/batch backends) expose their
    # per-round reductions as bitmask ints; folding those directly and
    # converting once avoids materialising a frozenset per round.  A
    # collection mixing in matrix-backed rounds falls back to set
    # algebra for the whole prefix.
    def _fold_masks(self, accessor: str, initial: int, op) -> Optional[int]:
        result = initial
        for record in self._rounds:
            mask_of = getattr(record, accessor, None)
            if mask_of is None:
                return None
            result = op(result, mask_of())
        return result

    def global_kernel(self) -> FrozenSet[ProcessId]:
        """``K``: processes heard by everyone at every recorded round."""
        folded = self._fold_masks("kernel_mask", full_mask(self.n), int.__and__)
        if folded is not None:
            return ids_from_mask(folded)
        result = self.processes
        for record in self._rounds:
            result &= record.kernel()
        return result

    def global_safe_kernel(self) -> FrozenSet[ProcessId]:
        """``SK``: processes safely heard by everyone at every recorded round."""
        folded = self._fold_masks("safe_kernel_mask", full_mask(self.n), int.__and__)
        if folded is not None:
            return ids_from_mask(folded)
        result = self.processes
        for record in self._rounds:
            result &= record.safe_kernel()
        return result

    def global_altered_span(self) -> FrozenSet[ProcessId]:
        """``AS``: processes that emitted at least one corrupted message, ever."""
        folded = self._fold_masks("altered_span_mask", 0, int.__or__)
        if folded is not None:
            return ids_from_mask(folded)
        span: Set[ProcessId] = set()
        for record in self._rounds:
            span |= record.altered_span()
        return frozenset(span)

    # -- aggregate statistics --------------------------------------------------
    def max_aho(self) -> int:
        """``max_{p,r} |AHO(p, r)|`` over the recorded prefix."""
        if not self._rounds:
            return 0
        return max(record.max_aho() for record in self._rounds)

    def total_corruptions(self) -> int:
        return sum(record.total_corruptions() for record in self._rounds)

    def total_omissions(self) -> int:
        return sum(record.total_omissions() for record in self._rounds)

    def corruption_profile(self) -> List[int]:
        """Per-round total corruptions, useful for plots and reports."""
        return [record.total_corruptions() for record in self._rounds]

    def is_benign(self) -> bool:
        """True iff ``SHO(p, r) = HO(p, r)`` everywhere (the benign special case).

        Evaluated via ``max_aho`` so mask-backed records (fast backend)
        never have to materialise full reception vectors.
        """
        return all(record.max_aho() == 0 for record in self._rounds)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<HeardOfCollection n={self.n} rounds={len(self._rounds)} "
            f"corruptions={self.total_corruptions()}>"
        )

"""Process abstraction of the Heard-Of model (Section 2.1 of the paper).

A process consists of a set of states, a subset of initial states, and
for each round ``r`` a message-sending function ``S_p^r`` and a
state-transition function ``T_p^r``.  Here a process is modelled as an
object whose attributes make up the state; the sending function is the
:meth:`HOProcess.send` method and the transition function is the
:meth:`HOProcess.transition` method.

Crucially — and in contrast to classical Byzantine models — processes in
this model *never* deviate from their transition functions.  All faults
are transmission faults: the environment (an adversary in the
simulation) may drop or corrupt messages *in flight*, which is reflected
in the ``HO``/``SHO`` sets of the run, but process state is never
touched by the environment.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from typing import Any, Dict, Hashable, Mapping, Optional

#: Process identifier.  Processes are numbered ``0 .. n-1``.
ProcessId = int

#: Consensus values are arbitrary hashable, totally ordered objects
#: (the paper requires a totally ordered set ``V``); in practice ints
#: and strings are used throughout the test-suite and benchmarks.
Value = Hashable

#: Message payloads.  ``None`` is reserved for "no message received"
#: inside reception vectors, so algorithms must not send ``None``.
Payload = Hashable


class HOProcess(ABC):
    """One process of an HO algorithm.

    Subclasses implement the per-round sending function
    (:meth:`send`) and transition function (:meth:`transition`), and
    expose their decision status through :attr:`decision`.

    Parameters
    ----------
    pid:
        The identifier of this process (``0 <= pid < n``).
    n:
        Total number of processes in ``Pi``.
    initial_value:
        The process's initial consensus value ``v_p``.
    """

    def __init__(self, pid: ProcessId, n: int, initial_value: Value) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if not 0 <= pid < n:
            raise ValueError(f"pid must be in [0, {n}), got {pid}")
        self.pid = pid
        self.n = n
        self.initial_value = initial_value
        self._decision: Optional[Value] = None
        self._decision_round: Optional[int] = None

    # ------------------------------------------------------------------
    # The sending function S_p^r
    # ------------------------------------------------------------------
    @abstractmethod
    def send(self, round_num: int) -> Payload:
        """Return the message this process broadcasts at ``round_num``.

        The paper's sending function ``S_p^r`` maps (state, destination)
        to a message; both algorithms in the paper broadcast the same
        message to every destination, so the common case is captured by
        this method.  Algorithms that need per-destination messages can
        override :meth:`send_to` instead.
        """

    def send_to(self, round_num: int, destination: ProcessId) -> Payload:
        """Return the message sent to ``destination`` at ``round_num``.

        Defaults to the broadcast value returned by :meth:`send`.  The
        simulation engine always calls this method so that
        per-destination algorithms are supported uniformly.
        """
        return self.send(round_num)

    # ------------------------------------------------------------------
    # The transition function T_p^r
    # ------------------------------------------------------------------
    @abstractmethod
    def transition(self, round_num: int, reception: Mapping[ProcessId, Payload]) -> None:
        """Apply the transition function to the reception vector.

        ``reception`` maps each process ``q`` in ``HO(p, r)`` to the
        payload received from ``q`` (possibly corrupted).  Processes not
        heard of simply do not appear in the mapping.
        """

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    @property
    def decision(self) -> Optional[Value]:
        """The decided value, or ``None`` if the process has not decided."""
        return self._decision

    @property
    def decided(self) -> bool:
        """Whether this process has decided."""
        return self._decision is not None

    @property
    def decision_round(self) -> Optional[int]:
        """The round at which the process decided (``None`` if undecided)."""
        return self._decision_round

    def _decide(self, value: Value, round_num: int) -> None:
        """Record an irrevocable decision.

        Decisions are irrevocable per the consensus specification: once
        made, later calls with a *different* value raise
        :class:`DecisionChangedError` so that specification violations
        surface immediately during simulation rather than being silently
        overwritten.
        """
        if self._decision is not None:
            if self._decision != value:
                raise DecisionChangedError(
                    f"process {self.pid} attempted to change its decision from "
                    f"{self._decision!r} (round {self._decision_round}) to {value!r} "
                    f"(round {round_num})"
                )
            return
        self._decision = value
        self._decision_round = round_num

    # ------------------------------------------------------------------
    # Introspection helpers used by traces and invariant monitors
    # ------------------------------------------------------------------
    def state_snapshot(self) -> Dict[str, Any]:
        """Return a deep copy of the externally relevant state.

        Subclasses should override to expose their algorithm variables
        (e.g. ``x_p``, ``vote_p``).  The default exposes the decision
        status only.
        """
        return {
            "decision": self._decision,
            "decision_round": self._decision_round,
        }

    def clone(self) -> "HOProcess":
        """Return a deep copy of this process (used by the model checker)."""
        return copy.deepcopy(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = f"decided={self._decision!r}" if self.decided else "undecided"
        return f"<{type(self).__name__} pid={self.pid} {status}>"


class DecisionChangedError(RuntimeError):
    """Raised when a process attempts to revoke or change its decision."""

"""Core HO-model abstractions (Section 2 of the paper).

The subpackage contains the computational model itself: processes and
their per-round sending/transition functions (:mod:`repro.core.process`),
reception vectors and heard-of sets (:mod:`repro.core.heardof`),
communication predicates (:mod:`repro.core.predicates`), the HO-machine
pairing of an algorithm with a predicate (:mod:`repro.core.machine`), the
consensus specification (:mod:`repro.core.consensus`) and threshold
parameter containers (:mod:`repro.core.parameters`).
"""

from repro.core.consensus import ConsensusOutcome, ConsensusSpec, DecisionRecord
from repro.core.heardof import (
    HeardOfCollection,
    ReceptionVector,
    RoundRecord,
    altered_heard_of,
    altered_span,
    kernel,
    safe_kernel,
)
from repro.core.machine import HOMachine
from repro.core.parameters import AteParameters, UteParameters
from repro.core.predicates import (
    AlphaSafePredicate,
    ALivePredicate,
    AndPredicate,
    BenignPredicate,
    ByzantineAsynchronousPredicate,
    ByzantineSynchronousPredicate,
    CommunicationPredicate,
    PermanentAlphaPredicate,
    TruePredicate,
    ULivePredicate,
    USafePredicate,
)
from repro.core.process import HOProcess, ProcessId, Value

__all__ = [
    "ALivePredicate",
    "AlphaSafePredicate",
    "AndPredicate",
    "AteParameters",
    "BenignPredicate",
    "ByzantineAsynchronousPredicate",
    "ByzantineSynchronousPredicate",
    "CommunicationPredicate",
    "ConsensusOutcome",
    "ConsensusSpec",
    "DecisionRecord",
    "HOMachine",
    "HOProcess",
    "HeardOfCollection",
    "PermanentAlphaPredicate",
    "ProcessId",
    "ReceptionVector",
    "RoundRecord",
    "TruePredicate",
    "ULivePredicate",
    "USafePredicate",
    "UteParameters",
    "Value",
    "altered_heard_of",
    "altered_span",
    "kernel",
    "safe_kernel",
]

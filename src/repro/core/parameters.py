"""Threshold parameter containers for the paper's two algorithms.

The correctness of ``A_{T,E}`` and ``U_{T,E,alpha}`` hinges on
inequalities between ``n`` (number of processes), ``alpha`` (per-round,
per-receiver corruption bound of the predicate ``P_alpha``), and the two
receive thresholds ``T`` ("Threshold", governs when the estimate ``x_p``
is updated) and ``E`` ("Enough", governs when a decision is taken).

* ``A_{T,E}`` (Theorem 1): consensus is solved under
  ``P_alpha ∧ P^{A,live}`` when ``n > E`` and ``n > T >= 2(n + 2α − E)``.
  Solutions exist iff ``α < n/4``; the symmetric choice of Proposition 4
  is ``E = T = 2(n + 2α)/3`` (the OneThirdRule thresholds at ``α = 0``).

* ``U_{T,E,α}`` (Theorem 2): consensus is solved under
  ``P_alpha ∧ P^{U,safe} ∧ P^{U,live}`` when ``n > E >= n/2 + α`` and
  ``n > T >= n/2 + α`` (and ``n > α``).  Solutions exist iff ``α < n/2``;
  the minimal choice is ``E = T = n/2 + α``.

These dataclasses validate nothing beyond basic sanity on construction;
the `satisfies_*` properties expose each inequality separately so tests
and benchmarks can deliberately construct out-of-range parameterisations
to demonstrate where correctness breaks down.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Union

Number = Union[int, float, Fraction]


def _as_fraction(x: Number) -> Fraction:
    """Convert a numeric threshold to an exact fraction for comparisons."""
    if isinstance(x, Fraction):
        return x
    if isinstance(x, int):
        return Fraction(x)
    return Fraction(x).limit_denominator(10**9)


@dataclass(frozen=True)
class AteParameters:
    """Parameters of the ``A_{T,E}`` algorithm under ``P_alpha``.

    Attributes
    ----------
    n:
        Number of processes.
    alpha:
        The bound of the safety predicate ``P_alpha`` the machine is
        expected to run under (``|AHO(p, r)| <= alpha`` for all p, r).
    threshold:
        The ``T`` parameter: ``x_p`` is updated only when strictly more
        than ``T`` messages are received.
    enough:
        The ``E`` parameter: a decision is taken when strictly more than
        ``E`` received messages carry the same value.
    """

    n: int
    alpha: Number
    threshold: Number
    enough: Number

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError(f"n must be positive, got {self.n}")
        if _as_fraction(self.alpha) < 0:
            raise ValueError(f"alpha must be non-negative, got {self.alpha}")
        if _as_fraction(self.alpha) > self.n:
            raise ValueError(f"alpha must be at most n={self.n}, got {self.alpha}")
        if _as_fraction(self.threshold) < 0 or _as_fraction(self.enough) < 0:
            raise ValueError("thresholds must be non-negative")

    # -- constructors ---------------------------------------------------------
    @classmethod
    def symmetric(cls, n: int, alpha: Number = 0) -> "AteParameters":
        """Proposition 4's symmetric choice ``E = T = 2(n + 2α)/3``.

        At ``alpha == 0`` this is exactly the OneThirdRule threshold
        ``2n/3``.
        """
        value = Fraction(2, 3) * (n + 2 * _as_fraction(alpha))
        return cls(n=n, alpha=alpha, threshold=value, enough=value)

    @classmethod
    def minimal_enough(cls, n: int, alpha: Number, enough: Number) -> "AteParameters":
        """Given ``E``, pick the smallest ``T`` allowed by Theorem 1."""
        threshold = 2 * (n + 2 * _as_fraction(alpha) - _as_fraction(enough))
        return cls(n=n, alpha=alpha, threshold=max(threshold, Fraction(0)), enough=enough)

    # -- Theorem 1 conditions --------------------------------------------------
    @property
    def satisfies_agreement_condition(self) -> bool:
        """Proposition 1: ``E >= n/2 + alpha`` and ``T >= 2(n + 2α − E)``."""
        e, t, a = map(_as_fraction, (self.enough, self.threshold, self.alpha))
        return e >= Fraction(self.n, 2) + a and t >= 2 * (self.n + 2 * a - e)

    @property
    def satisfies_integrity_condition(self) -> bool:
        """Proposition 2: ``E >= alpha`` and ``T >= 2*alpha``."""
        e, t, a = map(_as_fraction, (self.enough, self.threshold, self.alpha))
        return e >= a and t >= 2 * a

    @property
    def satisfies_termination_condition(self) -> bool:
        """Proposition 3: ``n > E >= n/2 + α`` and ``n > T >= 2(n + 2α − E)``."""
        e, t, a = map(_as_fraction, (self.enough, self.threshold, self.alpha))
        return (
            self.n > e >= Fraction(self.n, 2) + a
            and self.n > t >= 2 * (self.n + 2 * a - e)
        )

    @property
    def satisfies_theorem_1(self) -> bool:
        """Theorem 1: ``n > E`` and ``n > T >= 2(n + 2α − E)``."""
        e, t, a = map(_as_fraction, (self.enough, self.threshold, self.alpha))
        return self.n > e and self.n > t >= 2 * (self.n + 2 * a - e)

    @property
    def is_safe(self) -> bool:
        """Conditions for Agreement *and* Integrity (safety without liveness)."""
        return self.satisfies_agreement_condition and self.satisfies_integrity_condition

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"A_(T={float(_as_fraction(self.threshold)):g}, "
            f"E={float(_as_fraction(self.enough)):g}) "
            f"[n={self.n}, alpha={float(_as_fraction(self.alpha)):g}]"
        )


@dataclass(frozen=True)
class UteParameters:
    """Parameters of the ``U_{T,E,alpha}`` algorithm.

    ``alpha`` appears in the algorithm itself (the ``>= alpha + 1``
    adoption rule at line 14 of Algorithm 2), not just in the predicate,
    so it is an algorithm parameter here as well.
    """

    n: int
    alpha: Number
    threshold: Number
    enough: Number
    default_value_index: int = 0

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError(f"n must be positive, got {self.n}")
        if _as_fraction(self.alpha) < 0:
            raise ValueError(f"alpha must be non-negative, got {self.alpha}")
        if _as_fraction(self.threshold) < 0 or _as_fraction(self.enough) < 0:
            raise ValueError("thresholds must be non-negative")

    # -- constructors ---------------------------------------------------------
    @classmethod
    def minimal(cls, n: int, alpha: Number = 0) -> "UteParameters":
        """Section 4.3's minimal choice ``E = T = n/2 + alpha``."""
        value = Fraction(n, 2) + _as_fraction(alpha)
        return cls(n=n, alpha=alpha, threshold=value, enough=value)

    # -- Theorem 2 conditions --------------------------------------------------
    @property
    def satisfies_agreement_condition(self) -> bool:
        """Proposition 5: ``E >= n/2 + alpha`` and ``T >= n/2 + alpha``."""
        e, t, a = map(_as_fraction, (self.enough, self.threshold, self.alpha))
        half_plus = Fraction(self.n, 2) + a
        return e >= half_plus and t >= half_plus

    @property
    def satisfies_integrity_condition(self) -> bool:
        """Proposition 6: ``E >= n/2 + alpha``."""
        e, a = map(_as_fraction, (self.enough, self.alpha))
        return e >= Fraction(self.n, 2) + a

    @property
    def satisfies_theorem_2(self) -> bool:
        """Theorem 2: ``n > E >= n/2+α``, ``n > T >= n/2+α`` and ``n > α``."""
        e, t, a = map(_as_fraction, (self.enough, self.threshold, self.alpha))
        half_plus = Fraction(self.n, 2) + a
        return self.n > e >= half_plus and self.n > t >= half_plus and self.n > a

    @property
    def is_safe(self) -> bool:
        return self.satisfies_agreement_condition and self.satisfies_integrity_condition

    @property
    def u_safe_minimum(self) -> Fraction:
        """The lower bound of ``P^{U,safe}``: ``max(n + 2α − E − 1, T, α)``.

        Every process must *safely* hear of strictly more processes than
        this number at every round for ``P^{U,safe}`` to hold.
        """
        e, t, a = map(_as_fraction, (self.enough, self.threshold, self.alpha))
        return max(self.n + 2 * a - e - 1, t, a)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"U_(T={float(_as_fraction(self.threshold)):g}, "
            f"E={float(_as_fraction(self.enough)):g}, "
            f"alpha={float(_as_fraction(self.alpha)):g}) [n={self.n}]"
        )

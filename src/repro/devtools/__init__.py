"""Developer tooling that ships with the package but never runs in production.

Currently one tool: :mod:`repro.devtools.lint`, the AST-based invariant
linter (``repro-ho lint`` / ``python -m repro.devtools.lint``).
"""

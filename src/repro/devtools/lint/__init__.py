"""repro-lint: the AST-based invariant linter.

The scaling story built up over PRs 3-6 (shared caches, lease-based
work queues, work stealing, crash recovery) rests on invariants the
code states only in prose: runs are deterministic, shared-directory
writes are crash-atomic through the `CacheStore` seam, serialised
shapes only change with a schema-version bump, registries are used
honestly.  This package turns those invariants into machine-checked
lint rules, grouped in four families:

* **D** determinism — `D201` unseeded randomness, `D202` wall-clock /
  ambient entropy, `D203` set iteration order;
* **A** atomicity — `A301` direct filesystem writes bypassing
  `repro/runner/store.py`;
* **S** serialisation — `S401` strict `json.dumps` discipline, `S402`
  the schema fingerprint snapshot;
* **R** registries — `R501` explicit `equivalent_to_reference`
  declarations, `R502` exact-class registration targets;

plus the linter's own hygiene rules (`L901` justified suppressions,
`L902` parse errors).  Run it with `python -m repro.devtools.lint` or
`repro-ho lint`; rules register through
:func:`repro.devtools.lint.register_rule`, the same decorator-friendly,
did-you-mean-equipped contract as the engine-backend registry.
"""

# Importing the rule modules is what registers the built-in rules.
from . import atomicity, determinism, engine, registration, schema, suppressions
from .engine import LintReport, lint_paths
from .findings import Finding
from .rules import (
    Rule,
    _mark_builtin_rules,
    available_rules,
    get_rule,
    register_rule,
    rule_catalogue_markdown,
)

_mark_builtin_rules()

__all__ = [
    "Finding",
    "LintReport",
    "Rule",
    "available_rules",
    "get_rule",
    "lint_paths",
    "register_rule",
    "rule_catalogue_markdown",
]

"""Inline suppression comments: `# repro-lint: ignore[D201]: why`.

A suppression silences named rules on its own line and on the line
directly below (so it can trail the offending statement or sit on its
own line above it).  The justification text after the closing bracket
is **required** — an unjustified suppression does not suppress and is
itself reported (rule L901), because "we looked at this and here is
why it is fine" is the entire value of the mechanism.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterator, List

from .findings import Finding
from .rules import ModuleContext, Rule, register_rule

_SUPPRESSION = re.compile(
    r"#\s*repro-lint:\s*ignore\[(?P<rules>[^\]]*)\]\s*:?\s*(?P<why>.*?)\s*$"
)
_RULE_LIST = re.compile(r"^[A-Z]\d{3}(\s*,\s*[A-Z]\d{3})*$")


@dataclass(frozen=True)
class Suppression:
    """One parsed suppression comment."""

    line: int
    rules: frozenset
    justification: str
    malformed: str = ""

    def covers(self, finding: Finding) -> bool:
        """Whether this suppression silences ``finding``.

        Requires a well-formed comment with a justification, a matching
        rule id, and the finding on the comment's line or the next one.
        """
        return (
            not self.malformed
            and bool(self.justification)
            and finding.rule in self.rules
            and finding.line in (self.line, self.line + 1)
        )


def _comment_tokens(source: str) -> Iterator[tuple]:
    """(line, text) for every comment token; tokenization errors yield
    nothing (the engine reports unparseable files separately)."""
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return


def collect_suppressions(source: str) -> List[Suppression]:
    """Parse every `repro-lint: ignore[...]` comment in ``source``.

    Only real comment tokens count — a docstring that merely *mentions*
    the syntax is not a suppression.
    """
    suppressions: List[Suppression] = []
    for lineno, text in _comment_tokens(source):
        if "repro-lint" not in text:
            continue
        match = _SUPPRESSION.search(text)
        if match is None:
            suppressions.append(
                Suppression(
                    line=lineno,
                    rules=frozenset(),
                    justification="",
                    malformed="comment mentions repro-lint but does not match "
                    "`# repro-lint: ignore[RULE, ...]: justification`",
                )
            )
            continue
        rules_text = match.group("rules").strip()
        why = match.group("why").strip()
        if not _RULE_LIST.match(rules_text):
            suppressions.append(
                Suppression(
                    line=lineno,
                    rules=frozenset(),
                    justification=why,
                    malformed=f"rule list {rules_text!r} is not a "
                    "comma-separated list of ids like D201",
                )
            )
            continue
        suppressions.append(
            Suppression(
                line=lineno,
                rules=frozenset(r.strip() for r in rules_text.split(",")),
                justification=why,
            )
        )
    return suppressions


def apply_suppressions(
    findings: List[Finding], suppressions: List[Suppression]
) -> Dict[str, List[Finding]]:
    """Split ``findings`` into kept vs suppressed by the parsed comments."""
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for item in findings:
        covering = next((s for s in suppressions if s.covers(item)), None)
        if covering is None:
            kept.append(item)
        else:
            suppressed.append(
                Finding(
                    rule=item.rule,
                    path=item.path,
                    line=item.line,
                    col=item.col,
                    message=item.message,
                    justification=covering.justification,
                )
            )
    return {"kept": kept, "suppressed": suppressed}


@register_rule
class SuppressionDisciplineRule(Rule):
    """Every `repro-lint: ignore[...]` comment is well-formed and carries a non-empty justification.

    An unjustified suppression is indistinguishable from "make the
    linter shut up", so it does not suppress anything and is itself a
    finding.  The justification should say why the invariant is safe to
    waive at this exact site (for example: "canonical cache-key
    encoding — changing it would invalidate every existing cache").
    """

    id = "L901"
    name = "suppression-justified"

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        for suppression in collect_suppressions(ctx.source):
            if suppression.malformed:
                message = f"malformed suppression: {suppression.malformed}"
            elif not suppression.justification:
                message = (
                    "suppression without a justification; add text after the "
                    "bracket: `# repro-lint: ignore[D201]: why this is safe`"
                )
            else:
                continue
            yield Finding(
                rule=self.id,
                path=ctx.display_path,
                line=suppression.line,
                col=0,
                message=message,
            )

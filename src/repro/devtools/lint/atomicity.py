"""A-family rules: store-seam (atomicity) discipline.

The shared cache and queue directories are multi-writer: several worker
processes, possibly on different machines over fsspec, race on the same
files.  `repro/runner/store.py` is the one module allowed to touch the
filesystem directly — its `CacheStore` implementations encode the
crash-atomic publish protocol (tmp file + exclusive hard link).  A raw
`open(..., "w")` anywhere else in `runner/` reintroduces the torn-write
and half-published-record failure modes PR 4 eliminated.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, Optional

from .findings import Finding
from .rules import (
    ImportMap,
    ModuleContext,
    Rule,
    constant_str,
    finding,
    iter_calls,
    register_rule,
)

_SCOPE_PREFIX = "repro/runner/"
_SEAM_MODULE = "repro/runner/store.py"

# Method names that write through a Path-like receiver.
_WRITE_METHODS: FrozenSet[str] = frozenset({"write_text", "write_bytes"})

# Module-level filesystem mutators that publish or move files.
_FS_MUTATORS: FrozenSet[str] = frozenset(
    {
        "os.rename",
        "os.replace",
        "os.link",
        "os.symlink",
        "shutil.move",
        "shutil.copy",
        "shutil.copy2",
        "shutil.copyfile",
    }
)


def _receiver_name(func: ast.Attribute) -> Optional[str]:
    """Trailing identifier of the method receiver (`self.store.write_text`
    -> `store`), or None for computed receivers like `Path(p).write_text`."""
    value = func.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        return value.attr
    return None


def _is_store_receiver(func: ast.Attribute) -> bool:
    """Whether a write method is invoked *through* the seam.

    `CacheStore` implementations are conventionally bound to names
    ending in `store` (`self.store`, `self._store`, a bare `store`);
    writes through such a receiver are the seam working as designed,
    not a bypass of it.
    """
    name = _receiver_name(func)
    return name is not None and name.lower().endswith("store")


def _open_write_mode(call: ast.Call) -> Optional[str]:
    """The mode string if this `open(...)` call writes, else None.

    The mode is the second positional argument or the `mode=` keyword;
    absent means `"r"`.  A non-constant mode is treated as writing —
    the seam exists precisely so callers never need a dynamic mode.
    """
    mode_node: Optional[ast.expr] = None
    if len(call.args) >= 2:
        mode_node = call.args[1]
    else:
        for kw in call.keywords:
            if kw.arg == "mode":
                mode_node = kw.value
    if mode_node is None:
        return None
    mode = constant_str(mode_node)
    if mode is None:
        return "<dynamic>"
    return mode if any(flag in mode for flag in "wax+") else None


@register_rule
class StoreSeamRule(Rule):
    """No direct filesystem writes in `repro/runner/` outside `store.py`: shared-directory writes go through the `CacheStore` protocol.

    `open(..., "w"/"a"/"x"/"+")`, `Path.write_text`/`write_bytes`,
    `os.rename`/`os.replace`/`os.link`/`os.symlink` and `shutil` copy
    helpers all bypass the crash-atomic publish protocol (write to a
    tmp name, then `try_create` via exclusive hard link) that makes
    records appear all-or-nothing to racing workers.  Use the store
    passed down from the runner; `store.py` itself is the sanctioned
    seam and is exempt, and so are write methods invoked through a
    receiver named `*store` (`self.store.write_text(...)` is the seam
    working, not a bypass).
    """

    id = "A301"
    name = "store-seam"

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.module_path.startswith(_SCOPE_PREFIX):
            return
        if ctx.module_path == _SEAM_MODULE:
            return
        imports = ImportMap(ctx.tree)
        for call in iter_calls(ctx.tree):
            target = imports.canonical_call(call.func)
            if target == "open":
                mode = _open_write_mode(call)
                if mode is not None:
                    yield finding(
                        self,
                        ctx,
                        call,
                        f"open(..., {mode!r}) bypasses the CacheStore seam; "
                        "publish through the store (repro/runner/store.py)",
                    )
                continue
            if target in _FS_MUTATORS:
                yield finding(
                    self,
                    ctx,
                    call,
                    f"{target}() bypasses the CacheStore seam; use the "
                    "store's try_create/delete protocol instead",
                )
                continue
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in _WRITE_METHODS
                and not _is_store_receiver(call.func)
            ):
                yield finding(
                    self,
                    ctx,
                    call,
                    f".{call.func.attr}(...) bypasses the CacheStore seam; "
                    "write through store.write_text / store.try_create",
                )

"""The lint driver: walk files, run rules, apply suppressions + baseline.

Kept separate from the CLI so tests (and the docs builder) can run the
whole pipeline in-process and inspect the structured
:class:`LintReport` instead of parsing text output.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence

from .baseline import BaselineEntry, BaselineMatch, load_baseline, match_baseline
from .findings import Finding
from .rules import (
    ModuleContext,
    Rule,
    available_rules,
    get_rule,
    module_relpath,
    register_rule,
)
from .suppressions import apply_suppressions, collect_suppressions


@register_rule
class ParseErrorRule(Rule):
    """Every linted file parses as Python; a `SyntaxError` is reported as a finding instead of crashing the run.

    Emitted by the engine itself (not a per-node check): a file the
    linter cannot parse is a file whose invariants nobody is checking,
    so it fails the run like any other finding.
    """

    id = "L902"
    name = "parse-error"


@dataclass
class LintReport:
    """Everything one lint run produced, pre-verdict."""

    checked_files: int = 0
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    accepted: List[Finding] = field(default_factory=list)
    stale_baseline: List[BaselineEntry] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when nothing unbaselined survived (the exit-0 condition)."""
        return not self.findings


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into a deterministic .py file sequence."""
    seen = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def display_path(path: Path) -> str:
    """Posix path relative to the invocation directory when possible."""
    resolved = path.resolve()
    try:
        return resolved.relative_to(Path.cwd()).as_posix()
    except ValueError:
        return resolved.as_posix()


def _parse_failure(path: str, exc: SyntaxError) -> Finding:
    return Finding(
        rule="L902",
        path=path,
        line=exc.lineno or 1,
        col=(exc.offset or 1) - 1,
        message=f"file does not parse: {exc.msg}",
    )


def lint_paths(
    paths: Sequence[Path],
    rule_ids: Optional[Sequence[str]] = None,
    baseline_path: Optional[Path] = None,
) -> LintReport:
    """Run ``rule_ids`` (default: all registered) over ``paths``.

    Raises :class:`repro.devtools.lint.baseline.BaselineError` when the
    baseline file itself is invalid — a broken baseline must fail the
    run loudly, not quietly accept everything.
    """
    selected = list(rule_ids) if rule_ids else available_rules()
    rules: List[Rule] = [get_rule(rule_id)() for rule_id in selected]
    report = LintReport()
    raw: List[Finding] = []
    for path in iter_python_files(paths):
        shown = display_path(path)
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raw.append(_parse_failure(shown, exc))
            report.checked_files += 1
            continue
        ctx = ModuleContext(
            path=path,
            display_path=shown,
            module_path=module_relpath(path),
            tree=tree,
            source=source,
        )
        suppressions = collect_suppressions(source)
        file_findings: List[Finding] = []
        for rule in rules:
            file_findings.extend(rule.check_module(ctx))
        split = apply_suppressions(file_findings, suppressions)
        raw.extend(split["kept"])
        report.suppressed.extend(split["suppressed"])
        report.checked_files += 1
    for rule in rules:
        raw.extend(rule.finalize())
    raw.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.message))
    entries = load_baseline(baseline_path) if baseline_path else []
    matched: BaselineMatch = match_baseline(raw, entries)
    report.findings = matched.new
    report.accepted = matched.accepted
    report.stale_baseline = matched.stale
    return report

"""The checked-in baseline of accepted pre-existing findings.

The baseline (`.repro-lint-baseline.json` at the repo root) is the
second suppression channel: where an inline comment annotates one
statement, the baseline records whole accepted findings — matched by
(rule, path, message), deliberately ignoring line numbers so unrelated
edits to a file do not churn it.  Every entry requires a justification,
and entries that no longer match anything are reported as stale so the
file only ever shrinks by someone noticing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple

from .findings import Finding

DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"

_PLACEHOLDER = "TODO: justify this accepted finding"


class BaselineError(ValueError):
    """A baseline file that cannot be trusted (unparseable or unjustified)."""


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding: identity plus the reason it is acceptable."""

    rule: str
    path: str
    message: str
    justification: str

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.message)

    def as_dict(self) -> Dict[str, str]:
        return {
            "rule": self.rule,
            "path": self.path,
            "message": self.message,
            "justification": self.justification,
        }


@dataclass
class BaselineMatch:
    """Result of comparing a finding set against the baseline."""

    new: List[Finding]
    accepted: List[Finding]
    stale: List[BaselineEntry]


def load_baseline(path: Path, strict: bool = True) -> List[BaselineEntry]:
    """Load and validate a baseline file; missing file means empty.

    ``strict=False`` tolerates missing/placeholder justifications — the
    `--baseline-update` repair path uses it so a half-filled baseline
    can still be regenerated without losing the justifications it has.
    """
    if not path.exists():
        return []
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise BaselineError(f"baseline {path} is unreadable: {exc}") from exc
    if not isinstance(payload, dict) or not isinstance(payload.get("findings"), list):
        raise BaselineError(
            f"baseline {path} must be an object with a 'findings' list"
        )
    entries: List[BaselineEntry] = []
    for raw in payload["findings"]:
        if not isinstance(raw, dict):
            raise BaselineError(f"baseline {path}: entries must be objects")
        try:
            entry = BaselineEntry(
                rule=str(raw["rule"]),
                path=str(raw["path"]),
                message=str(raw["message"]),
                justification=str(raw.get("justification", "")).strip(),
            )
        except KeyError as exc:
            raise BaselineError(
                f"baseline {path}: entry missing required field {exc}"
            ) from exc
        if strict and (not entry.justification or entry.justification == _PLACEHOLDER):
            raise BaselineError(
                f"baseline {path}: entry for {entry.rule} at {entry.path} has "
                "no justification; every accepted finding must say why it is "
                "acceptable"
            )
        entries.append(entry)
    return entries


def match_baseline(findings: List[Finding], entries: List[BaselineEntry]) -> BaselineMatch:
    """Split findings into new vs accepted; report stale baseline entries.

    Matching is by multiset: two identical findings need two baseline
    entries, so duplicating an accepted violation still fails the build.
    """
    budget: Dict[Tuple[str, str, str], int] = {}
    for entry in entries:
        budget[entry.key()] = budget.get(entry.key(), 0) + 1
    new: List[Finding] = []
    accepted: List[Finding] = []
    for item in findings:
        key = (item.rule, item.path, item.message)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            accepted.append(item)
        else:
            new.append(item)
    stale = [entry for entry in entries if budget.get(entry.key(), 0) > 0]
    consumed: Dict[Tuple[str, str, str], int] = {}
    deduped_stale: List[BaselineEntry] = []
    for entry in stale:
        left = budget[entry.key()] - consumed.get(entry.key(), 0)
        if left > 0:
            consumed[entry.key()] = consumed.get(entry.key(), 0) + 1
            deduped_stale.append(entry)
    return BaselineMatch(new=new, accepted=accepted, stale=deduped_stale)


def write_baseline(
    path: Path, findings: List[Finding], previous: List[BaselineEntry]
) -> List[BaselineEntry]:
    """Rewrite the baseline to exactly the current findings
    (`--baseline-update`), preserving justifications for entries that
    survive and inserting a placeholder (which the loader rejects until
    a human fills it in) for newly accepted ones."""
    kept_justifications: Dict[Tuple[str, str, str], List[str]] = {}
    for entry in previous:
        kept_justifications.setdefault(entry.key(), []).append(entry.justification)
    entries: List[BaselineEntry] = []
    for item in sorted(findings, key=lambda f: (f.path, f.rule, f.line, f.message)):
        key = (item.rule, item.path, item.message)
        pool = kept_justifications.get(key, [])
        justification = pool.pop(0) if pool else _PLACEHOLDER
        entries.append(
            BaselineEntry(
                rule=item.rule,
                path=item.path,
                message=item.message,
                justification=justification,
            )
        )
    payload = {
        "comment": "Accepted repro-lint findings; every entry needs a "
        "justification or the loader refuses the file.",
        "findings": [entry.as_dict() for entry in entries],
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n",
        encoding="utf-8",
    )
    return entries

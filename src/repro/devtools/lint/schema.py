"""S-family rules: serialisation and schema discipline.

Cache records and queue payloads are long-lived, shared artefacts: a
worker on one interpreter version must parse what another wrote.  S401
pins the `json.dumps` call discipline (strict floats, no silent
`default=` coercion); S402 pins the *shapes* — a checked-in fingerprint
of every serialised record and queue payload that fails the build when
a shape changes without the matching schema-version bump.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Dict, Iterator, List, Tuple

from .findings import Finding
from .rules import (
    ImportMap,
    ModuleContext,
    Rule,
    call_keywords,
    finding,
    iter_calls,
    register_rule,
)

_SCOPE_PREFIX = "repro/runner/"

SNAPSHOT_PATH = Path(__file__).resolve().parent / "schema_snapshot.json"


@register_rule
class JsonDumpsRule(Rule):
    """Every `json.dumps` in `repro/runner/` passes `allow_nan=False` and never passes `default=`.

    `allow_nan=True` (the stdlib default) emits bare `NaN`/`Infinity`
    tokens that are not JSON and that other parsers reject — a poisoned
    record in a shared cache.  A `default=` hook silently coerces
    unserialisable objects, so two workers can write byte-different
    payloads for the same logical record; unsupported types must fail
    loudly at the producer instead.
    """

    id = "S401"
    name = "strict-json-dumps"

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.module_path.startswith(_SCOPE_PREFIX):
            return
        imports = ImportMap(ctx.tree)
        for call in iter_calls(ctx.tree):
            if imports.canonical_call(call.func) != "json.dumps":
                continue
            keywords = call_keywords(call)
            allow_nan = keywords.get("allow_nan")
            if not (
                isinstance(allow_nan, ast.Constant) and allow_nan.value is False
            ):
                yield finding(
                    self,
                    ctx,
                    call,
                    "json.dumps in a cache/queue path must pass "
                    "allow_nan=False (bare NaN/Infinity is not JSON)",
                )
            if "default" in keywords:
                yield finding(
                    self,
                    ctx,
                    call,
                    "json.dumps in a cache/queue path must not pass default= "
                    "(silent coercion breaks byte-identical payloads)",
                )


def _queue_payload_shapes(source: str) -> List[List[str]]:
    """Key sets of every dict literal in ``source`` carrying a "schema" key.

    Every queue artefact the distributed module writes (batch, manifest,
    lease, result envelope, cut marker, poison record, retire request)
    self-describes with a ``"schema": QUEUE_SCHEMA_VERSION`` entry, so
    collecting dict literals keyed on it enumerates the on-disk queue
    shapes without importing or executing anything.
    """
    tree = ast.parse(source)
    shapes: set = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Dict):
            continue
        keys: List[str] = []
        for key in node.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                keys.append(key.value)
        if "schema" in keys:
            shapes.add(tuple(sorted(set(keys))))
    return [list(shape) for shape in sorted(shapes)]


def compute_schema_shapes() -> Dict[str, object]:
    """The current serialised-shape fingerprint of the cache and queue.

    Record shapes come from instantiating the dataclasses and reading
    their ``as_dict`` key sets (the authoritative serialisation order);
    queue shapes come from a static scan of ``distributed.py``.  Imports
    are deliberately lazy so the linter itself stays import-light.
    """
    from repro.runner import distributed
    from repro.runner.records import RunnerStats, RunRecord
    from repro.runner.reduce import ReducedRecord
    from repro.runner.spec import CACHE_SCHEMA_VERSION

    return {
        "cache_schema_version": CACHE_SCHEMA_VERSION,
        "queue_schema_version": distributed.QUEUE_SCHEMA_VERSION,
        "run_record": sorted(RunRecord().as_dict()),
        "reduced_record": sorted(ReducedRecord().as_dict()),
        "runner_stats": sorted(RunnerStats().as_dict()),
        "queue_payloads": _queue_payload_shapes(
            Path(distributed.__file__).read_text(encoding="utf-8")
        ),
    }


def write_schema_snapshot(path: Path = SNAPSHOT_PATH) -> Dict[str, object]:
    """Refresh the checked-in fingerprint (the `--update-schema-snapshot` flow)."""
    shapes = compute_schema_shapes()
    path.write_text(
        json.dumps(shapes, indent=2, sort_keys=True, allow_nan=False) + "\n",
        encoding="utf-8",
    )
    return shapes


_VERSION_KEYS = {
    "run_record": "cache_schema_version",
    "reduced_record": "cache_schema_version",
    "runner_stats": "cache_schema_version",
    "queue_payloads": "queue_schema_version",
}

_VERSION_NAMES = {
    "cache_schema_version": "CACHE_SCHEMA_VERSION",
    "queue_schema_version": "QUEUE_SCHEMA_VERSION",
}


@register_rule
class SchemaFingerprintRule(Rule):
    """The serialised `RunRecord`/`ReducedRecord`/queue-payload shapes match the checked-in fingerprint; shape changes require a schema-version bump.

    Old records live in shared caches indefinitely, so adding, renaming
    or dropping a serialised field without bumping
    `CACHE_SCHEMA_VERSION` / `QUEUE_SCHEMA_VERSION` makes new code parse
    stale bytes (or vice versa) silently.  The fingerprint lives in
    `schema_snapshot.json` next to the linter; after a deliberate shape
    change *and* version bump, refresh it with
    `repro-ho lint --update-schema-snapshot`.
    """

    id = "S402"
    name = "schema-fingerprint"

    def finalize(self) -> Iterator[Finding]:
        display = SNAPSHOT_PATH.name
        if not SNAPSHOT_PATH.exists():
            yield self._finding(
                display,
                "schema fingerprint snapshot is missing; generate it with "
                "--update-schema-snapshot",
            )
            return
        try:
            recorded = json.loads(SNAPSHOT_PATH.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            yield self._finding(display, f"schema fingerprint snapshot unreadable: {exc}")
            return
        current = compute_schema_shapes()
        changed = [key for key in current if current[key] != recorded.get(key)]
        shape_keys = [key for key in changed if key in _VERSION_KEYS]
        for key, bumped in self._shape_changes(shape_keys, current, recorded):
            if bumped:
                yield self._finding(
                    display,
                    f"serialised shape of {key!r} changed alongside a "
                    f"{_VERSION_NAMES[_VERSION_KEYS[key]]} bump; refresh the "
                    "snapshot with --update-schema-snapshot",
                )
            else:
                yield self._finding(
                    display,
                    f"serialised shape of {key!r} changed without a "
                    f"{_VERSION_NAMES[_VERSION_KEYS[key]]} bump; old cache/"
                    "queue artefacts would be parsed with the wrong schema",
                )
        for key in changed:
            if key in _VERSION_NAMES and not self._explained(key, shape_keys):
                yield self._finding(
                    display,
                    f"{_VERSION_NAMES[key]} changed "
                    f"({recorded.get(key)!r} -> {current[key]!r}); refresh the "
                    "snapshot with --update-schema-snapshot",
                )

    @staticmethod
    def _shape_changes(
        shape_keys: List[str],
        current: Dict[str, object],
        recorded: Dict[str, object],
    ) -> Iterator[Tuple[str, bool]]:
        for key in shape_keys:
            version_key = _VERSION_KEYS[key]
            bumped = current.get(version_key) != recorded.get(version_key)
            yield key, bumped

    @staticmethod
    def _explained(version_key: str, shape_keys: List[str]) -> bool:
        return any(_VERSION_KEYS[key] == version_key for key in shape_keys)

    def _finding(self, path: str, message: str) -> Finding:
        return Finding(rule=self.id, path=path, line=1, col=0, message=message)

"""D-family rules: the determinism contract.

Every scaling feature since PR 3 — cross-backend cache sharing, lease
races, work stealing, crash recovery — assumes runs are byte-identical
given the same spec and seed.  These rules machine-check the three ways
that contract silently breaks: ambient randomness, ambient clocks, and
hash-randomised set iteration order.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, Set

from .findings import Finding
from .rules import ImportMap, ModuleContext, Rule, finding, iter_calls, register_rule

# Wall-clock / ambient-entropy call targets D202 refuses, keyed by the
# canonical dotted name resolved through the module's imports.
_WALL_CLOCK: FrozenSet[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

# The sanctioned clock/entropy seam: modules (by repro-relative path)
# allowed to read specific ambient sources.  The distributed queue is
# the only legal wall-clock consumer — lease TTLs, heartbeats and
# backoff deadlines are *meant* to observe real time; none of it ever
# reaches a cache key or a serialised record payload.
_CLOCK_SEAM: Dict[str, FrozenSet[str]] = {
    "repro/runner/distributed.py": frozenset({"time.time", "uuid.uuid4"}),
}

# random-module callables that construct an explicitly seeded generator
# (or are pure helpers) rather than drawing from the ambient global RNG.
_SEEDED_CONSTRUCTORS: FrozenSet[str] = frozenset({"random.Random"})

# NumPy generator constructors: fine when given a seed argument,
# ambient-entropy in disguise when called bare.
_NUMPY_CONSTRUCTORS: FrozenSet[str] = frozenset(
    {"numpy.random.RandomState", "numpy.random.default_rng"}
)

# The sanctioned NumPy-RNG seam, mirroring ``_CLOCK_SEAM``: the RNG
# bridge deliberately constructs bare ``RandomState()`` instances as
# empty shells whose state is immediately overwritten with
# ``set_state(...)`` lifted from an explicitly seeded ``random.Random``
# — no ambient entropy survives the overwrite.
_NUMPY_RNG_SEAM: FrozenSet[str] = frozenset({"repro/adversary/rng_bridge.py"})


@register_rule
class UnseededRandomRule(Rule):
    """No module-level `random.*` calls: all randomness flows from an explicitly seeded `random.Random(seed)`.

    The global `random` module draws from interpreter-wide ambient state,
    so two workers replaying the same run spec diverge and the shared
    cache serves records that no longer reproduce.  Construct a
    `random.Random(seed)` (seed derived from the run spec) and thread it
    explicitly; `random.Random()` *without* a seed argument is just the
    ambient RNG wearing a disguise and is flagged too.
    """

    id = "D201"
    name = "unseeded-random"

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for call in iter_calls(ctx.tree):
            target = imports.canonical_call(call.func)
            if target is None or not target.startswith("random."):
                continue
            if target in _SEEDED_CONSTRUCTORS:
                if call.args or call.keywords:
                    continue
                yield finding(
                    self,
                    ctx,
                    call,
                    "random.Random() without a seed argument draws from ambient "
                    "entropy; pass a seed derived from the run spec",
                )
                continue
            yield finding(
                self,
                ctx,
                call,
                f"module-level call {target}() uses the ambient global RNG; "
                "thread an explicitly seeded random.Random(seed) instead",
            )


@register_rule
class WallClockRule(Rule):
    """No wall-clock or ambient-entropy reads (`time.time`, `datetime.now`, `os.urandom`, `uuid.uuid4`) outside the allowlisted clock seam.

    A wall-clock read that leaks into a cache key, record payload or
    seed makes the run irreproducible and the cache unshareable.  The
    only sanctioned consumer is `repro/runner/distributed.py`, whose
    lease TTLs and ad-hoc campaign ids are *supposed* to observe real
    time; monotonic duration clocks (`time.monotonic`,
    `time.perf_counter`) are always fine because they never enter
    serialised state.
    """

    id = "D202"
    name = "wall-clock"

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        allowed = _CLOCK_SEAM.get(ctx.module_path, frozenset())
        imports = ImportMap(ctx.tree)
        for call in iter_calls(ctx.tree):
            target = imports.canonical_call(call.func)
            if target is None:
                continue
            # `from datetime import datetime` resolves bare `datetime.now`
            # to `datetime.datetime.now` via the import map already; also
            # catch the fully qualified spelling.
            if target not in _WALL_CLOCK or target in allowed:
                continue
            yield finding(
                self,
                ctx,
                call,
                f"wall-clock/entropy read {target}() outside the allowlisted "
                "clock seam; derive the value from the run spec or route it "
                "through repro/runner/distributed.py",
            )


@register_rule
class UnseededNumpyRandomRule(Rule):
    """No `numpy.random.*` module-level calls and no unseeded `RandomState()` / `default_rng()`: NumPy randomness must be seeded or lifted from a seeded generator.

    `np.random.rand(...)` and friends draw from NumPy's interpreter-wide
    global `RandomState` — the same ambient-state hazard D201 bans for
    the stdlib, now that batch planners vectorise fault schedules
    through NumPy.  `RandomState()` and `default_rng()` *without* a seed
    argument pull entropy from the OS and are flagged too; pass a seed
    derived from the run spec, or share the state of an already-seeded
    `random.Random` through `repro.adversary.rng_bridge` (that module is
    the one sanctioned seam: its bare `RandomState()` shells are
    overwritten with `set_state(...)` before any draw).
    """

    id = "D204"
    name = "unseeded-numpy-random"

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.module_path in _NUMPY_RNG_SEAM:
            return
        imports = ImportMap(ctx.tree)
        for call in iter_calls(ctx.tree):
            target = imports.canonical_call(call.func)
            if target is None or not target.startswith("numpy.random."):
                continue
            if target in _NUMPY_CONSTRUCTORS:
                if call.args or call.keywords:
                    continue
                yield finding(
                    self,
                    ctx,
                    call,
                    f"{target.rsplit('.', 1)[-1]}() without a seed argument "
                    "draws from ambient entropy; pass a seed derived from the "
                    "run spec or lift state through repro.adversary.rng_bridge",
                )
                continue
            yield finding(
                self,
                ctx,
                call,
                f"module-level call {target}() uses NumPy's ambient global "
                "RNG; draw from a seeded RandomState/Generator threaded "
                "explicitly",
            )


def _is_set_expression(node: ast.expr, imports: ImportMap) -> bool:
    """True for set literals/comprehensions and bare set()/frozenset() calls."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        target = imports.canonical_call(node.func)
        return target in {"set", "frozenset"}
    return False


@register_rule
class SetIterationRule(Rule):
    """No iteration over a set literal, set comprehension or bare `set()` call: wrap it in `sorted(...)` first.

    Set iteration order depends on `PYTHONHASHSEED`, so a set that flows
    into record construction or serialised output produces
    byte-different payloads across workers — poison for a
    content-addressed cache.  `sorted({...})` and `sorted(set(...))`
    pin the order and pass the rule.
    """

    id = "D203"
    name = "set-iteration-order"

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        iterated: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterated.add(id(node.iter))
            elif isinstance(node, ast.comprehension):
                iterated.add(id(node.iter))
            elif isinstance(node, ast.Call):
                target = imports.canonical_call(node.func)
                if target in {"list", "tuple", "enumerate"} and len(node.args) == 1:
                    iterated.add(id(node.args[0]))
        for node in ast.walk(ctx.tree):
            if id(node) in iterated and _is_set_expression(node, imports):
                yield finding(
                    self,
                    ctx,
                    node,
                    "iteration over a set has hash-randomised order; wrap it "
                    "in sorted(...) before it flows into records or output",
                )

"""Rule framework: the registry, the :class:`Rule` base class and shared
AST helpers.

Rules register through the same :mod:`repro.core.registries` surface as
engine backends, kernels and planners: a decorator-friendly
``register_rule`` with built-in overwrite guards and did-you-mean
lookups.  Each rule's docstring doubles as its catalogue entry in
``docs/static-analysis.md`` — the first line is the summary, the rest is
the rationale (see :func:`rule_catalogue_markdown`).

Rule identifiers group into families:

* ``Dxxx`` — determinism (seeded randomness, wall-clock, set ordering),
* ``Axxx`` — atomicity / store-seam discipline,
* ``Sxxx`` — serialisation and schema discipline,
* ``Rxxx`` — registry discipline,
* ``Lxxx`` — the linter's own hygiene (suppression justifications,
  unparseable files).
"""

from __future__ import annotations

import ast
import inspect
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Type

from repro.core.registries import guard_builtin_overwrite, unknown_key_error

from .findings import Finding

_RULE_ID = re.compile(r"^[A-Z]\d{3}$")


@dataclass(frozen=True)
class ModuleContext:
    """Everything a rule sees about one parsed source file.

    ``display_path`` is what findings report (posix, relative to the
    invocation directory when possible); ``module_path`` is the path
    rebased at the innermost ``repro`` package directory (for example
    ``repro/runner/spec.py``), which is what path-scoped rules match on
    so fixture trees under ``tmp_path/repro/...`` scope identically to
    the real source tree.
    """

    path: Path
    display_path: str
    module_path: str
    tree: ast.Module
    source: str


class Rule:
    """Base class for lint rules.

    Subclasses set ``id`` (``D201``-style) and ``name`` (kebab-case) and
    override :meth:`check_module`; project-level rules that need to see
    the whole tree override :meth:`finalize` instead, which runs once
    after every file has been visited.  A fresh instance is created per
    lint run, so rules may accumulate state across files.
    """

    id: str = ""
    name: str = ""

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one parsed file; default: none."""
        return iter(())

    def finalize(self) -> Iterator[Finding]:
        """Yield project-level findings after all files; default: none."""
        return iter(())


_RULES: Dict[str, Type[Rule]] = {}
_BUILTIN_RULE_IDS: set = set()


def register_rule(rule: Optional[Type[Rule]] = None, *, overwrite: bool = False):
    """Register a :class:`Rule` subclass under its ``id``.

    Usable bare (``@register_rule``) or parenthesised
    (``@register_rule(overwrite=True)``), mirroring ``register_backend``.
    Built-in rule ids are guarded against accidental replacement.
    """

    def _register(cls: Type[Rule]) -> Type[Rule]:
        if not (isinstance(getattr(cls, "id", None), str) and _RULE_ID.match(cls.id)):
            raise ValueError(f"rule id must match [A-Z]ddd, got {getattr(cls, 'id', None)!r}")
        if not getattr(cls, "name", ""):
            raise ValueError(f"rule {cls.id} must declare a kebab-case name")
        if not (cls.__doc__ or "").strip():  # getdoc() would inherit Rule's
            raise ValueError(f"rule {cls.id} must carry a docstring (it is the catalogue entry)")
        guard_builtin_overwrite(
            "lint rule",
            cls.id,
            is_builtin=cls.id in _BUILTIN_RULE_IDS and cls is not _RULES.get(cls.id),
            overwrite=overwrite,
        )
        _RULES[cls.id] = cls
        return cls

    if rule is None:
        return _register
    return _register(rule)


def _mark_builtin_rules() -> None:
    """Freeze the currently registered ids as built-ins (called once all
    shipped rule modules are imported, from the package ``__init__``)."""
    _BUILTIN_RULE_IDS.update(_RULES)


def available_rules() -> List[str]:
    """Sorted registered rule ids."""
    return sorted(_RULES)


def get_rule(rule_id: str) -> Type[Rule]:
    """Look up a rule class by id, with a did-you-mean on unknown ids."""
    try:
        return _RULES[rule_id]
    except KeyError:
        raise unknown_key_error("lint rule", rule_id, _RULES) from None


def rule_catalogue_markdown() -> str:
    """Render every registered rule's docstring as the docs catalogue.

    The output is embedded between ``RULE-CATALOGUE`` markers in
    ``docs/static-analysis.md`` and checked for staleness by the docs
    builder, the same way the generated CLI reference is.
    """
    lines: List[str] = []
    for rule_id in available_rules():
        cls = _RULES[rule_id]
        doc = inspect.getdoc(cls) or ""
        summary, _, body = doc.partition("\n")
        lines.append(f"### `{rule_id}` — {cls.name}")
        lines.append("")
        lines.append(summary.strip())
        body = body.strip()
        if body:
            lines.append("")
            lines.append(body)
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


# ---------------------------------------------------------------------------
# Shared AST helpers


def module_relpath(path: Path) -> str:
    """Rebase ``path`` at the innermost ``repro`` directory.

    ``src/repro/runner/spec.py`` and ``/tmp/x/repro/runner/spec.py``
    both map to ``repro/runner/spec.py``; files outside any ``repro``
    directory map to their bare name, which scoped rules never match.
    """
    parts = path.as_posix().split("/")
    for i in range(len(parts) - 2, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return parts[-1]


class ImportMap:
    """Local-name resolution for ``import``/``from`` statements.

    Maps local names back to the dotted thing they denote so rules can
    recognise ``time.time()`` through ``import time as t`` or
    ``from time import time as now`` uniformly.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.modules: Dict[str, str] = {}
        self.names: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    self.names[alias.asname or alias.name] = f"{node.module}.{alias.name}"

    def canonical_call(self, func: ast.expr) -> Optional[str]:
        """Dotted canonical name of a call target, or None.

        ``t.time`` -> ``time.time`` (via ``import time as t``),
        ``now`` -> ``time.time`` (via ``from time import time as now``),
        ``datetime.datetime.now`` -> itself.
        """
        parts: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = node.id
        parts.reverse()
        if base in self.names:
            return ".".join([self.names[base], *parts])
        if base in self.modules:
            return ".".join([self.modules[base], *parts])
        return ".".join([base, *parts])


def call_keywords(node: ast.Call) -> Dict[str, ast.expr]:
    """Keyword arguments of a call as a name -> value mapping."""
    return {kw.arg: kw.value for kw in node.keywords if kw.arg is not None}


def constant_str(node: Optional[ast.expr]) -> Optional[str]:
    """The value of a string constant node, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def iter_calls(tree: ast.Module) -> Iterator[ast.Call]:
    """All Call nodes in the module."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def dedent_doc(obj: object) -> str:
    """``inspect.getdoc`` that never returns None."""
    return inspect.getdoc(obj) or ""


def sorted_unique(items: Iterable[Tuple[str, ...]]) -> List[List[str]]:
    """Deduplicate and sort tuples of strings into JSON-friendly lists."""
    return [list(item) for item in sorted(set(items))]


def finding(
    rule: Rule, ctx: ModuleContext, node: ast.AST, message: str
) -> Finding:
    """Build a Finding for ``node`` in ``ctx`` under ``rule``."""
    return Finding(
        rule=rule.id,
        path=ctx.display_path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        message=message,
    )


__all__ = [
    "Finding",
    "ImportMap",
    "ModuleContext",
    "Rule",
    "available_rules",
    "call_keywords",
    "constant_str",
    "finding",
    "get_rule",
    "iter_calls",
    "module_relpath",
    "register_rule",
    "rule_catalogue_markdown",
]

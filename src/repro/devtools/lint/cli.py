"""Command-line front end: `python -m repro.devtools.lint` / `repro-ho lint`.

Both entry points share :func:`add_lint_arguments` and :func:`run_lint`
so the flags, the help text and the exit-code contract cannot drift
between them (the generated CLI reference in the docs keeps the
`repro-ho lint` side honest).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .baseline import (
    DEFAULT_BASELINE_NAME,
    BaselineError,
    load_baseline,
    write_baseline,
)
from .engine import LintReport, lint_paths
from .rules import available_rules, get_rule
from .schema import write_schema_snapshot

#: Exit status when the tree is clean (or everything is baselined).
EXIT_CLEAN = 0
#: Exit status when unbaselined findings (or stale baseline entries) remain.
EXIT_FINDINGS = 1
#: Exit status for usage errors, unknown rules and invalid baselines.
EXIT_USAGE = 2

LINT_EPILOG = """\
exit codes:
  0  clean: no findings, or every finding is baselined/suppressed
  1  unbaselined findings remain (also: stale baseline entries)
  2  usage error, unknown rule id, or an invalid baseline file

baseline flow:
  repro-lint writes nothing by default.  To accept the current findings
  as the new baseline run `--baseline-update`, then fill in the
  "justification" field of any new entry — the loader rejects
  placeholder justifications, so an unjustified acceptance cannot
  sneak through CI.  `--format json` emits {"findings": [...],
  "summary": {...}} on stdout with the same exit codes.
"""


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the shared lint flags on ``parser``."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output mode: human-readable lines or one JSON document",
    )
    parser.add_argument(
        "--rules",
        default="",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all registered)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE_NAME,
        metavar="PATH",
        help=f"baseline file of accepted findings (default: {DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file: report every finding",
    )
    parser.add_argument(
        "--baseline-update",
        action="store_true",
        help="rewrite the baseline to the current findings (new entries get "
        "a placeholder justification that must be filled in by hand)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--update-schema-snapshot",
        action="store_true",
        help="refresh the S402 schema fingerprint after a deliberate shape "
        "change plus version bump, then exit",
    )


def build_lint_parser() -> argparse.ArgumentParser:
    """The standalone `python -m repro.devtools.lint` parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant linter for the repro codebase "
        "(determinism, store-seam, schema and registry discipline).",
        epilog=LINT_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    add_lint_arguments(parser)
    return parser


def _selected_rules(spec: str) -> Optional[List[str]]:
    if not spec.strip():
        return None
    rule_ids = [item.strip() for item in spec.split(",") if item.strip()]
    for rule_id in rule_ids:
        get_rule(rule_id)  # raises with a did-you-mean on unknown ids
    return rule_ids


def _render_text(report: LintReport) -> None:
    for item in report.findings:
        print(item.render())
    for entry in report.stale_baseline:
        print(
            f"{entry.path}: stale baseline entry for {entry.rule} "
            f"({entry.message!r} no longer occurs); remove it",
        )
    print(
        f"repro-lint: {report.checked_files} files checked, "
        f"{len(report.findings)} findings "
        f"({len(report.accepted)} baselined, {len(report.suppressed)} "
        f"suppressed, {len(report.stale_baseline)} stale baseline entries)"
    )


def _render_json(report: LintReport) -> None:
    payload = {
        "findings": [item.as_dict() for item in report.findings],
        "suppressed": [
            {**item.as_dict(), "justification": item.justification}
            for item in report.suppressed
        ],
        "baselined": [item.as_dict() for item in report.accepted],
        "stale_baseline": [entry.as_dict() for entry in report.stale_baseline],
        "summary": {
            "checked_files": report.checked_files,
            "findings": len(report.findings),
            "baselined": len(report.accepted),
            "suppressed": len(report.suppressed),
            "stale_baseline": len(report.stale_baseline),
        },
    }
    print(json.dumps(payload, indent=2, sort_keys=True, allow_nan=False))


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if args.list_rules:
        for rule_id in available_rules():
            cls = get_rule(rule_id)
            summary = (cls.__doc__ or "").strip().splitlines()[0]
            print(f"{rule_id}  {cls.name}: {summary}")
        return EXIT_CLEAN
    if args.update_schema_snapshot:
        shapes = write_schema_snapshot()
        print(
            "repro-lint: schema snapshot refreshed "
            f"(cache v{shapes['cache_schema_version']}, "
            f"queue v{shapes['queue_schema_version']})"
        )
        return EXIT_CLEAN
    try:
        rule_ids = _selected_rules(args.rules)
    except ValueError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return EXIT_USAGE
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"repro-lint: no such path: {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return EXIT_USAGE
    baseline_path = None if args.no_baseline else Path(args.baseline)
    if args.baseline_update:
        target = Path(args.baseline)
        previous = load_baseline(target, strict=False)
        report = lint_paths(paths, rule_ids=rule_ids, baseline_path=None)
        entries = write_baseline(target, report.findings, previous)
        print(
            f"repro-lint: baseline {target} rewritten with "
            f"{len(entries)} entries"
        )
        return EXIT_CLEAN
    try:
        report = lint_paths(paths, rule_ids=rule_ids, baseline_path=baseline_path)
    except BaselineError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.format == "json":
        _render_json(report)
    else:
        _render_text(report)
    if report.findings or report.stale_baseline:
        return EXIT_FINDINGS
    return EXIT_CLEAN


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for `python -m repro.devtools.lint`."""
    parser = build_lint_parser()
    args = parser.parse_args(argv)
    return run_lint(args)

"""R-family rules: registry discipline.

The backend/kernel/planner registries are the extension seams other
code trusts blindly: the runner picks a backend by name and believes
its `equivalent_to_reference` flag; the engine dispatches kernels and
planners by *exact* class.  These rules keep registration call sites
honest about both.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from .findings import Finding
from .rules import ModuleContext, Rule, finding, register_rule

_REGISTER_BACKEND = "register_backend"
_EXACT_TARGET_REGISTRARS = {"register_kernel", "register_planner"}


def _call_name(func: ast.expr) -> Optional[str]:
    """Trailing name of a call target (`register_backend` for both the
    bare name and any `module.register_backend` spelling)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _class_declares(cls: ast.ClassDef, attribute: str) -> bool:
    """Whether the class body assigns ``attribute`` at class level."""
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == attribute:
                    return True
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == attribute:
                return True
    return False


@register_rule
class BackendEquivalenceRule(Rule):
    """Every `register_backend` call site registers a class that declares `equivalent_to_reference` explicitly.

    The differential-grid suite and the campaign runner's backend
    dispatch both key off `equivalent_to_reference`; a backend that
    inherits it implicitly (or relies on a protocol default) makes an
    undeclared semantic claim.  Declaring it in the class body — `True`
    only for engines that are byte-identical drop-ins for `reference` —
    keeps the claim reviewable at the registration site.
    """

    id = "R501"
    name = "backend-equivalence-declared"

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        classes: Dict[str, ast.ClassDef] = {
            node.name: node
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ClassDef)
        }
        decorator_calls: Set[int] = set()
        for cls in classes.values():
            for decorator in cls.decorator_list:
                is_bare = _call_name(decorator) == _REGISTER_BACKEND
                is_call = (
                    isinstance(decorator, ast.Call)
                    and _call_name(decorator.func) == _REGISTER_BACKEND
                )
                if isinstance(decorator, ast.Call):
                    decorator_calls.add(id(decorator))
                if (is_bare or is_call) and not _class_declares(
                    cls, "equivalent_to_reference"
                ):
                    yield finding(
                        self,
                        ctx,
                        cls,
                        f"backend class {cls.name!r} is registered without "
                        "declaring equivalent_to_reference in its class body",
                    )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or id(node) in decorator_calls:
                continue
            if _call_name(node.func) != _REGISTER_BACKEND or not node.args:
                continue
            target = node.args[0]
            if isinstance(target, ast.Call):
                target = target.func
            if isinstance(target, ast.Name) and target.id in classes:
                if not _class_declares(classes[target.id], "equivalent_to_reference"):
                    yield finding(
                        self,
                        ctx,
                        node,
                        f"backend class {target.id!r} is registered without "
                        "declaring equivalent_to_reference in its class body",
                    )
            elif not isinstance(target, (ast.Name, ast.Attribute)):
                yield finding(
                    self,
                    ctx,
                    node,
                    "register_backend target cannot be resolved statically; "
                    "register a named class that declares "
                    "equivalent_to_reference",
                )


@register_rule
class ExactRegistrationTargetRule(Rule):
    """Every `register_kernel`/`register_planner` call registers an exact class (a plain name, not a string, call result or subscript).

    Kernel and planner dispatch is keyed by *exact* class identity —
    `type(state) is key`, no MRO walk — so registering anything other
    than a directly named class (`register_kernel(AteAlgorithm, ...)`)
    either never matches or matches something unintended, and the
    engine falls back silently.
    """

    id = "R502"
    name = "exact-registration-target"

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node.func)
            if name not in _EXACT_TARGET_REGISTRARS or not node.args:
                continue
            target = node.args[0]
            if not isinstance(target, (ast.Name, ast.Attribute)):
                yield finding(
                    self,
                    ctx,
                    node,
                    f"{name} must target an exact class by name; "
                    f"got a {type(target).__name__} expression, which the "
                    "identity-keyed dispatch will never match",
                )

"""The linter's result type: one :class:`Finding` per rule violation.

Findings are plain data so they serialise losslessly to the JSON output
mode and to the baseline file.  Baseline identity deliberately excludes
the line/column: moving a violation around a file must not un-baseline
it, only fixing or duplicating it may change the verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    ``path`` is the file as reported to the user (posix, relative to the
    invocation directory when possible); ``line`` is 1-based and ``col``
    0-based (matching :mod:`ast`).  ``justification`` is only set on
    suppressed findings — it carries the required explanation text of the
    inline ``# repro-lint: ignore[...]`` comment that silenced it.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    justification: str = field(default="", compare=False)

    def baseline_key(self) -> Dict[str, str]:
        """The location-independent identity used by the baseline file."""
        return {"rule": self.rule, "path": self.path, "message": self.message}

    def as_dict(self) -> Dict[str, object]:
        """JSON shape of the ``--format json`` output mode."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        """The text output mode's one-line form."""
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"

"""Bounded exhaustive exploration of adversary behaviours for small systems.

Randomised adversaries (as used in the sweeps) can miss rare corner
cases.  For very small systems this module explores *every* adversarial
choice within a bounded fault budget for a bounded number of rounds,
running the remaining rounds fault-free, and checks the consensus safety
clauses on each explored run.  This is the executable stand-in for the
paper's proofs: for small ``n`` and short horizons there is simply no
``P_alpha``-compatible behaviour that breaks Agreement or Integrity of a
correctly parameterised machine — and the checker *does* find violations
once the parameters leave the feasible region (see
``tests/verification/test_model_check.py``).

The state space grows extremely quickly; keep ``n <= 4``,
``horizon <= 2`` and small value domains.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.adversary.base import Adversary, IntendedMatrix, ReceivedMatrix
from repro.core.algorithm import HOAlgorithm
from repro.core.process import ProcessId, Value
from repro.simulation.engine import SimulationConfig, SimulationResult, run_algorithm

# A per-receiver plan maps sender -> ("drop", None) | ("corrupt", value).
# Senders not mentioned are delivered faithfully.
ReceiverPlan = Dict[ProcessId, Tuple[str, Optional[Value]]]
# A round plan maps receiver -> its receiver plan.
RoundPlan = Dict[ProcessId, ReceiverPlan]


class PlannedAdversary(Adversary):
    """Adversary that replays an explicit per-round fault plan.

    Rounds beyond the plan are delivered reliably, which realises the
    "transient faults followed by good weather" structure the liveness
    predicates describe.
    """

    def __init__(self, plans: Sequence[RoundPlan]) -> None:
        super().__init__(seed=None)
        self.plans = list(plans)
        self.name = f"planned({len(self.plans)} rounds)"

    def deliver_round(self, round_num: int, intended: IntendedMatrix) -> ReceivedMatrix:
        plan: RoundPlan = {}
        if 1 <= round_num <= len(self.plans):
            plan = self.plans[round_num - 1]
        received: ReceivedMatrix = {}
        for sender, per_receiver in intended.items():
            for receiver, payload in per_receiver.items():
                action, value = plan.get(receiver, {}).get(sender, ("deliver", None))
                if action == "drop":
                    received.setdefault(receiver, {})
                    continue
                if action == "corrupt":
                    received.setdefault(receiver, {})[sender] = value
                else:
                    received.setdefault(receiver, {})[sender] = payload
        return received


@dataclass
class ModelCheckConfig:
    """Bounds of the exploration."""

    n: int
    horizon: int = 1
    max_corruptions_per_receiver: int = 1
    max_omissions_per_receiver: int = 0
    corruption_values: Tuple[Value, ...] = (0, 1)
    tail_rounds: int = 6
    max_runs: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError("n must be positive")
        if self.horizon < 0:
            raise ValueError("horizon must be non-negative")
        if self.max_corruptions_per_receiver < 0 or self.max_omissions_per_receiver < 0:
            raise ValueError("fault budgets must be non-negative")


@dataclass
class ModelCheckResult:
    """Outcome of an exploration."""

    explored: int = 0
    truncated: bool = False
    safety_violations: List[Tuple[Tuple[RoundPlan, ...], SimulationResult]] = field(
        default_factory=list
    )
    termination_failures: List[Tuple[Tuple[RoundPlan, ...], SimulationResult]] = field(
        default_factory=list
    )

    @property
    def safe(self) -> bool:
        return not self.safety_violations

    @property
    def live(self) -> bool:
        return not self.termination_failures

    def summary(self) -> str:
        return (
            f"explored={self.explored}{'+' if self.truncated else ''} "
            f"safety_violations={len(self.safety_violations)} "
            f"termination_failures={len(self.termination_failures)}"
        )


# ----------------------------------------------------------------------
# Enumeration of adversarial choices
# ----------------------------------------------------------------------
def _receiver_plans(
    senders: Sequence[ProcessId], config: ModelCheckConfig
) -> Iterator[ReceiverPlan]:
    """All fault patterns one receiver can suffer in one round.

    Corruption targets are chosen as subsets of at most
    ``max_corruptions_per_receiver`` senders, each assigned one of the
    configured corruption values; omission targets are disjoint subsets
    of at most ``max_omissions_per_receiver`` senders.
    """
    max_corrupt = min(config.max_corruptions_per_receiver, len(senders))
    max_omit = min(config.max_omissions_per_receiver, len(senders))
    for corrupt_count in range(max_corrupt + 1):
        for corrupt_targets in itertools.combinations(senders, corrupt_count):
            value_choices = itertools.product(config.corruption_values, repeat=corrupt_count)
            for values in value_choices:
                base: ReceiverPlan = {
                    target: ("corrupt", value)
                    for target, value in zip(corrupt_targets, values)
                }
                remaining = [s for s in senders if s not in corrupt_targets]
                for omit_count in range(max_omit + 1):
                    for omit_targets in itertools.combinations(remaining, omit_count):
                        plan = dict(base)
                        for target in omit_targets:
                            plan[target] = ("drop", None)
                        yield plan


def _round_plans(config: ModelCheckConfig) -> Iterator[RoundPlan]:
    """All combinations of per-receiver plans for one round."""
    senders = list(range(config.n))
    per_receiver = [list(_receiver_plans(senders, config)) for _ in range(config.n)]
    for combination in itertools.product(*per_receiver):
        yield {receiver: plan for receiver, plan in enumerate(combination) if plan}


def enumerate_fault_plans(config: ModelCheckConfig) -> Iterator[Tuple[RoundPlan, ...]]:
    """All fault plans over the exploration horizon."""
    if config.horizon == 0:
        yield ()
        return
    round_plans = list(_round_plans(config))
    for combination in itertools.product(round_plans, repeat=config.horizon):
        yield tuple(combination)


# ----------------------------------------------------------------------
# The checker
# ----------------------------------------------------------------------
def model_check(
    algorithm_factory,
    initial_values: Mapping[ProcessId, Value],
    config: ModelCheckConfig,
    check_termination: bool = True,
) -> ModelCheckResult:
    """Run the algorithm against every fault plan within the bounds.

    ``algorithm_factory`` is a zero-argument callable returning a fresh
    :class:`~repro.core.algorithm.HOAlgorithm` (process state is not
    reusable across runs).  Safety (Agreement + Integrity) is checked on
    every explored run; Termination is checked over the horizon plus
    ``config.tail_rounds`` fault-free rounds.
    """
    result = ModelCheckResult()
    sim_config = SimulationConfig(
        max_rounds=config.horizon + config.tail_rounds,
        stop_when_all_decided=True,
        record_states=False,
    )
    for plans in enumerate_fault_plans(config):
        if config.max_runs is not None and result.explored >= config.max_runs:
            result.truncated = True
            break
        algorithm: HOAlgorithm = algorithm_factory()
        adversary = PlannedAdversary(plans)
        run = run_algorithm(
            algorithm=algorithm,
            initial_values=initial_values,
            adversary=adversary,
            config=sim_config,
        )
        result.explored += 1
        if not run.outcome.safe:
            result.safety_violations.append((plans, run))
        if check_termination and not run.outcome.termination:
            result.termination_failures.append((plans, run))
    return result

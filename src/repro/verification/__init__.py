"""Verification: property checkers, invariant monitors and bounded model checking.

The paper's correctness arguments are proofs; this package turns them
into executable artefacts at three granularities:

* whole-run and batch property checking (:mod:`repro.verification.properties`);
* per-round invariant monitors named after the paper's lemmas
  (:mod:`repro.verification.invariants`);
* bounded exhaustive exploration for small systems
  (:mod:`repro.verification.model_check`).
"""

from repro.verification.invariants import (
    AgreementMonitor,
    DecisionLockMonitor,
    IntegrityMonitor,
    InvariantMonitor,
    InvariantViolation,
    IrrevocabilityMonitor,
    Lemma1Monitor,
    SingleTrueVoteMonitor,
    UniqueDecisionPerRoundMonitor,
    standard_monitors,
)
from repro.verification.model_check import (
    ModelCheckConfig,
    ModelCheckResult,
    PlannedAdversary,
    enumerate_fault_plans,
    model_check,
)
from repro.verification.properties import BatchReport, aggregate, safety_counterexamples

__all__ = [
    "AgreementMonitor",
    "BatchReport",
    "DecisionLockMonitor",
    "IntegrityMonitor",
    "InvariantMonitor",
    "InvariantViolation",
    "IrrevocabilityMonitor",
    "Lemma1Monitor",
    "ModelCheckConfig",
    "ModelCheckResult",
    "PlannedAdversary",
    "SingleTrueVoteMonitor",
    "UniqueDecisionPerRoundMonitor",
    "aggregate",
    "enumerate_fault_plans",
    "model_check",
    "safety_counterexamples",
    "standard_monitors",
]

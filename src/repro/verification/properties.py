"""Aggregate property checking over batches of runs.

Single runs are judged by :class:`repro.core.consensus.ConsensusSpec`
(already wired into the simulation engine).  The experiment harness,
however, reasons about *batches*: "out of 200 adversarial runs
satisfying ``P_alpha``, how many satisfied Agreement?", "what was the
distribution of decision rounds?".  This module provides the batch
aggregation used by the benchmarks and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.machine import HOMachine
from repro.core.predicates import CommunicationPredicate
from repro.simulation.engine import SimulationResult


@dataclass
class BatchReport:
    """Summary of a batch of simulation results."""

    total: int = 0
    agreement_ok: int = 0
    integrity_ok: int = 0
    termination_ok: int = 0
    validity_ok: int = 0
    predicate_held: Optional[int] = None
    counterexamples: int = 0
    decision_rounds: List[int] = field(default_factory=list)
    corruption_totals: List[int] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)

    # -- rates ----------------------------------------------------------------
    def _rate(self, count: int) -> float:
        return count / self.total if self.total else 0.0

    @property
    def agreement_rate(self) -> float:
        return self._rate(self.agreement_ok)

    @property
    def integrity_rate(self) -> float:
        return self._rate(self.integrity_ok)

    @property
    def termination_rate(self) -> float:
        return self._rate(self.termination_ok)

    @property
    def validity_rate(self) -> float:
        return self._rate(self.validity_ok)

    @property
    def all_safe(self) -> bool:
        return self.agreement_ok == self.total and self.integrity_ok == self.total

    @property
    def all_live(self) -> bool:
        return self.termination_ok == self.total

    @property
    def mean_decision_round(self) -> Optional[float]:
        if not self.decision_rounds:
            return None
        return sum(self.decision_rounds) / len(self.decision_rounds)

    @property
    def max_decision_round(self) -> Optional[int]:
        return max(self.decision_rounds) if self.decision_rounds else None

    def as_dict(self) -> Dict[str, object]:
        return {
            "total": self.total,
            "agreement_rate": self.agreement_rate,
            "integrity_rate": self.integrity_rate,
            "termination_rate": self.termination_rate,
            "validity_rate": self.validity_rate,
            "predicate_held": self.predicate_held,
            "counterexamples": self.counterexamples,
            "mean_decision_round": self.mean_decision_round,
            "max_decision_round": self.max_decision_round,
        }

    def summary(self) -> str:
        parts = [
            f"runs={self.total}",
            f"agreement={self.agreement_ok}/{self.total}",
            f"integrity={self.integrity_ok}/{self.total}",
            f"termination={self.termination_ok}/{self.total}",
        ]
        if self.predicate_held is not None:
            parts.append(f"predicate_held={self.predicate_held}/{self.total}")
        if self.counterexamples:
            parts.append(f"COUNTEREXAMPLES={self.counterexamples}")
        if self.mean_decision_round is not None:
            parts.append(f"mean_decision_round={self.mean_decision_round:.2f}")
        return " ".join(parts)


def aggregate(
    results: Iterable[SimulationResult],
    predicate: Optional[CommunicationPredicate] = None,
    machine: Optional[HOMachine] = None,
) -> BatchReport:
    """Aggregate a batch of results into a :class:`BatchReport`.

    When ``predicate`` (or ``machine``) is given, the report also counts
    how often the predicate actually held and how many runs are genuine
    counterexamples (predicate held but consensus failed).
    """
    if machine is not None and predicate is None:
        predicate = machine.predicate
    report = BatchReport(predicate_held=0 if predicate is not None else None)
    for result in results:
        report.total += 1
        outcome = result.outcome
        report.agreement_ok += int(outcome.agreement)
        report.integrity_ok += int(outcome.integrity)
        report.termination_ok += int(outcome.termination)
        report.validity_ok += int(outcome.validity)
        if outcome.last_decision_round is not None:
            report.decision_rounds.append(outcome.last_decision_round)
        report.corruption_totals.append(result.metrics.messages_corrupted)
        report.violations.extend(outcome.violations)
        if predicate is not None:
            held = predicate.holds(result.collection)
            report.predicate_held += int(held)
            if held and not outcome.all_satisfied:
                report.counterexamples += 1
    return report


def safety_counterexamples(
    results: Sequence[SimulationResult], predicate: CommunicationPredicate
) -> List[SimulationResult]:
    """Runs where the predicate held yet Agreement or Integrity failed.

    These are the runs that would refute the paper's safety theorems —
    the tests assert this list is empty for in-range parameters and
    non-empty scenarios are only reachable with out-of-range parameters.
    """
    return [
        result
        for result in results
        if predicate.holds(result.collection) and not result.outcome.safe
    ]

"""Runtime invariant monitors — the paper's lemmas as executable checks.

Each monitor implements the :class:`repro.simulation.engine.RoundObserver`
protocol and watches a run round by round, recording (or raising on)
violations of one of the paper's lemmas.  They serve two purposes:

* in tests, they check that the lemmas hold on every simulated run whose
  parameters and communication satisfy the lemma's hypotheses;
* in exploratory experiments, they localise *where* a run outside the
  hypotheses starts to go wrong.

Monitors that compare process state across a round (e.g. Lemma 4/5's
"every update adopts the decided value") require the engine to be run
with ``record_states=True``.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Mapping, Optional, Set

from repro.core.heardof import RoundRecord
from repro.core.process import HOProcess, ProcessId, Value


class InvariantViolation(AssertionError):
    """Raised by a monitor in ``raise_on_violation`` mode."""


class InvariantMonitor:
    """Base class: collects violation messages, optionally raising immediately."""

    name = "invariant"

    def __init__(self, raise_on_violation: bool = False) -> None:
        self.raise_on_violation = raise_on_violation
        self.violations: List[str] = []

    def _record(self, message: str) -> None:
        full = f"[{self.name}] {message}"
        self.violations.append(full)
        if self.raise_on_violation:
            raise InvariantViolation(full)

    @property
    def ok(self) -> bool:
        return not self.violations

    def on_round(self, record: RoundRecord, processes: Mapping[ProcessId, HOProcess]) -> None:
        raise NotImplementedError


class Lemma1Monitor(InvariantMonitor):
    """Lemma 1: ``|R_p^r(v)| <= |Q_p^r(v)| + |AHO(p, r)|`` for every p, v, r.

    This is a fact about the *model* (not about any algorithm): a value
    can only be received from a process that was supposed to send it or
    from a corrupted transmission.  It must hold for every adversary.
    """

    name = "lemma-1"

    def on_round(self, record: RoundRecord, processes: Mapping[ProcessId, HOProcess]) -> None:
        for pid, rv in record.receptions.items():
            received_counts = Counter(rv.received.values())
            intended_counts = Counter(rv.intended.values())
            aho = len(rv.altered_heard_of)
            for value, r_count in received_counts.items():
                q_count = intended_counts.get(value, 0)
                if r_count > q_count + aho:
                    self._record(
                        f"round {record.round_num}, receiver {pid}, value {value!r}: "
                        f"|R(v)| = {r_count} > |Q(v)| + |AHO| = {q_count} + {aho}"
                    )


class UniqueDecisionPerRoundMonitor(InvariantMonitor):
    """Lemmas 2, 3 and 7: at most one decision value per round.

    Under ``E >= n/2`` (Lemma 2/7) a single process cannot decide two
    values in one round; under ``E >= n/2 + alpha`` and ``P_alpha``
    (Lemma 3) no two processes can decide *different* values at the same
    round.  The monitor checks the stronger, two-process form.
    """

    name = "unique-decision-per-round"

    def __init__(self, raise_on_violation: bool = False) -> None:
        super().__init__(raise_on_violation)
        self._already_decided: Set[ProcessId] = set()

    def on_round(self, record: RoundRecord, processes: Mapping[ProcessId, HOProcess]) -> None:
        new_values: Dict[Value, List[ProcessId]] = {}
        for pid, proc in processes.items():
            if proc.decided and pid not in self._already_decided:
                new_values.setdefault(proc.decision, []).append(pid)
                self._already_decided.add(pid)
        if len(new_values) > 1:
            self._record(
                f"round {record.round_num}: processes decided different values "
                f"{ {repr(v): pids for v, pids in new_values.items()} }"
            )


class AgreementMonitor(InvariantMonitor):
    """Proposition 1/5 consequence: all decisions across the whole run agree."""

    name = "agreement"

    def __init__(self, raise_on_violation: bool = False) -> None:
        super().__init__(raise_on_violation)
        self._decided_value: Optional[Value] = None
        self._decided_by: Optional[ProcessId] = None
        self._reported: Set[ProcessId] = set()

    def on_round(self, record: RoundRecord, processes: Mapping[ProcessId, HOProcess]) -> None:
        for pid, proc in processes.items():
            if not proc.decided or pid in self._reported:
                continue
            self._reported.add(pid)
            if self._decided_value is None:
                self._decided_value = proc.decision
                self._decided_by = pid
            elif proc.decision != self._decided_value:
                self._record(
                    f"round {record.round_num}: process {pid} decided {proc.decision!r} "
                    f"but process {self._decided_by} had decided {self._decided_value!r}"
                )


class IntegrityMonitor(InvariantMonitor):
    """Proposition 2/6: with unanimous initial values, only that value is decided."""

    name = "integrity"

    def __init__(
        self, initial_values: Mapping[ProcessId, Value], raise_on_violation: bool = False
    ) -> None:
        super().__init__(raise_on_violation)
        values = set(initial_values.values())
        self._unanimous_value: Optional[Value] = values.pop() if len(values) == 1 else None
        self._reported: Set[ProcessId] = set()

    def on_round(self, record: RoundRecord, processes: Mapping[ProcessId, HOProcess]) -> None:
        if self._unanimous_value is None:
            return
        for pid, proc in processes.items():
            if proc.decided and pid not in self._reported:
                self._reported.add(pid)
                if proc.decision != self._unanimous_value:
                    self._record(
                        f"round {record.round_num}: process {pid} decided {proc.decision!r} "
                        f"despite unanimous initial value {self._unanimous_value!r}"
                    )


class DecisionLockMonitor(InvariantMonitor):
    """Lemmas 4 and 5 (for ``A_{T,E}``): after a decision on ``v``, every
    estimate update adopts ``v``.

    Requires ``record_states=True`` so the round record carries the
    ``x`` values before and after the round.
    """

    name = "decision-lock"

    def __init__(self, raise_on_violation: bool = False) -> None:
        super().__init__(raise_on_violation)
        self._locked_value: Optional[Value] = None

    def on_round(self, record: RoundRecord, processes: Mapping[ProcessId, HOProcess]) -> None:
        if self._locked_value is not None and record.states_before and record.states_after:
            for pid in record.states_after:
                before = record.states_before.get(pid, {}).get("x")
                after = record.states_after.get(pid, {}).get("x")
                if before != after and after != self._locked_value:
                    self._record(
                        f"round {record.round_num}: process {pid} updated x from "
                        f"{before!r} to {after!r} although {self._locked_value!r} was "
                        "already decided"
                    )
        if self._locked_value is None:
            for proc in processes.values():
                if proc.decided:
                    self._locked_value = proc.decision
                    break


class SingleTrueVoteMonitor(InvariantMonitor):
    """Lemma 8 (for ``U_{T,E,alpha}``): at most one true-vote value per round.

    After the first round of every phase (odd rounds), all processes with
    a proper (non-``?``) vote must hold the *same* vote value.  Requires
    ``record_states=True`` (votes are read from the state snapshots).
    """

    name = "single-true-vote"

    def on_round(self, record: RoundRecord, processes: Mapping[ProcessId, HOProcess]) -> None:
        if record.round_num % 2 == 0 or not record.states_after:
            return
        votes = {
            pid: state.get("vote")
            for pid, state in record.states_after.items()
            if state.get("vote") is not None
        }
        distinct = set(votes.values())
        if len(distinct) > 1:
            self._record(
                f"round {record.round_num}: multiple true votes {sorted(distinct, key=repr)!r} "
                f"({votes})"
            )


class IrrevocabilityMonitor(InvariantMonitor):
    """Decisions are irrevocable: a decided process never changes its value."""

    name = "irrevocability"

    def __init__(self, raise_on_violation: bool = False) -> None:
        super().__init__(raise_on_violation)
        self._decisions: Dict[ProcessId, Value] = {}

    def on_round(self, record: RoundRecord, processes: Mapping[ProcessId, HOProcess]) -> None:
        for pid, proc in processes.items():
            if not proc.decided:
                if pid in self._decisions:
                    self._record(
                        f"round {record.round_num}: process {pid} reverted to undecided"
                    )
                continue
            previous = self._decisions.get(pid)
            if previous is not None and previous != proc.decision:
                self._record(
                    f"round {record.round_num}: process {pid} changed its decision from "
                    f"{previous!r} to {proc.decision!r}"
                )
            self._decisions[pid] = proc.decision


def standard_monitors(initial_values: Mapping[ProcessId, Value]) -> List[InvariantMonitor]:
    """The monitor set used by the integration tests: model + consensus invariants."""
    return [
        Lemma1Monitor(),
        UniqueDecisionPerRoundMonitor(),
        AgreementMonitor(),
        IntegrityMonitor(initial_values),
        IrrevocabilityMonitor(),
    ]

"""Structured reproduction of Table 1 and the related-work comparison.

Table 1 of the paper summarises, for each algorithm, the safety
predicate, the liveness predicate and the threshold conditions under
which the HO machine solves consensus.  :func:`table1_rows` produces that
table as structured data (so benchmarks can both print it and *validate*
it — every textual condition is backed by a callable check), and
:func:`render_table` pretty-prints any list of row dictionaries for the
CLI and the experiment reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.core.parameters import AteParameters, UteParameters


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1, with executable condition checks attached."""

    algorithm: str
    safety_predicate: str
    liveness_predicate: str
    conditions: str
    #: Callable taking (n, alpha, threshold, enough) and returning whether
    #: the row's threshold conditions are met.
    condition_check: Callable[[int, float, float, float], bool]
    max_alpha_description: str

    def as_dict(self) -> Dict[str, str]:
        return {
            "algorithm": self.algorithm,
            "safety_predicate": self.safety_predicate,
            "liveness_predicate": self.liveness_predicate,
            "conditions": self.conditions,
            "max_alpha": self.max_alpha_description,
        }


def _ate_conditions(n: int, alpha: float, threshold: float, enough: float) -> bool:
    params = AteParameters(n=n, alpha=alpha, threshold=threshold, enough=enough)
    return params.satisfies_theorem_1


def _ute_conditions(n: int, alpha: float, threshold: float, enough: float) -> bool:
    params = UteParameters(n=n, alpha=alpha, threshold=threshold, enough=enough)
    return params.satisfies_theorem_2


def table1_rows() -> List[Table1Row]:
    """The two rows of Table 1 (summary of results)."""
    ate = Table1Row(
        algorithm="A_{T,E}",
        safety_predicate="P_alpha :: forall r>0, p: |AHO(p,r)| <= alpha",
        liveness_predicate=(
            "P^{A,live}: for every r0 there are r >= r0 and sets Pi1, Pi2 with "
            "|Pi1| > E - alpha, |Pi2| > T and HO(p,r) = SHO(p,r) = Pi2 for all p in Pi1; "
            "moreover every process infinitely often has |HO| > T and |SHO| > E"
        ),
        conditions="n > E and T >= 2(n + 2*alpha - E) (and n > T for termination)",
        condition_check=_ate_conditions,
        max_alpha_description="solutions exist iff alpha < n/4",
    )
    ute = Table1Row(
        algorithm="U_{T,E,alpha}",
        safety_predicate=(
            "P_alpha and P^{U,safe} :: forall r>0, p: |AHO(p,r)| <= alpha and "
            "|SHO(p,r)| > max(n + 2*alpha - E - 1, T, alpha)"
        ),
        liveness_predicate=(
            "P^{U,live}: for every phase there is a later phase phi0 and a set Pi0 with "
            "HO(p,2*phi0) = SHO(p,2*phi0) = Pi0 for all p, |SHO(p,2*phi0+1)| > T and "
            "|SHO(p,2*phi0+2)| > max(E, alpha)"
        ),
        conditions="n > E >= n/2 + alpha and n > T >= n/2 + alpha",
        condition_check=_ute_conditions,
        max_alpha_description="solutions exist iff alpha < n/2",
    )
    return [ate, ute]


# ----------------------------------------------------------------------
# Related-work comparison (Section 5.1)
# ----------------------------------------------------------------------
def related_work_rows(n: int) -> List[Dict[str, object]]:
    """Per-``n`` comparison of fault tolerance across models.

    The rows juxtapose the per-round corruption the paper's algorithms
    absorb for safety with the classical permanent-fault bounds they are
    compared against in Section 5.1.
    """
    from repro.analysis.bounds import (
        byzantine_resilience,
        corruption_capacity,
        martin_alvisi_max_faulty,
        santoro_widmayer_bound,
    )
    from repro.analysis.feasibility import ate_max_alpha, ute_max_alpha

    capacity = corruption_capacity(n)
    return [
        {
            "approach": "Santoro-Widmayer impossibility (dynamic, permanent-style algorithms)",
            "fault_kind": "transmission faults per round",
            "bound": santoro_widmayer_bound(n),
            "note": "impossible at floor(n/2) faults per round when they occur in blocks",
        },
        {
            "approach": "A_{T,E} (this paper)",
            "fault_kind": "corrupted receptions per process per round (safety)",
            "bound": ate_max_alpha(n),
            "note": f"up to ~n^2/4 = {float(capacity.ate_total_per_round):g} corrupted receptions per round in total",
        },
        {
            "approach": "U_{T,E,alpha} (this paper)",
            "fault_kind": "corrupted receptions per process per round (safety)",
            "bound": ute_max_alpha(n),
            "note": f"up to ~n^2/2 = {float(capacity.ute_total_per_round):g} corrupted receptions per round in total",
        },
        {
            "approach": "Classical Byzantine consensus",
            "fault_kind": "static faulty processes",
            "bound": byzantine_resilience(n),
            "note": "n > 3f, permanent faults",
        },
        {
            "approach": "Martin-Alvisi fast Byzantine consensus",
            "fault_kind": "static faulty processes (fast runs)",
            "bound": martin_alvisi_max_faulty(n),
            "note": "n >= 5f + 1 for two-step decisions",
        },
    ]


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_table(rows: Sequence[Mapping[str, object]], columns: Optional[Sequence[str]] = None) -> str:
    """Render a list of row dictionaries as a fixed-width text table."""
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {col: len(str(col)) for col in columns}
    for row in rows:
        for col in columns:
            widths[col] = max(widths[col], len(str(row.get(col, ""))))
    header = " | ".join(str(col).ljust(widths[col]) for col in columns)
    separator = "-+-".join("-" * widths[col] for col in columns)
    lines = [header, separator]
    for row in rows:
        lines.append(" | ".join(str(row.get(col, "")).ljust(widths[col]) for col in columns))
    return "\n".join(lines)

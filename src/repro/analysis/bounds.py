"""Lower bounds from the literature and how the paper relates to them (Section 5.1).

Implemented bounds:

* **Santoro–Widmayer** [18, 19]: agreement is impossible with ``⌊n/2⌋``
  dynamic transmission faults per round when they may occur in blocks.
* **Schmid–Weiss–Rushby** [20]: with per-process send/receive fault
  bounds, at most ``n/4`` value faults per round per sender and receiver
  are tolerable in a synchronous system.
* **Martin–Alvisi** [16]: fast Byzantine consensus (two communication
  steps) requires ``n >= 5f + 1`` acceptors, i.e. fewer than ``n/5``
  Byzantine processes.
* **Lamport** [11]: the conjectured bound ``N > 2Q + F + 2M`` for
  Byzantine consensus that is safe despite ``M`` faults, live despite
  ``F`` and fast despite ``Q``.
* Classical Byzantine resilience ``n > 3f`` (for context in the
  comparison tables).

The *attainment* helpers express the paper's claims: with dynamic,
per-round faults, ``U_{T,E,α}`` is safe with ``α = (n−1)/2`` (Lamport
bound with ``F = Q = 0``) and ``A_{T,E}`` is safe *and fast* with
``α = (n−1)/4`` (Lamport bound with ``F = 0``), without contradicting
the permanent-fault bounds because liveness relies on stronger, sporadic
conditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction


# ----------------------------------------------------------------------
# Classical bounds
# ----------------------------------------------------------------------
def santoro_widmayer_bound(n: int) -> int:
    """``⌊n/2⌋`` transmission faults per round suffice for impossibility [18]."""
    return n // 2


def schmid_value_fault_bound(n: int) -> Fraction:
    """Schmid et al.: at most ``n/4`` value faults per round per sender/receiver [20]."""
    return Fraction(n, 4)


def martin_alvisi_min_processes(f: int) -> int:
    """Fast Byzantine consensus needs ``n >= 5f + 1`` processes [16]."""
    if f < 0:
        raise ValueError("f must be non-negative")
    return 5 * f + 1


def martin_alvisi_max_faulty(n: int) -> int:
    """The largest ``f`` with ``n >= 5f + 1``: ``⌊(n − 1)/5⌋``."""
    if n < 1:
        return 0
    return (n - 1) // 5


def byzantine_resilience(n: int) -> int:
    """Classical (non-fast) Byzantine consensus tolerates ``f = ⌊(n − 1)/3⌋``."""
    if n < 1:
        return 0
    return (n - 1) // 3


def lamport_bound_holds(n: int, q: Fraction, f: Fraction, m: Fraction) -> bool:
    """Lamport's conjectured requirement ``N > 2Q + F + 2M`` [11]."""
    return Fraction(n) > 2 * Fraction(q) + Fraction(f) + 2 * Fraction(m)


# ----------------------------------------------------------------------
# The paper's attainment of those bounds
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LamportAttainment:
    """How one of the paper's algorithms sits against ``N > 2Q + F + 2M``."""

    algorithm: str
    n: int
    #: Corruption bound per process per round the algorithm is safe under.
    m: Fraction
    #: Corruption bound under which the algorithm is additionally fast.
    q: Fraction
    #: Faults despite which liveness holds (0: liveness needs the stronger
    #: sporadic predicates, i.e. the algorithms do not tolerate classical
    #: Byzantine faults for termination).
    f: Fraction
    bound_satisfied: bool
    tight: bool


def ate_lamport_attainment(n: int) -> LamportAttainment:
    """``A_{T,E}``: safe *and fast* with ``α = (n − 1)/4``, ``F = 0``.

    ``N > 2Q + F + 2M`` becomes ``n > 4 * (n − 1)/4 = n − 1`` — satisfied
    with no slack, i.e. the bound is attained.
    """
    alpha = Fraction(n - 1, 4)
    return LamportAttainment(
        algorithm="A_{T,E}",
        n=n,
        m=alpha,
        q=alpha,
        f=Fraction(0),
        bound_satisfied=lamport_bound_holds(n, q=alpha, f=Fraction(0), m=alpha),
        tight=(Fraction(n) - (2 * alpha + 0 + 2 * alpha)) == 1,
    )


def ute_lamport_attainment(n: int) -> LamportAttainment:
    """``U_{T,E,α}``: safe (not fast) with ``α = (n − 1)/2``, ``F = Q = 0``.

    ``N > 2Q + F + 2M`` becomes ``n > 2 * (n − 1)/2 = n − 1`` — again
    attained exactly.
    """
    alpha = Fraction(n - 1, 2)
    return LamportAttainment(
        algorithm="U_{T,E,alpha}",
        n=n,
        m=alpha,
        q=Fraction(0),
        f=Fraction(0),
        bound_satisfied=lamport_bound_holds(n, q=Fraction(0), f=Fraction(0), m=alpha),
        tight=(Fraction(n) - 2 * alpha) == 1,
    )


# ----------------------------------------------------------------------
# Per-round corruption capacity (the n^2/4 and n^2/2 claims)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CorruptionCapacity:
    """Total corrupted receptions per round each approach can absorb while staying safe."""

    n: int
    ate_per_receiver: Fraction
    ute_per_receiver: Fraction
    ate_total_per_round: Fraction
    ute_total_per_round: Fraction
    santoro_widmayer_total_per_round: int


def corruption_capacity(n: int) -> CorruptionCapacity:
    """Section 5.1: ``A_{T,E}`` tolerates up to ``n²/4`` and ``U`` up to ``n²/2``
    corrupted transmissions per round (strict bounds), versus the
    ``⌊n/2⌋`` faults per round at which [18] already proves impossibility
    for permanent-fault-style algorithms.
    """
    ate_bound = Fraction(n, 4)
    ute_bound = Fraction(n, 2)
    return CorruptionCapacity(
        n=n,
        ate_per_receiver=ate_bound,
        ute_per_receiver=ute_bound,
        ate_total_per_round=ate_bound * n,
        ute_total_per_round=ute_bound * n,
        santoro_widmayer_total_per_round=santoro_widmayer_bound(n),
    )


def fast_decision_comparison(n: int) -> dict:
    """E9: per-round corrupting senders tolerated by a *fast* algorithm.

    Martin–Alvisi allow fewer than ``n/5`` (static, permanent) Byzantine
    processes for a fast protocol; ``A_{T,E}`` is fast while tolerating
    up to ``(n − 1)/4`` corrupted receptions per process per round
    (dynamic, transient), but needs at least one clean round to decide.
    """
    from repro.analysis.feasibility import ate_max_alpha

    static_f = martin_alvisi_max_faulty(n)
    return {
        "n": n,
        "martin_alvisi_max_static_faulty": static_f,
        "ate_max_alpha_per_round": Fraction(n - 1, 4),
        "ate_integer_alpha": max(ate_max_alpha(n), 0),
        "ate_fast_decision_rounds": 2,
        "ate_unanimous_decision_rounds": 1,
        "phase_king_decision_rounds": 2 * (byzantine_resilience(n) + 1),
    }

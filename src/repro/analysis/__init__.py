"""Analysis: feasibility regions, lower bounds and comparison tables.

This package contains the *analytic* half of the paper's evaluation —
the threshold feasibility results of Sections 3.3 and 4.3
(:mod:`repro.analysis.feasibility`), the lower bounds from the related
work and the paper's attainment of them (:mod:`repro.analysis.bounds`),
and the structured reproduction of Table 1 plus the related-work
comparison (:mod:`repro.analysis.comparison`).
"""

from repro.analysis.bounds import (
    CorruptionCapacity,
    LamportAttainment,
    ate_lamport_attainment,
    byzantine_resilience,
    corruption_capacity,
    fast_decision_comparison,
    lamport_bound_holds,
    martin_alvisi_max_faulty,
    martin_alvisi_min_processes,
    santoro_widmayer_bound,
    schmid_value_fault_bound,
    ute_lamport_attainment,
)
from repro.analysis.comparison import Table1Row, related_work_rows, render_table, table1_rows
from repro.analysis.feasibility import (
    ResilienceRow,
    ate_feasible,
    ate_integer_solutions,
    ate_max_alpha,
    ate_symmetric_parameters,
    ate_threshold_region,
    resilience_row,
    resilience_table,
    ute_feasible,
    ute_integer_solutions,
    ute_max_alpha,
    ute_minimal_parameters,
)

__all__ = [
    "CorruptionCapacity",
    "LamportAttainment",
    "ResilienceRow",
    "Table1Row",
    "ate_feasible",
    "ate_integer_solutions",
    "ate_lamport_attainment",
    "ate_max_alpha",
    "ate_symmetric_parameters",
    "ate_threshold_region",
    "byzantine_resilience",
    "corruption_capacity",
    "fast_decision_comparison",
    "lamport_bound_holds",
    "martin_alvisi_max_faulty",
    "martin_alvisi_min_processes",
    "related_work_rows",
    "render_table",
    "resilience_row",
    "resilience_table",
    "santoro_widmayer_bound",
    "schmid_value_fault_bound",
    "table1_rows",
    "ute_feasible",
    "ute_integer_solutions",
    "ute_lamport_attainment",
    "ute_max_alpha",
    "ute_minimal_parameters",
]

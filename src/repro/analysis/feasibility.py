"""Threshold feasibility analysis (Sections 3.3 and 4.3).

The paper asks: *for which ``alpha`` do thresholds ``T`` and ``E`` exist
that make the machine solve consensus?*  For ``A_{T,E}`` the governing
inequalities are (4)-(5):

    n > E                and        n > T >= 2(n + 2*alpha - E)

which are solvable iff ``alpha < n/4``; for ``U_{T,E,alpha}`` the
inequalities (9)-(11) reduce to

    n > T >= n/2 + alpha     and     n > E >= n/2 + alpha

which are solvable iff ``alpha < n/2``.  This module computes feasible
regions, maximal tolerable ``alpha`` values, and the canonical threshold
choices used throughout the benchmark harness (Proposition 4's symmetric
choice for ``A``, the minimal choice for ``U``).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, List, Optional, Tuple, Union

from repro.core.parameters import AteParameters, UteParameters

Number = Union[int, float, Fraction]


def _frac(x: Number) -> Fraction:
    if isinstance(x, Fraction):
        return x
    if isinstance(x, int):
        return Fraction(x)
    return Fraction(x).limit_denominator(10**9)


# ----------------------------------------------------------------------
# A_{T,E}
# ----------------------------------------------------------------------
def ate_feasible(n: int, alpha: Number) -> bool:
    """Do thresholds exist making ``⟨A_{T,E}, P_alpha ∧ P^{A,live}⟩`` solve consensus?

    Section 3.3: inequalities (4) and (5) are solvable iff ``alpha < n/4``.
    """
    return _frac(alpha) < Fraction(n, 4)


def ate_max_alpha(n: int) -> int:
    """The largest *integer* ``alpha`` tolerated by ``A_{T,E}`` for given ``n``.

    The strict bound is ``alpha < n/4``; the largest integer below it is
    ``ceil(n/4) - 1``.
    """
    quarter = Fraction(n, 4)
    candidate = int(quarter)
    if Fraction(candidate) == quarter:
        candidate -= 1
    return max(candidate, -1) if n >= 1 else -1


def ate_symmetric_parameters(n: int, alpha: Number) -> AteParameters:
    """Proposition 4's symmetric choice ``E = T = 2(n + 2*alpha)/3``."""
    return AteParameters.symmetric(n=n, alpha=alpha)


def ate_threshold_region(n: int, alpha: Number) -> Optional[Tuple[Fraction, Fraction]]:
    """The interval of admissible ``E`` values (with minimal matching ``T``).

    Returns ``(E_low, E_high)`` with ``E_low`` exclusive at ``n`` side
    handled by the caller (``E`` must satisfy ``n/2 + alpha <= E < n``
    and additionally ``2(n + 2*alpha − E) < n`` i.e. ``E > n/2 + 2*alpha − ...``);
    returns ``None`` when the region is empty.
    """
    a = _frac(alpha)
    lower = max(Fraction(n, 2) + a, Fraction(n, 2) + 2 * a)
    upper = Fraction(n)
    if lower >= upper:
        return None
    return (lower, upper)


def ate_integer_solutions(n: int, alpha: int) -> List[Tuple[int, int]]:
    """All integer ``(T, E)`` pairs satisfying Theorem 1's conditions.

    Integer thresholds are what an implementation would actually deploy;
    the list is used by the resilience benchmarks to show how the
    feasible region shrinks as ``alpha`` grows and empties at
    ``alpha >= n/4``.
    """
    solutions = []
    for enough in range(0, n):
        for threshold in range(0, n):
            params = AteParameters(n=n, alpha=alpha, threshold=threshold, enough=enough)
            if params.satisfies_theorem_1 and params.satisfies_termination_condition:
                solutions.append((threshold, enough))
    return solutions


# ----------------------------------------------------------------------
# U_{T,E,alpha}
# ----------------------------------------------------------------------
def ute_feasible(n: int, alpha: Number) -> bool:
    """Do thresholds exist making ``⟨U_{T,E,α}, P_α ∧ P^{U,safe} ∧ P^{U,live}⟩`` work?

    Section 4.3: inequalities (9)-(11) are solvable iff ``alpha < n/2``.
    """
    return _frac(alpha) < Fraction(n, 2)


def ute_max_alpha(n: int) -> int:
    """The largest integer ``alpha`` tolerated by ``U_{T,E,alpha}``: ``ceil(n/2) − 1``."""
    half = Fraction(n, 2)
    candidate = int(half)
    if Fraction(candidate) == half:
        candidate -= 1
    return max(candidate, -1) if n >= 1 else -1


def ute_minimal_parameters(n: int, alpha: Number) -> UteParameters:
    """Section 4.3's minimal choice ``E = T = n/2 + alpha``."""
    return UteParameters.minimal(n=n, alpha=alpha)


def ute_integer_solutions(n: int, alpha: int) -> List[Tuple[int, int]]:
    """All integer ``(T, E)`` pairs satisfying Theorem 2's conditions."""
    solutions = []
    for enough in range(0, n):
        for threshold in range(0, n):
            params = UteParameters(n=n, alpha=alpha, threshold=threshold, enough=enough)
            if params.satisfies_theorem_2:
                solutions.append((threshold, enough))
    return solutions


# ----------------------------------------------------------------------
# Resilience sweep rows (used by benchmarks and EXPERIMENTS.md)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ResilienceRow:
    """One row of the resilience comparison: what each approach tolerates at ``n``."""

    n: int
    ate_max_alpha: int
    ute_max_alpha: int
    santoro_widmayer_per_round: int
    ate_max_corrupted_receptions_per_round: int
    ute_max_corrupted_receptions_per_round: int
    byzantine_static_max_f: int
    fast_byzantine_max_f: int


def resilience_row(n: int) -> ResilienceRow:
    """Compare per-``n`` corruption tolerance across models (Section 5.1).

    ``A_{T,E}`` tolerates ``alpha < n/4`` corrupted receptions per
    process per round, i.e. just under ``n^2/4`` in total per round;
    ``U_{T,E,alpha}`` just under ``n^2/2``.  The classical comparisons:
    Santoro–Widmayer's impossibility already at ``⌊n/2⌋`` transmission
    faults per round (when they come in blocks), static Byzantine
    consensus tolerates ``f < n/3`` and *fast* Byzantine consensus
    (Martin–Alvisi) only ``f < n/5``.
    """
    from repro.analysis.bounds import (
        byzantine_resilience,
        martin_alvisi_max_faulty,
        santoro_widmayer_bound,
    )

    ate_alpha = ate_max_alpha(n)
    ute_alpha = ute_max_alpha(n)
    return ResilienceRow(
        n=n,
        ate_max_alpha=ate_alpha,
        ute_max_alpha=ute_alpha,
        santoro_widmayer_per_round=santoro_widmayer_bound(n),
        ate_max_corrupted_receptions_per_round=max(ate_alpha, 0) * n,
        ute_max_corrupted_receptions_per_round=max(ute_alpha, 0) * n,
        byzantine_static_max_f=byzantine_resilience(n),
        fast_byzantine_max_f=martin_alvisi_max_faulty(n),
    )


def resilience_table(ns: Iterator[int]) -> List[ResilienceRow]:
    """Resilience rows for a sweep over system sizes."""
    return [resilience_row(n) for n in ns]

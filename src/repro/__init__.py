"""repro — reproduction of *Tolerating Corrupted Communication* (PODC 2007).

This package implements the Heard-Of (HO) model extended to value
(corruption) faults, the two consensus algorithms of the paper
(``A_{T,E}`` and ``U_{T,E,alpha}``), the benign-case baselines they are
derived from, adversarial fault environments, simulation engines,
verification utilities, and the analysis code that regenerates the
paper's evaluation (Table 1, Figures 1-3, and the quantitative claims of
Sections 3-5).

Quickstart
----------
>>> from repro import run_consensus, AteParameters
>>> from repro.algorithms import AteAlgorithm
>>> from repro.adversary import RandomCorruptionAdversary
>>> params = AteParameters.symmetric(n=8, alpha=1)
>>> outcome = run_consensus(
...     algorithm=AteAlgorithm(params),
...     initial_values={p: p % 2 for p in range(8)},
...     adversary=RandomCorruptionAdversary(alpha=1, seed=7),
...     max_rounds=30,
... )
>>> outcome.agreement
True
"""

from repro.core.consensus import ConsensusOutcome, ConsensusSpec
from repro.core.heardof import (
    HeardOfCollection,
    ReceptionVector,
    RoundRecord,
    altered_heard_of,
    altered_span,
    kernel,
    safe_kernel,
)
from repro.core.machine import HOMachine
from repro.core.parameters import AteParameters, UteParameters
from repro.core.predicates import (
    AlphaSafePredicate,
    ALivePredicate,
    AndPredicate,
    BenignPredicate,
    CommunicationPredicate,
    PermanentAlphaPredicate,
    ULivePredicate,
    USafePredicate,
)
from repro.adversary.plan import register_planner
from repro.algorithms.kernels import register_kernel
from repro.runner.executor import CampaignRunner
from repro.runner.spec import CampaignSpec
from repro.simulation.backends import (
    EngineBackend,
    available_backends,
    register_backend,
    run_simulation,
    run_simulations_batched,
)
from repro.simulation.batch_engine import SimulationRequest
from repro.simulation.engine import SimulationConfig, run_consensus, run_machine

__all__ = [
    "ALivePredicate",
    "AlphaSafePredicate",
    "AndPredicate",
    "AteParameters",
    "BenignPredicate",
    "CampaignRunner",
    "CampaignSpec",
    "CommunicationPredicate",
    "ConsensusOutcome",
    "ConsensusSpec",
    "EngineBackend",
    "HOMachine",
    "HeardOfCollection",
    "PermanentAlphaPredicate",
    "ReceptionVector",
    "RoundRecord",
    "SimulationConfig",
    "SimulationRequest",
    "ULivePredicate",
    "USafePredicate",
    "UteParameters",
    "altered_heard_of",
    "altered_span",
    "available_backends",
    "kernel",
    "register_backend",
    "register_kernel",
    "register_planner",
    "run_consensus",
    "run_machine",
    "run_simulation",
    "run_simulations_batched",
    "safe_kernel",
]

__version__ = "1.0.0"

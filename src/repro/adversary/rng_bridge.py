"""Bit-exact state sharing between ``random.Random`` and NumPy.

Both CPython's ``random.Random`` and :class:`numpy.random.RandomState`
sit on the same Mersenne-Twister core (MT19937), and both derive
uniform doubles from it with the identical ``genrand_res53`` recipe
(``(a * 2**26 + b) / 2**53`` from two consecutive 32-bit words).  The
:class:`RngBridge` exploits that: it lifts a ``random.Random``'s
internal state into a ``RandomState`` via ``getstate()`` /
``set_state(("MT19937", key, pos))``, draws whole vectorised blocks of
variates, and writes the advanced state back — so a planner can consume
thousands of uniforms in one NumPy call while the wrapped
``random.Random`` observes *exactly* the stream it would have produced
call by call.

Only draw patterns whose word consumption is data-independent can be
vectorised this way.  ``random()`` qualifies (two words per double,
always); ``randint``/``sample``/``choice`` do not — their
``_randbelow`` rejection loops consume a data-dependent number of
words, and NumPy's bounded-integer sampling rejects differently.  Those
calls replay scalar-side: :meth:`RngBridge.scalar` flushes the bridged
state back first, so interleaved scalar and vector draws read one
unbroken stream.

NumPy is optional here as everywhere: the module imports without it and
:func:`numpy_available` answers ``False``; constructing a bridge then
raises.
"""

from __future__ import annotations

import math
import random
from typing import Any, List, Optional, Sequence, Tuple, Union

try:  # NumPy is optional: without it batch planners never register,
    import numpy as np  # so no bridge is ever constructed.
except ImportError:  # pragma: no cover - exercised by the numpy-less CI leg
    np = None

#: The ``random.Random.getstate()`` version every CPython since 2.3
#: emits for the Mersenne-Twister generator.
_STATE_VERSION = 3

#: MT19937 state words (the 625th element of the internal tuple is the
#: word position within the current block).
_KEY_WORDS = 624


def numpy_available() -> bool:
    """Whether the optional NumPy dependency is importable."""
    return np is not None


class RngBridge:
    """Vectorised draws from a ``random.Random``'s exact MT19937 stream.

    The bridge is lazy and sticky: the first vector draw lifts the
    wrapped generator's state into a persistent
    :class:`numpy.random.RandomState` (``_load``), subsequent draws
    advance it NumPy-side without touching Python tuples, and
    :meth:`flush` writes the advanced state back into the wrapped
    ``random.Random``.  While the bridge holds the state, the wrapped
    generator is *stale* — callers must route scalar draws through
    :meth:`scalar` (which flushes first) rather than calling methods on
    a kept reference.

    The cached Gaussian variate (``gauss_next``) is carried across the
    bridge untouched: uniform draws never invalidate it scalar-side, so
    a bridged stream is indistinguishable from a never-bridged one even
    for a caller holding a pending ``gauss()`` value.
    """

    __slots__ = ("rng", "_state", "_gauss")

    def __init__(self, rng: random.Random) -> None:
        if np is None:
            raise RuntimeError(
                "RngBridge requires numpy, which is not importable; "
                "keep scalar draws on the wrapped random.Random instead"
            )
        self.rng = rng
        self._state: Optional["np.random.RandomState"] = None
        self._gauss: Optional[float] = None

    @property
    def bridged(self) -> bool:
        """Whether the live state is currently held NumPy-side."""
        return self._state is not None

    def _load(self) -> "np.random.RandomState":
        """Lift the wrapped generator's state into a ``RandomState``."""
        state = self._state
        if state is None:
            version, internal, gauss = self.rng.getstate()
            if version != _STATE_VERSION or len(internal) != _KEY_WORDS + 1:
                raise RuntimeError(
                    f"unrecognised random.Random state (version {version}); "
                    f"cannot bridge a non-MT19937 generator"
                )
            state = np.random.RandomState()
            state.set_state(
                ("MT19937", np.asarray(internal[:_KEY_WORDS], dtype=np.uint32), internal[_KEY_WORDS])
            )
            self._state = state
            self._gauss = gauss
        return state

    def random_block(self, size: Union[int, Tuple[int, ...]]) -> "np.ndarray":
        """``size`` uniform doubles, bit-equal to successive ``random()`` calls.

        Both generators derive doubles with ``genrand_res53`` from the
        same word stream, so element ``k`` of the block (C order) equals
        the ``k``-th ``rng.random()`` the scalar path would have drawn.
        """
        return self._load().random_sample(size)

    def flush(self) -> random.Random:
        """Write the advanced MT state back into the wrapped generator.

        Idempotent; returns the wrapped ``random.Random``, now exactly
        as far along its stream as the vector draws consumed.
        """
        state = self._state
        if state is not None:
            _kind, key, pos, _has_gauss, _cached = state.get_state()
            self.rng.setstate(
                (_STATE_VERSION, tuple(int(word) for word in key) + (pos,), self._gauss)
            )
            self._state = None
            self._gauss = None
        return self.rng

    def scalar(self) -> random.Random:
        """The wrapped generator, flushed — for draws the bridge cannot
        express exactly (``randint``/``sample``/``choice`` rejection
        loops).  The next vector draw re-lifts the state lazily."""
        return self.flush()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RngBridge {'bridged' if self.bridged else 'scalar'} over {self.rng!r}>"


#: ``1 / 2**53`` — the exact power-of-two factor ``genrand_res53``
#: multiplies by, so the Python-side product is bit-identical.
_RECIP53 = 1.0 / 9007199254740992.0


#: Minimum words fetched per buffer refill; chosen so hot replay loops
#: touch NumPy once per ~thousand draws while cold streams stay cheap.
_MIN_PREFETCH = 1024


class WordStream:
    """Scalar draw patterns replayed over prefetched raw MT output words.

    The bridge's :meth:`~RngBridge.random_block` covers draws that map
    onto fixed-size uniform blocks.  Rejection-sampled draws
    (``randint``/``sample``/``choice``) consume a *data-dependent*
    number of 32-bit words, which no block shape can express — but the
    word stream itself is expressible: one ``RandomState`` integer draw
    over the full 32-bit range consumes exactly one MT word, identical
    to ``getrandbits(32)``.  This class prefetches whole word blocks
    NumPy-side and replays CPython's own derivations
    (``random``/``getrandbits``/``_randbelow``/``randint``/``sample``/
    ``choice``) over the buffer — scalar methods for arbitrary
    interleavings, and the vectorised :meth:`chain_values` /
    :meth:`chain_walk` decoders that resolve whole sequences of
    rejection chains with a couple of NumPy calls instead of a Python
    call per word — with bit-identical results and bit-identical word
    consumption.

    :meth:`flush` hands the wrapped ``random.Random`` a stream position
    as if each draw had happened scalar-side: the original state is
    snapshotted when the stream first loads, the total consumed word
    count is tracked exactly, and flushing re-derives the final state
    by advancing a fresh ``RandomState`` from the snapshot by exactly
    that many words (unconsumed prefetch is simply discarded).

    The ports mirror CPython 3.10–3.12 ``random`` internals.
    :func:`word_replay_matches` verifies them against the running
    interpreter's own generator; callers must gate on it (the batch
    planners simply don't register their word-stream paths when it
    answers ``False``), so a future interpreter change degrades to
    scalar planning instead of silently diverging.  The stream owns its
    generator while it holds prefetched words: route every draw through
    this class until :meth:`flush`.
    """

    __slots__ = ("rng", "_origin", "_state", "_words", "_idx", "_consumed")

    def __init__(self, rng: random.Random) -> None:
        if np is None:
            raise RuntimeError(
                "WordStream requires numpy, which is not importable; "
                "keep scalar draws on the wrapped random.Random instead"
            )
        self.rng = rng
        self._origin: Optional[Tuple[Any, ...]] = None
        self._state: Optional["np.random.RandomState"] = None
        self._words: "np.ndarray" = np.empty(0, dtype=np.int64)
        self._idx = 0
        self._consumed = 0

    def _more(self, count: int) -> None:
        """Extend the buffer by at least ``count`` unconsumed words."""
        state = self._state
        if state is None:
            origin = self.rng.getstate()
            version, internal, _gauss = origin
            if version != _STATE_VERSION or len(internal) != _KEY_WORDS + 1:
                raise RuntimeError(
                    f"unrecognised random.Random state (version {version}); "
                    f"cannot word-stream a non-MT19937 generator"
                )
            state = np.random.RandomState()
            state.set_state(
                ("MT19937", np.asarray(internal[:_KEY_WORDS], dtype=np.uint32), internal[_KEY_WORDS])
            )
            self._origin = origin
            self._state = state
        want = count if count > _MIN_PREFETCH else _MIN_PREFETCH
        # One word per value across the full 32-bit range — the
        # getrandbits(32) stream.
        block = state.randint(0, 1 << 32, size=want, dtype=np.int64)
        if self._idx:
            self._consumed += self._idx
        tail = self._words[self._idx :]
        self._idx = 0
        self._words = np.concatenate([tail, block]) if len(tail) else block

    def _word(self) -> int:
        idx = self._idx
        words = self._words
        if idx >= len(words):
            self._more(1)
            idx = self._idx
            words = self._words
        self._idx = idx + 1
        return int(words[idx])

    def _segment(self, count: int) -> "np.ndarray":
        """At least ``count`` look-ahead words as an array (not consumed)."""
        if len(self._words) - self._idx < count:
            self._more(count - (len(self._words) - self._idx))
        start = self._idx
        return self._words[start : start + count]

    def random(self) -> float:
        """Bit-identical to ``random.Random.random`` (genrand_res53)."""
        a = self._word() >> 5
        b = self._word() >> 6
        return (a * 67108864 + b) * _RECIP53

    def getrandbits(self, k: int) -> int:
        """``random.Random.getrandbits`` for ``0 < k <= 32``."""
        return self._word() >> (32 - k)

    def randbelow(self, n: int) -> int:
        """``random.Random._randbelow_with_getrandbits`` for ``n >= 1``."""
        shift = 32 - n.bit_length()
        r = self._word() >> shift
        while r >= n:
            r = self._word() >> shift
        return r

    def randint(self, a: int, b: int) -> int:
        """``random.Random.randint`` for a non-empty range."""
        return a + self.randbelow(b - a + 1)

    def sample(self, population: Sequence[Any], k: int) -> List[Any]:
        # Port of random.Random.sample's selection core (the setsize
        # heuristic decides pool-swap vs rejection-set, both replayed).
        n = len(population)
        randbelow = self.randbelow
        result: List[Any] = [None] * k
        setsize = 21
        if k > 5:
            setsize += 4 ** math.ceil(math.log(k * 3, 4))
        if n <= setsize:
            pool = list(population)
            for i in range(k):
                j = randbelow(n - i)
                result[i] = pool[j]
                pool[j] = pool[n - i - 1]
        else:
            selected: set = set()
            selected_add = selected.add
            for i in range(k):
                j = randbelow(n)
                while j in selected:
                    j = randbelow(n)
                selected_add(j)
                result[i] = population[j]
        return result

    def choice(self, seq: Sequence[Any]) -> Any:
        return seq[self.randbelow(len(seq))]

    def chain_values(self, count: int, bound: int) -> List[int]:
        """``count`` successive ``randbelow(bound)`` results, vectorised.

        The chains are independent geometric rejection loops over the
        same acceptance predicate, so the whole sequence resolves from
        one look-ahead segment: shift every word, keep the positions
        that accept, and the first ``count`` acceptances are the draws
        (everything before the last one is consumed, rejections
        included) — two NumPy calls instead of a Python call per word.
        """
        if count <= 0:
            return []
        shift = 32 - bound.bit_length()
        need = 2 * count + 16
        while True:
            seg = self._segment(need)
            vals = seg >> shift
            ok = np.flatnonzero(vals < bound)
            if len(ok) >= count:
                self._idx += int(ok[count - 1]) + 1
                if bound == 1:  # every accepted draw is necessarily 0
                    return [0] * count
                return vals[ok[:count]].tolist()
            need *= 2

    def chain_walk(
        self, reps: int, skip: int, bounds: Sequence[int]
    ) -> List[Tuple[int, ...]]:
        """Decode ``reps`` repetitions of a fixed skip-then-chains pattern.

        Each repetition consumes ``skip`` raw words (e.g. one
        ``random()`` double is two skipped words when only consumption
        matters, not the value) followed by one full ``randbelow(b)``
        rejection chain per bound ``b`` in ``bounds``; the drawn values
        come back as one tuple per repetition.  For every bound a
        next-acceptance jump table over the look-ahead segment is built
        with one ``searchsorted`` (overflow entries point at the
        segment length, an absorbing sentinel), so the sequential walk
        is two list indexings per chain rather than a Python call per
        word.
        """
        if reps <= 0:
            return []
        need = reps * (skip + 2 * len(bounds)) + 32
        while True:
            seg = self._segment(need)
            length = len(seg)
            chains = []
            for bound in bounds:
                vals = seg >> (32 - bound.bit_length())
                ok = np.flatnonzero(vals < bound)
                jump = np.full(length + 1, length, dtype=np.int64)
                if len(ok):
                    upto = int(ok[-1]) + 1
                    jump[:upto] = ok[np.searchsorted(ok, np.arange(upto))]
                chains.append((jump.tolist(), vals.tolist()))
            out: List[Tuple[int, ...]] = []
            position = 0
            overflow = False
            for _ in range(reps):
                position += skip
                if position > length:
                    overflow = True
                    break
                drawn = []
                for jump, vals_list in chains:
                    accepted = jump[position]
                    if accepted >= length:
                        overflow = True
                        break
                    drawn.append(vals_list[accepted])
                    position = accepted + 1
                if overflow:
                    break
                out.append(tuple(drawn))
            if overflow:  # ran past the segment: widen and retry
                need *= 2
                continue
            self._idx += position
            return out

    def flush(self) -> random.Random:
        """Write the exactly-consumed stream position back to the generator.

        Advances a fresh ``RandomState`` from the origin snapshot by
        precisely the consumed word count (discarding any unconsumed
        prefetch), then installs that state — the wrapped
        ``random.Random`` ends up exactly where scalar draws would have
        left it.  Idempotent; returns the wrapped generator.
        """
        origin = self._origin
        if origin is not None:
            total = self._consumed + self._idx
            if total:
                _version, internal, gauss = origin
                state = np.random.RandomState()
                state.set_state(
                    ("MT19937", np.asarray(internal[:_KEY_WORDS], dtype=np.uint32), internal[_KEY_WORDS])
                )
                remaining = total
                while remaining:
                    chunk = remaining if remaining < (1 << 20) else (1 << 20)
                    state.randint(0, 1 << 32, size=chunk, dtype=np.int64)
                    remaining -= chunk
                _kind, key, pos, _hg, _gc = state.get_state()
                self.rng.setstate(
                    (_STATE_VERSION, tuple(int(word) for word in key) + (pos,), gauss)
                )
            self._origin = None
            self._state = None
        self._words = np.empty(0, dtype=np.int64)
        self._idx = 0
        self._consumed = 0
        return self.rng


def chain_walk_many_array(
    streams: Sequence[WordStream],
    reps: int,
    skip: int,
    bounds: Sequence[int],
) -> "np.ndarray":
    """:meth:`WordStream.chain_walk` across many independent streams at once.

    Every stream decodes the same repetition pattern, so their
    look-ahead segments stack into one matrix, the per-bound shift,
    acceptance test, and next-acceptance jump tables (a suffix-minimum
    over accepted positions) are computed for the whole fleet in a
    handful of NumPy calls, and even the sequential walk vectorises
    *across* streams: its state is one position vector advanced by
    fancy-index gathers, so a round costs ``reps × len(bounds)`` array
    steps instead of a Python step per stream per chain.  Jump tables
    are padded with an absorbing out-of-words sentinel; streams whose
    walk hits it (the shared segment width ran dry) consume nothing
    matrix-side and fall back to their own
    :meth:`~WordStream.chain_walk`, which widens and retries.

    Returns the drawn values as an ``(len(streams), reps, len(bounds))``
    ``int64`` array — the array form feeds the batch planners' fully
    vectorised staging directly; :func:`chain_walk_many` wraps it in the
    per-stream list-of-tuples shape of :meth:`~WordStream.chain_walk`.
    """
    rows = len(streams)
    if reps <= 0 or not streams:
        return np.zeros((rows, max(reps, 0), len(bounds)), dtype=np.int64)
    width = reps * (skip + 2 * len(bounds)) + 32
    matrix = np.stack([stream._segment(width) for stream in streams])
    positions = np.arange(width, dtype=np.int64)
    row_index = np.arange(rows)
    pad = skip + 2  # index headroom past the sentinel
    chains = []
    for bound in bounds:
        vals = matrix >> (32 - bound.bit_length())
        accepted_at = np.where(vals < bound, positions, width)
        jump = np.minimum.accumulate(accepted_at[:, ::-1], axis=1)[:, ::-1]
        jump = np.concatenate(
            [jump, np.full((rows, pad), width, dtype=np.int64)], axis=1
        )
        chains.append((jump, vals))
    cursor = np.zeros(rows, dtype=np.int64)
    overflow = np.zeros(rows, dtype=bool)
    drawn_columns = []
    for _ in range(reps):
        cursor += skip
        np.minimum(cursor, width, out=cursor)  # keep sentinel rows absorbed
        for jump, vals in chains:
            accepted = jump[row_index, cursor]
            overflow |= accepted == width
            drawn_columns.append(vals[row_index, np.minimum(accepted, width - 1)])
            cursor = accepted + 1
    values = np.ascontiguousarray(
        np.stack(drawn_columns).reshape(reps, len(bounds), rows).transpose(2, 0, 1)
    )
    consumed = cursor.tolist()
    for row, flag in enumerate(overflow.tolist()):
        if flag:
            values[row] = np.asarray(
                streams[row].chain_walk(reps, skip, bounds), dtype=np.int64
            ).reshape(reps, len(bounds))
        else:
            streams[row]._idx += consumed[row]
    return values


def chain_walk_many(
    streams: Sequence[WordStream],
    reps: int,
    skip: int,
    bounds: Sequence[int],
) -> List[List[Tuple[int, ...]]]:
    """List-of-tuples view of :func:`chain_walk_many_array`."""
    values = chain_walk_many_array(streams, reps, skip, bounds)
    return [[tuple(drawn) for drawn in row] for row in values.tolist()]


def chain_values_many(
    streams: Sequence[WordStream],
    counts: Sequence[int],
    bound: int,
) -> List[List[int]]:
    """:meth:`WordStream.chain_values` across many streams in one sweep.

    All chains share one acceptance predicate, so a single cumulative
    sum over the stacked segments locates every stream's last accepted
    draw; streams needing more words than the shared segment width fall
    back to their own :meth:`~WordStream.chain_values`.
    """
    top = max(counts, default=0)
    if top <= 0 or not streams:
        return [[] for _ in streams]
    width = 2 * top + 16
    shift = 32 - bound.bit_length()
    matrix = np.stack([stream._segment(width) for stream in streams])
    vals = matrix >> shift
    ok = vals < bound
    acceptances = np.cumsum(ok, axis=1)
    wanted = np.asarray(counts, dtype=np.int64)[:, None]
    consumed = (acceptances < wanted).sum(axis=1) + 1
    enough = (acceptances[:, -1] >= wanted[:, 0]).tolist()
    consumed_list = consumed.tolist()
    results: List[List[int]] = []
    for row, stream in enumerate(streams):
        count = counts[row]
        if count <= 0:
            results.append([])
            continue
        if not enough[row]:
            results.append(stream.chain_values(count, bound))
            continue
        stream._idx += consumed_list[row]
        if bound == 1:  # every accepted draw is necessarily 0
            results.append([0] * count)
        else:
            row_vals = vals[row]
            results.append(row_vals[np.flatnonzero(ok[row])[:count]].tolist())
    return results


def word_replay_matches() -> bool:
    """Whether :class:`WordStream`'s ports match this interpreter.

    Replays a mixed draw sequence (uniforms, getrandbits, randints,
    both ``sample`` branches, choices, and the vectorised chain
    decoders) against a real ``random.Random`` twin, including the
    final state write-back.  ``False`` — NumPy missing, or a CPython
    whose ``random`` internals changed — means word-stream planners
    must stay unregistered.
    """
    if np is None:
        return False
    reference = random.Random(0xC0FFEE)
    mirror = random.Random(0xC0FFEE)
    stream = WordStream(mirror)
    population = list(range(23))
    try:
        for step in range(48):
            if reference.random() != stream.random():
                return False
            if reference.getrandbits(7) != stream.getrandbits(7):
                return False
            if reference.randint(1, 5) != stream.randint(1, 5):
                return False
            k = (step % 7) + 1
            if reference.sample(population, k) != stream.sample(population, k):
                return False
            if reference.choice(population) != stream.choice(population):
                return False
        # randbelow(b) equals sample(range(b), 1)[0] for any scalar b
        # (single pool-swap draw), which keeps the checks on public API.
        expected = [reference.sample(range(7), 1)[0] for _ in range(6)]
        if stream.chain_values(6, 7) != expected:
            return False
        walked = []
        for _ in range(5):
            reference.random()  # two skipped words
            low = reference.randint(1, 1) - 1  # one randbelow(1) chain
            walked.append((low, reference.sample(population, 1)[0]))
        if stream.chain_walk(5, 2, (1, len(population))) != walked:
            return False
        stream.flush()
        if mirror.getstate() != reference.getstate():
            return False
        # The fleet decoders share the per-stream derivations but their
        # bookkeeping (stacked segments, jump tables, fallbacks) is
        # separate code — verify them over a two-stream fleet as well.
        references = [random.Random(1234), random.Random(5678)]
        mirrors = [random.Random(1234), random.Random(5678)]
        streams = [WordStream(m) for m in mirrors]
        expected_many = [
            [ref.sample(range(9), 1)[0] for _ in range(4)] for ref in references
        ]
        if chain_values_many(streams, [4, 4], 9) != expected_many:
            return False
        walked_many = []
        for ref in references:
            row = []
            for _ in range(3):
                ref.random()
                low = ref.randint(1, 1) - 1
                row.append((low, ref.sample(population, 1)[0]))
            walked_many.append(row)
        if chain_walk_many(streams, 3, 2, (1, len(population))) != walked_many:
            return False
        for ref, mirrored, stream in zip(references, mirrors, streams):
            stream.flush()
            if mirrored.getstate() != ref.getstate():
                return False
        return True
    except Exception:  # pragma: no cover - future interpreters
        return False


__all__ = [
    "RngBridge",
    "WordStream",
    "chain_values_many",
    "chain_walk_many",
    "chain_walk_many_array",
    "numpy_available",
    "word_replay_matches",
]

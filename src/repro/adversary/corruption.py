"""Value-fault (corruption) adversaries.

These adversaries populate the altered heard-of sets ``AHO(p, r)``.
Most of them keep the communication ``alpha``-safe *by construction*
(at most ``alpha`` corrupted receptions per process per round), which is
how runs satisfying ``P_alpha`` are generated for the correctness
experiments; :class:`UnboundedCorruptionAdversary` and
:class:`SplitVoteAdversary` deliberately exceed the bound to show where
the algorithms' guarantees stop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.adversary.base import Adversary, EdgeAdversary, Fate, IntendedMatrix, ReceivedMatrix, perfect_delivery
from repro.adversary.values import corrupt_value
from repro.core.process import Payload, ProcessId, Value


class RandomCorruptionAdversary(EdgeAdversary):
    """Corrupts up to ``alpha`` incoming messages per receiver per round.

    Each round, for each receiver, the adversary picks up to ``alpha``
    random senders whose messages are corrupted; additionally each
    message may independently be dropped with ``drop_probability``
    (``P_alpha`` says nothing about omissions, so this stays within the
    predicate).  The injected values are drawn from ``value_domain`` when
    given (plausible corruptions) and from poison values otherwise.
    """

    def __init__(
        self,
        alpha: int,
        corruption_probability: float = 1.0,
        drop_probability: float = 0.0,
        value_domain: Optional[Sequence[Value]] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(seed)
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        if not 0 <= corruption_probability <= 1:
            raise ValueError("corruption_probability must be in [0, 1]")
        if not 0 <= drop_probability <= 1:
            raise ValueError("drop_probability must be in [0, 1]")
        self.alpha = alpha
        self.corruption_probability = corruption_probability
        self.drop_probability = drop_probability
        self.value_domain = list(value_domain) if value_domain is not None else None
        self.name = f"random-corruption(alpha={alpha}, p_drop={drop_probability})"
        self._targets: Dict[ProcessId, Set[ProcessId]] = {}

    def begin_round(self, round_num: int, intended: IntendedMatrix) -> None:
        """Pick, per receiver, the senders whose messages will be corrupted."""
        self._targets = {}
        senders = sorted(intended)
        for receiver in senders:  # Pi is the same set of senders and receivers
            if self.alpha == 0 or self.rng.random() >= self.corruption_probability:
                self._targets[receiver] = set()
                continue
            budget = self.rng.randint(1, self.alpha)
            chosen = self.rng.sample(senders, min(budget, len(senders)))
            self._targets[receiver] = set(chosen)

    def fate(
        self, round_num: int, sender: ProcessId, receiver: ProcessId, payload: Payload
    ) -> Fate:
        if sender in self._targets.get(receiver, ()):
            return Fate.corrupt(corrupt_value(self.rng, payload, self.value_domain))
        if self.drop_probability and self.rng.random() < self.drop_probability:
            return Fate.drop()
        return Fate.deliver()


class RotatingSenderCorruptionAdversary(EdgeAdversary):
    """``alpha`` *senders* per round emit corrupted values to everybody.

    The corrupted senders change every round (dynamic, transient faults),
    which is exactly the situation the paper contrasts with static
    Byzantine processes: over ``r`` rounds as many as ``min(n, r·alpha)``
    distinct processes emit corrupted information, yet every receiver
    sees at most ``alpha`` corruptions per round, so ``P_alpha`` holds.
    """

    def __init__(
        self,
        alpha: int,
        value_domain: Optional[Sequence[Value]] = None,
        seed: Optional[int] = None,
        equivocate: bool = True,
    ) -> None:
        super().__init__(seed)
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = alpha
        self.value_domain = list(value_domain) if value_domain is not None else None
        self.equivocate = equivocate
        self.name = f"rotating-sender-corruption(alpha={alpha})"
        self._corrupted_senders: List[ProcessId] = []

    def begin_round(self, round_num: int, intended: IntendedMatrix) -> None:
        senders = sorted(intended)
        if not senders or self.alpha == 0:
            self._corrupted_senders = []
            return
        count = min(self.alpha, len(senders))
        # Deterministic rotation plus a shuffled offset keeps the choice
        # both dynamic and reproducible.
        start = ((round_num - 1) * count) % len(senders)
        rotated = senders[start:] + senders[:start]
        self._corrupted_senders = rotated[:count]

    def fate(
        self, round_num: int, sender: ProcessId, receiver: ProcessId, payload: Payload
    ) -> Fate:
        if sender not in self._corrupted_senders:
            return Fate.deliver()
        if self.equivocate:
            return Fate.corrupt(corrupt_value(self.rng, payload, self.value_domain))
        # Non-equivocating: same corrupted value to everyone this round.
        seeded = corrupt_value(self.rng_for(round_num, sender), payload, self.value_domain)
        return Fate.corrupt(seeded)

    def rng_for(self, round_num: int, sender: ProcessId):
        import random as _random

        return _random.Random((self.seed or 0, round_num, sender).__hash__())


class UnboundedCorruptionAdversary(EdgeAdversary):
    """Corrupts each message independently with a given probability.

    There is no per-receiver budget, so for non-trivial probabilities the
    run will violate ``P_alpha`` for small ``alpha`` — used to
    demonstrate that the algorithms' guarantees are conditional on the
    predicate.
    """

    def __init__(
        self,
        corruption_probability: float,
        value_domain: Optional[Sequence[Value]] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(seed)
        if not 0 <= corruption_probability <= 1:
            raise ValueError("corruption_probability must be in [0, 1]")
        self.corruption_probability = corruption_probability
        self.value_domain = list(value_domain) if value_domain is not None else None
        self.name = f"unbounded-corruption(p={corruption_probability})"

    def fate(
        self, round_num: int, sender: ProcessId, receiver: ProcessId, payload: Payload
    ) -> Fate:
        if self.rng.random() < self.corruption_probability:
            return Fate.corrupt(corrupt_value(self.rng, payload, self.value_domain))
        return Fate.deliver()


class SplitVoteAdversary(Adversary):
    """Actively tries to break Agreement by splitting the vote.

    The adversary partitions the receivers into two camps and, within a
    per-receiver corruption budget, rewrites incoming messages so that
    camp 0 sees as many ``value_a`` as possible and camp 1 as many
    ``value_b`` as possible.  With a budget above the algorithm's
    tolerance this drives the two camps towards different decisions —
    the canonical safety-violation scenario used in the boundary
    experiments (E6/E7).
    """

    def __init__(
        self,
        budget_per_receiver: int,
        value_a: Value,
        value_b: Value,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(seed)
        if budget_per_receiver < 0:
            raise ValueError("budget_per_receiver must be non-negative")
        self.budget_per_receiver = budget_per_receiver
        self.value_a = value_a
        self.value_b = value_b
        self.name = (
            f"split-vote(budget={budget_per_receiver}, "
            f"a={value_a!r}, b={value_b!r})"
        )

    def deliver_round(self, round_num: int, intended: IntendedMatrix) -> ReceivedMatrix:
        received = perfect_delivery(intended)
        receivers = sorted(received)
        for receiver in receivers:
            target = self.value_a if receiver < len(receivers) / 2 else self.value_b
            budget = self.budget_per_receiver
            inbox = received[receiver]
            # Corrupt messages that do not already carry the target value.
            for sender in sorted(inbox):
                if budget == 0:
                    break
                if inbox[sender] != target:
                    inbox[sender] = target
                    budget -= 1
        return received

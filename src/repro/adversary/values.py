"""Helpers for picking the *corrupted* payload an adversary injects.

A corruption must produce a payload different from the intended one
(otherwise it is indistinguishable from correct delivery and does not
populate ``AHO``).  The strategies here are used by all corrupting
adversaries; they are deterministic given the adversary's RNG.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.core.process import Payload, Value

#: Default pool of adversarial values injected when no explicit domain is
#: given.  Deliberately outside the typical initial-value domains used in
#: tests/benchmarks so corrupted values are easy to spot in traces.
DEFAULT_POISON_VALUES: Sequence[Value] = (10**9, 10**9 + 1, "corrupted", -1)


def corrupt_value(
    rng: random.Random,
    original: Payload,
    domain: Optional[Sequence[Value]] = None,
) -> Payload:
    """Return a payload different from ``original``.

    If ``domain`` is given, the corrupted value is drawn from it (this is
    how "plausible" corruptions — values other processes might also hold
    — are injected, which is the hardest case for agreement).  If every
    value of the domain equals ``original`` a poison value is used
    instead, so the result is always a genuine corruption.
    """
    pool = list(domain) if domain else list(DEFAULT_POISON_VALUES)
    candidates = [v for v in pool if v != original]
    if not candidates:
        candidates = [v for v in DEFAULT_POISON_VALUES if v != original]
    if not candidates:  # pragma: no cover - poison values always differ from any single value
        return ("corrupted", original)
    return rng.choice(candidates)

"""Static Byzantine-process adversaries (Section 5.2).

In the classical model, ``f`` processes are permanently Byzantine.  In
the HO/value-fault encoding of that assumption, the *transmissions* of a
fixed set ``B`` of processes may be arbitrarily corrupted in every round
(``AS ⊆ B``, hence ``|AS| <= f``) while all other transmissions are
reliable.  These adversaries generate exactly such runs; they satisfy

* the synchronous predicate ``|SK| >= n − f``  (all non-``B`` senders are
  always safely heard by everyone) and
* the asynchronous predicate ``∀p, r: |HO(p, r)| >= n − f ∧ |AS| <= f``,

and, trivially, ``P_alpha`` with ``alpha = f`` and ``P^perm_f``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Set

from repro.adversary.base import EdgeAdversary, Fate
from repro.adversary.values import corrupt_value
from repro.core.process import Payload, ProcessId, Value


class StaticByzantineAdversary(EdgeAdversary):
    """A fixed set of senders permanently emits corrupted values.

    Parameters
    ----------
    byzantine:
        The process ids whose outgoing transmissions are corrupted.
    equivocate:
        If True (default) each corrupted sender may send *different*
        corrupted values to different receivers — the worst case of the
        classical model.  If False, a corrupted sender sends the same
        (corrupted) value to everyone in a round, which corresponds to
        the "symmetrical"/"identical Byzantine" behaviour of Figure 3.
    drop_probability:
        Probability that a corrupted sender's message is omitted instead
        of altered (Byzantine behaviour includes omissions).
    """

    def __init__(
        self,
        byzantine: Iterable[ProcessId],
        equivocate: bool = True,
        drop_probability: float = 0.0,
        value_domain: Optional[Sequence[Value]] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(seed)
        self.byzantine: Set[ProcessId] = set(byzantine)
        self.equivocate = equivocate
        if not 0 <= drop_probability <= 1:
            raise ValueError("drop_probability must be in [0, 1]")
        self.drop_probability = drop_probability
        self.value_domain = list(value_domain) if value_domain is not None else None
        self.name = (
            f"static-byzantine(f={len(self.byzantine)}, "
            f"{'equivocating' if equivocate else 'symmetric'})"
        )
        self._round_values: dict = {}

    @property
    def f(self) -> int:
        return len(self.byzantine)

    def begin_round(self, round_num: int, intended) -> None:
        if not self.equivocate:
            # Pre-draw one corrupted value per Byzantine sender for this
            # round so that all receivers see the same (symmetric faults).
            self._round_values = {}
            for sender in sorted(self.byzantine):
                original = None
                if sender in intended:
                    per_receiver = intended[sender]
                    if per_receiver:
                        original = next(iter(per_receiver.values()))
                self._round_values[sender] = corrupt_value(self.rng, original, self.value_domain)

    def fate(
        self, round_num: int, sender: ProcessId, receiver: ProcessId, payload: Payload
    ) -> Fate:
        if sender not in self.byzantine:
            return Fate.deliver()
        if self.drop_probability and self.rng.random() < self.drop_probability:
            return Fate.drop()
        if self.equivocate:
            return Fate.corrupt(corrupt_value(self.rng, payload, self.value_domain))
        return Fate.corrupt(self._round_values.get(sender, corrupt_value(self.rng, payload, self.value_domain)))

"""Adversary abstraction: the environment that produces transmission faults.

In the paper, faults are *transmission* faults only: the discrepancy
between what the sending functions prescribe and what is actually
received.  In the simulation this discrepancy is produced by an
*adversary* object which, at every round, receives the matrix of
intended messages and returns the matrix of actually received messages
— dropping messages (omissions, which shrink ``HO``) or altering them
(corruptions, which populate ``AHO``).  The adversary never touches
process state, mirroring the model's "no state corruption" stance.

Two levels of API are offered:

* :class:`Adversary` — the general, matrix-level interface
  (:meth:`Adversary.deliver_round`), needed by adversaries with global
  per-round structure (block faults, scheduled good rounds, ...).
* :class:`EdgeAdversary` — a convenience base class for adversaries that
  decide the fate of each (sender, receiver) edge independently via
  :meth:`EdgeAdversary.fate`.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Mapping, Optional

from repro.core.process import Payload, ProcessId

#: ``intended[sender][receiver]`` — what the sending functions prescribe.
IntendedMatrix = Mapping[ProcessId, Mapping[ProcessId, Payload]]

#: ``received[receiver][sender]`` — what is actually received; missing
#: entries are omissions.
ReceivedMatrix = Dict[ProcessId, Dict[ProcessId, Payload]]


class FateKind(Enum):
    """What happens to a single message in flight."""

    DELIVER = "deliver"
    DROP = "drop"
    CORRUPT = "corrupt"


@dataclass(frozen=True)
class Fate:
    """The fate of one message: delivered as-is, dropped, or corrupted."""

    kind: FateKind
    corrupted_payload: Optional[Payload] = None

    @classmethod
    def deliver(cls) -> "Fate":
        return cls(FateKind.DELIVER)

    @classmethod
    def drop(cls) -> "Fate":
        return cls(FateKind.DROP)

    @classmethod
    def corrupt(cls, payload: Payload) -> "Fate":
        return cls(FateKind.CORRUPT, corrupted_payload=payload)


class Adversary(ABC):
    """The environment controlling message delivery.

    Subclasses implement :meth:`deliver_round`.  Adversaries own their
    randomness: pass a ``seed`` for reproducible fault schedules.
    """

    #: Human-readable name used in experiment reports.
    name: str = "adversary"

    def __init__(self, seed: Optional[int] = None) -> None:
        self.seed = seed
        self.rng = random.Random(seed)

    @abstractmethod
    def deliver_round(self, round_num: int, intended: IntendedMatrix) -> ReceivedMatrix:
        """Turn the intended-message matrix into the received-message matrix.

        Implementations must only *drop* or *replace* messages; they must
        not invent receptions from processes that sent nothing (all
        processes send at every round in this model, so every
        ``(sender, receiver)`` pair is present in ``intended``).

        ``intended`` is owned by the caller and may be reused across
        rounds (the mask-planner adapter keeps its row dicts alive):
        treat it as read-only and do not retain references to it or its
        rows beyond the call.
        """

    def reset(self) -> None:
        """Re-seed the adversary so the same instance can replay its schedule."""
        self.rng = random.Random(self.seed)

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.describe()}>"


class EdgeAdversary(Adversary):
    """Adversary deciding each (sender, receiver) edge independently."""

    @abstractmethod
    def fate(
        self, round_num: int, sender: ProcessId, receiver: ProcessId, payload: Payload
    ) -> Fate:
        """Decide the fate of one message."""

    def begin_round(self, round_num: int, intended: IntendedMatrix) -> None:
        """Hook called once per round before any :meth:`fate` call.

        Subclasses that need per-round planning (e.g. choosing which
        edges to corrupt under a per-round budget) override this.
        """

    def deliver_round(self, round_num: int, intended: IntendedMatrix) -> ReceivedMatrix:
        self.begin_round(round_num, intended)
        received: ReceivedMatrix = {receiver: {} for receiver in _receivers(intended)}
        for sender, per_receiver in intended.items():
            for receiver, payload in per_receiver.items():
                fate = self.fate(round_num, sender, receiver, payload)
                if fate.kind is FateKind.DROP:
                    continue
                if fate.kind is FateKind.CORRUPT:
                    received.setdefault(receiver, {})[sender] = fate.corrupted_payload
                else:
                    received.setdefault(receiver, {})[sender] = payload
        return received


class ReliableAdversary(EdgeAdversary):
    """The fault-free environment: every message is delivered uncorrupted."""

    name = "reliable"

    def fate(
        self, round_num: int, sender: ProcessId, receiver: ProcessId, payload: Payload
    ) -> Fate:
        return Fate.deliver()


def _receivers(intended: IntendedMatrix) -> set:
    receivers = set()
    for per_receiver in intended.values():
        receivers.update(per_receiver)
    return receivers


def perfect_delivery(intended: IntendedMatrix) -> ReceivedMatrix:
    """Utility: the received matrix of a fully reliable round."""
    received: ReceivedMatrix = {}
    for sender, per_receiver in intended.items():
        for receiver, payload in per_receiver.items():
            received.setdefault(receiver, {})[sender] = payload
    return received

"""Adversaries structured to satisfy the paper's liveness predicates.

The correctness theorems are conditional: ``A_{T,E}`` terminates only in
runs satisfying ``P^{A,live}`` (Figure 1) and ``U_{T,E,α}`` only in runs
satisfying ``P^{U,live}`` (Figure 2) — predicates that require certain
"good" rounds/phases to occur *sporadically* (not from some
stabilisation time on).  The wrappers in this module take an arbitrary
inner adversary (the "bad weather") and overlay the good-weather
structure:

* :class:`PeriodicGoodRoundAdversary` makes every ``period``-th round a
  perfect round (everything delivered uncorrupted), which satisfies all
  three conjuncts of ``P^{A,live}`` provided ``n > T`` and ``n > E``.
* :class:`PartialGoodRoundAdversary` builds the *general* good round of
  Figure 1: only a subset ``Π²`` (of size ``> T``) is heard — safely and
  identically — by a subset ``Π¹`` (of size ``> E − α``), exercising the
  predicate's full generality rather than the perfect-round special case.
* :class:`PeriodicGoodPhaseAdversary` makes the three-round window
  ``{2φ0, 2φ0+1, 2φ0+2}`` of every ``period``-th phase perfect, which
  satisfies ``P^{U,live}``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Set

from repro.adversary.base import (
    Adversary,
    IntendedMatrix,
    ReceivedMatrix,
    ReliableAdversary,
    perfect_delivery,
)
from repro.core.process import ProcessId


class PeriodicGoodRoundAdversary(Adversary):
    """Delegates to ``inner`` except on perfect rounds every ``period`` rounds.

    Round ``r`` is perfect iff ``r % period == offset % period``.  With
    ``period = 1`` this is the reliable environment.
    """

    def __init__(
        self,
        inner: Adversary,
        period: int,
        offset: int = 0,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(seed)
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        self.inner = inner
        self.period = period
        self.offset = offset
        self.name = f"periodic-good-round(period={period}, inner={inner.name})"

    def is_good_round(self, round_num: int) -> bool:
        return round_num % self.period == self.offset % self.period

    def deliver_round(self, round_num: int, intended: IntendedMatrix) -> ReceivedMatrix:
        if self.is_good_round(round_num):
            return perfect_delivery(intended)
        return self.inner.deliver_round(round_num, intended)

    def reset(self) -> None:
        super().reset()
        self.inner.reset()


class PartialGoodRoundAdversary(Adversary):
    """Good rounds in the *general* form of Figure 1.

    On a good round, every process in ``pi1`` receives exactly the
    messages of ``pi2``, uncorrupted (``HO = SHO = Π²``); processes
    outside ``pi1`` are handled by the inner adversary.  On other rounds
    the inner adversary is in full control.
    """

    def __init__(
        self,
        inner: Adversary,
        pi1: Sequence[ProcessId],
        pi2: Sequence[ProcessId],
        period: int,
        offset: int = 0,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(seed)
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        self.inner = inner
        self.pi1: Set[ProcessId] = set(pi1)
        self.pi2: Set[ProcessId] = set(pi2)
        self.period = period
        self.offset = offset
        self.name = (
            f"partial-good-round(|pi1|={len(self.pi1)}, |pi2|={len(self.pi2)}, "
            f"period={period}, inner={inner.name})"
        )

    def is_good_round(self, round_num: int) -> bool:
        return round_num % self.period == self.offset % self.period

    def deliver_round(self, round_num: int, intended: IntendedMatrix) -> ReceivedMatrix:
        base = self.inner.deliver_round(round_num, intended)
        if not self.is_good_round(round_num):
            return base
        # Overwrite the inboxes of pi1 members: they hear exactly pi2, safely.
        for receiver in self.pi1:
            inbox = {}
            for sender in self.pi2:
                if sender in intended and receiver in intended[sender]:
                    inbox[sender] = intended[sender][receiver]
            base[receiver] = inbox
        return base

    def reset(self) -> None:
        super().reset()
        self.inner.reset()


class PeriodicGoodPhaseAdversary(Adversary):
    """Perfect three-round windows aligned with the phases of ``U_{T,E,α}``.

    Phase ``φ`` consists of rounds ``2φ−1`` and ``2φ``.  ``P^{U,live}``
    needs rounds ``2φ0``, ``2φ0+1`` and ``2φ0+2`` to be good for some
    phase ``φ0``; this wrapper makes that window perfect for every
    ``period``-th phase (``φ0 = offset, offset + period, ...``).
    """

    def __init__(
        self,
        inner: Adversary,
        period: int,
        offset: int = 1,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(seed)
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        if offset < 1:
            raise ValueError(f"offset must be >= 1, got {offset}")
        self.inner = inner
        self.period = period
        self.offset = offset
        self.name = f"periodic-good-phase(period={period}, inner={inner.name})"

    def good_phases(self, up_to_phase: int) -> Sequence[int]:
        return [phi for phi in range(self.offset, up_to_phase + 1, self.period)]

    def is_good_round(self, round_num: int) -> bool:
        """True for rounds ``2φ0``, ``2φ0+1``, ``2φ0+2`` of any good phase ``φ0``."""
        for phi0 in range(self.offset, round_num // 2 + 2, self.period):
            window = (2 * phi0, 2 * phi0 + 1, 2 * phi0 + 2)
            if round_num in window:
                return True
            if 2 * phi0 > round_num:
                break
        return False

    def deliver_round(self, round_num: int, intended: IntendedMatrix) -> ReceivedMatrix:
        if self.is_good_round(round_num):
            return perfect_delivery(intended)
        return self.inner.deliver_round(round_num, intended)

    def reset(self) -> None:
        super().reset()
        self.inner.reset()


def reliable() -> ReliableAdversary:
    """Convenience constructor for the fault-free environment."""
    return ReliableAdversary()

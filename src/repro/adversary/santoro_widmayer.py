"""Santoro–Widmayer block-fault adversaries (Section 5.1, [18, 19]).

Santoro and Widmayer prove that agreement is impossible with as few as
``⌊n/2⌋`` faulty transmissions per round when those faults can occur in
*blocks*: in every round the outgoing links of (potentially a different)
single process are affected.  The adversaries in this module realise
exactly that scenario so the benchmark harness can (a) show that
classic round-by-round algorithms stall or lose agreement under it and
(b) show that the paper's algorithms stay *safe* throughout and
terminate as soon as the sporadic good rounds demanded by the liveness
predicates occur — which is the sense in which the paper "circumvents"
the lower bound.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.adversary.base import EdgeAdversary, Fate, IntendedMatrix
from repro.adversary.values import corrupt_value
from repro.core.process import Payload, ProcessId, Value


class BlockFaultAdversary(EdgeAdversary):
    """Per round, the outgoing links of one victim process are hit.

    Parameters
    ----------
    faults_per_round:
        How many of the victim's outgoing links are affected each round
        (the Santoro–Widmayer bound uses ``⌊n/2⌋``; ``None`` means *all*
        outgoing links).
    mode:
        ``"corrupt"`` (value faults, the case discussed in Section 5.1)
        or ``"drop"`` (benign block faults, the original send-omission
        scenario of [18]).
    victim_schedule:
        Optional explicit sequence of victims (1-based round ``r`` uses
        ``victim_schedule[(r − 1) % len]``); defaults to round-robin over
        all processes, which makes the faults dynamic — a different
        process is hit every round, so mapping faults onto "faulty
        processes" would eventually blame everyone.
    """

    def __init__(
        self,
        faults_per_round: Optional[int] = None,
        mode: str = "corrupt",
        victim_schedule: Optional[Sequence[ProcessId]] = None,
        value_domain: Optional[Sequence[Value]] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(seed)
        if mode not in {"corrupt", "drop"}:
            raise ValueError(f"mode must be 'corrupt' or 'drop', got {mode!r}")
        if faults_per_round is not None and faults_per_round < 0:
            raise ValueError("faults_per_round must be non-negative")
        self.faults_per_round = faults_per_round
        self.mode = mode
        self.victim_schedule = list(victim_schedule) if victim_schedule else None
        self.value_domain = list(value_domain) if value_domain is not None else None
        self.name = f"santoro-widmayer-block(mode={mode}, k={faults_per_round})"
        self._victim: Optional[ProcessId] = None
        self._affected_receivers: set = set()

    def victim_of_round(self, round_num: int, senders: Sequence[ProcessId]) -> ProcessId:
        if self.victim_schedule:
            return self.victim_schedule[(round_num - 1) % len(self.victim_schedule)]
        return senders[(round_num - 1) % len(senders)]

    def begin_round(self, round_num: int, intended: IntendedMatrix) -> None:
        senders = sorted(intended)
        if not senders:
            self._victim = None
            self._affected_receivers = set()
            return
        self._victim = self.victim_of_round(round_num, senders)
        receivers = sorted(intended[self._victim]) if self._victim in intended else []
        if self.faults_per_round is None:
            self._affected_receivers = set(receivers)
        else:
            count = min(self.faults_per_round, len(receivers))
            # Rotate which receivers are affected so faults spread over links.
            start = (round_num - 1) % max(len(receivers), 1)
            rotated = receivers[start:] + receivers[:start]
            self._affected_receivers = set(rotated[:count])

    def fate(
        self, round_num: int, sender: ProcessId, receiver: ProcessId, payload: Payload
    ) -> Fate:
        if sender != self._victim or receiver not in self._affected_receivers:
            return Fate.deliver()
        if self.mode == "drop":
            return Fate.drop()
        return Fate.corrupt(corrupt_value(self.rng, payload, self.value_domain))


def santoro_widmayer_bound(n: int) -> int:
    """The Santoro–Widmayer threshold: ``⌊n/2⌋`` faulty transmissions per round."""
    return n // 2

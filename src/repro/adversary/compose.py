"""Adversary combinators: caps, constraints and schedules.

The paper separates safety predicates (how much corruption) from
liveness predicates (how much loss).  The combinators here let an
experiment assemble an environment with precisely the guarantees a
predicate demands, independently of which concrete "attack" the inner
adversary mounts:

* :class:`AlphaCapAdversary` enforces ``P_alpha`` on top of *any* inner
  adversary by undoing excess corruptions (per receiver, per round).
* :class:`MinimumSafeDeliveryAdversary` enforces a lower bound on
  ``|SHO(p, r)|`` — the shape of ``P^{U,safe}`` — by restoring dropped
  or corrupted messages when the inner adversary was too aggressive.
* :class:`SequentialAdversary` switches between adversaries at given
  round boundaries (transient "fault bursts").
* :class:`RoundScheduleAdversary` picks an adversary per round from an
  arbitrary schedule function.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence, Tuple

from repro.adversary.base import Adversary, IntendedMatrix, ReceivedMatrix, perfect_delivery
from repro.core.process import ProcessId


class AlphaCapAdversary(Adversary):
    """Enforce ``P_alpha`` on top of an arbitrary inner adversary.

    After the inner adversary has produced its received matrix, every
    receiver's corrupted entries beyond the first ``alpha`` (in
    deterministic sender order) are restored to their intended values.
    Omissions are left untouched — ``P_alpha`` does not restrict them.
    """

    def __init__(self, inner: Adversary, alpha: int, seed: Optional[int] = None) -> None:
        super().__init__(seed)
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.inner = inner
        self.alpha = alpha
        self.name = f"alpha-cap(alpha={alpha}, inner={inner.name})"

    def deliver_round(self, round_num: int, intended: IntendedMatrix) -> ReceivedMatrix:
        received = self.inner.deliver_round(round_num, intended)
        for receiver, inbox in received.items():
            corrupted: List[ProcessId] = []
            for sender in sorted(inbox):
                intended_payload = intended.get(sender, {}).get(receiver)
                if intended_payload is not None and inbox[sender] != intended_payload:
                    corrupted.append(sender)
            for sender in corrupted[self.alpha:]:
                inbox[sender] = intended[sender][receiver]
        return received

    def reset(self) -> None:
        super().reset()
        self.inner.reset()


class MinimumSafeDeliveryAdversary(Adversary):
    """Guarantee ``|SHO(p, r)| >= minimum`` for every receiver and round.

    This is the environment-side counterpart of ``P^{U,safe}``-style
    predicates: whatever the inner adversary does, enough messages are
    restored (uncorrupted, in deterministic sender order) that every
    receiver safely hears of at least ``minimum`` senders.  Note that
    ``P^{U,safe}`` uses a strict bound, so to satisfy
    ``|SHO| > m`` pass ``minimum = m + 1`` (or use
    :meth:`for_strict_bound`).
    """

    def __init__(self, inner: Adversary, minimum: int, seed: Optional[int] = None) -> None:
        super().__init__(seed)
        if minimum < 0:
            raise ValueError(f"minimum must be non-negative, got {minimum}")
        self.inner = inner
        self.minimum = minimum
        self.name = f"min-safe-delivery(min={minimum}, inner={inner.name})"

    @classmethod
    def for_strict_bound(cls, inner: Adversary, strict_bound: float) -> "MinimumSafeDeliveryAdversary":
        """Build a wrapper ensuring ``|SHO| > strict_bound``."""
        import math

        return cls(inner, minimum=int(math.floor(strict_bound)) + 1)

    def deliver_round(self, round_num: int, intended: IntendedMatrix) -> ReceivedMatrix:
        received = self.inner.deliver_round(round_num, intended)
        senders = sorted(intended)
        for receiver in sorted({r for per in intended.values() for r in per}):
            inbox = received.setdefault(receiver, {})
            safe = [
                s
                for s in inbox
                if intended.get(s, {}).get(receiver) is not None
                and inbox[s] == intended[s][receiver]
            ]
            if len(safe) >= self.minimum:
                continue
            needed = self.minimum - len(safe)
            for sender in senders:
                if needed == 0:
                    break
                intended_payload = intended.get(sender, {}).get(receiver)
                if intended_payload is None:
                    continue
                if sender in inbox and inbox[sender] == intended_payload:
                    continue
                inbox[sender] = intended_payload
                needed -= 1
        return received

    def reset(self) -> None:
        super().reset()
        self.inner.reset()


class SequentialAdversary(Adversary):
    """Switch adversaries at round boundaries.

    ``phases`` is a sequence of ``(first_round, adversary)`` pairs sorted
    by ``first_round``; the adversary whose ``first_round`` is the
    largest one not exceeding the current round handles the round.  This
    models transient fault bursts: e.g. corruption for rounds 1-10, then
    a quiet network.
    """

    def __init__(
        self,
        phases: Sequence[Tuple[int, Adversary]],
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(seed)
        if not phases:
            raise ValueError("SequentialAdversary requires at least one phase")
        self.phases = sorted(phases, key=lambda pair: pair[0])
        if self.phases[0][0] > 1:
            raise ValueError("the first phase must start at round 1")
        self.name = "sequential(" + ", ".join(
            f"r>={start}:{adv.name}" for start, adv in self.phases
        ) + ")"

    def adversary_for_round(self, round_num: int) -> Adversary:
        chosen = self.phases[0][1]
        for start, adversary in self.phases:
            if start <= round_num:
                chosen = adversary
            else:
                break
        return chosen

    def deliver_round(self, round_num: int, intended: IntendedMatrix) -> ReceivedMatrix:
        return self.adversary_for_round(round_num).deliver_round(round_num, intended)

    def reset(self) -> None:
        super().reset()
        for _, adversary in self.phases:
            adversary.reset()


class LatencyAdversary(Adversary):
    """Add fixed wall-clock transmission latency to every round.

    Delivery semantics (and RNG consumption) are exactly the inner
    adversary's; the wrapper only sleeps ``delay_per_round`` seconds
    before handing the round over, modelling the network round-trip a
    real deployment would pay.  Rounds become I/O-bound rather than
    CPU-bound, which is what the distributed scaling benchmarks use to
    measure fleet scheduling overhead independently of per-core
    simulation throughput.
    """

    def __init__(
        self, inner: Adversary, delay_per_round: float, seed: Optional[int] = None
    ) -> None:
        super().__init__(seed)
        if delay_per_round < 0:
            raise ValueError(f"delay_per_round must be non-negative, got {delay_per_round}")
        self.inner = inner
        self.delay_per_round = delay_per_round
        self.name = f"latency(delay={delay_per_round}, inner={inner.name})"

    def deliver_round(self, round_num: int, intended: IntendedMatrix) -> ReceivedMatrix:
        time.sleep(self.delay_per_round)
        return self.inner.deliver_round(round_num, intended)

    def reset(self) -> None:
        super().reset()
        self.inner.reset()


class RoundScheduleAdversary(Adversary):
    """Pick the adversary for each round via an arbitrary callable."""

    def __init__(
        self,
        schedule: Callable[[int], Optional[Adversary]],
        name: str = "round-schedule",
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(seed)
        self.schedule = schedule
        self.name = name

    def deliver_round(self, round_num: int, intended: IntendedMatrix) -> ReceivedMatrix:
        adversary = self.schedule(round_num)
        if adversary is None:
            return perfect_delivery(intended)
        return adversary.deliver_round(round_num, intended)

"""Native batch planners: whole fault schedules, array-at-a-time.

Each planner here is the batch-tier sibling of a native
:class:`~repro.adversary.plan.MaskPlanner`: it plans one round for
*every* live run of its adversary class in a single call, returning the
array-form :class:`~repro.adversary.plan.BatchRoundPlan` the batch
engine consumes directly.  The correctness bar is unchanged — each
member's RNG stream is consumed in exactly the order its per-run
planner (and therefore the matrix-level ``deliver_round``) would
consume it, so the produced records stay byte-identical across
backends:

* Draw patterns with data-independent word consumption (the per-edge
  uniforms of random omission) go through the
  :class:`~repro.adversary.rng_bridge.RngBridge`, which advances the
  member's MT19937 state NumPy-side bit-exactly.
* Everything else (``randint``/``sample`` rejection loops,
  ``corrupt_value`` choices) replays scalar-side on the member's own
  ``random.Random`` — those planners still win by emitting COO edge
  arrays the engine scatters in bulk instead of per-bit mask walks.

This module imports NumPy unconditionally; :mod:`repro.adversary.plan`
guards the import, so without NumPy nothing registers and every class
falls back to per-run planning.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.adversary.base import Adversary, ReliableAdversary
from repro.adversary.benign import RandomOmissionAdversary
from repro.adversary.corruption import (
    RandomCorruptionAdversary,
    RotatingSenderCorruptionAdversary,
)
from repro.adversary.plan import BatchPlanner, BatchRoundPlan, register_batch_planner
from repro.adversary.rng_bridge import (
    RngBridge,
    WordStream,
    chain_values_many,
    chain_walk_many_array,
    word_replay_matches,
)
from repro.adversary.santoro_widmayer import BlockFaultAdversary
from repro.adversary.values import DEFAULT_POISON_VALUES, corrupt_value
from repro.core.heardof import pack_mask_rows, words_per_mask
from repro.core.process import Payload

_PERFECT_PLAN = BatchRoundPlan()


@register_batch_planner(ReliableAdversary)
class ReliableBatchPlanner(BatchPlanner):
    """The fault-free environment, batched: one shared perfect plan."""

    def plan_rounds(
        self,
        round_num: int,
        sent: Sequence[Sequence[Payload]],
        live: Sequence[int],
        encode: Callable[[Payload], int],
        codes: Any = None,
        values: Any = None,
    ) -> BatchRoundPlan:
        return _PERFECT_PLAN


@register_batch_planner(RandomOmissionAdversary)
class RandomOmissionBatchPlanner(BatchPlanner):
    """Batched :class:`RandomOmissionAdversary`: one compare per member and round.

    Each member's n² per-edge uniforms come out of its RNG bridge as
    one ``(n, n)`` block (C order = the sender-major order the per-run
    planner draws in), and the whole fault schedule is one ``U < p``
    compare per member.  The blocks are sender-major, the plan is
    receiver-indexed, hence the transpose.  Members are processed one
    at a time and packed straight into drop *words*, so the round's
    peak working set is one float block plus the ``(m, n, n/64)``
    word output — never the stacked ``(m, n, n)`` float or bool
    intermediates, which at n = 1024 would dominate the sweep's memory.
    """

    def __init__(self, adversaries: Sequence[Adversary], n: int) -> None:
        super().__init__(adversaries, n)
        self._bridges = [RngBridge(adversary.rng) for adversary in self.adversaries]
        self._ps = [adversary.drop_probability for adversary in self.adversaries]

    def plan_rounds(
        self,
        round_num: int,
        sent: Sequence[Sequence[Payload]],
        live: Sequence[int],
        encode: Callable[[Payload], int],
        codes: Any = None,
        values: Any = None,
    ) -> BatchRoundPlan:
        n = self.n
        bridges = self._bridges
        drop_words: Optional[np.ndarray] = None
        for pos, j in enumerate(live):
            block = bridges[j].random_block((n, n))
            bits = block.T < self._ps[j]
            if not bits.any():
                continue
            if drop_words is None:
                drop_words = np.zeros((len(live), n, words_per_mask(n)), dtype=np.uint64)
            drop_words[pos] = pack_mask_rows(bits)
        if drop_words is None:
            return _PERFECT_PLAN
        return BatchRoundPlan(drop_words=drop_words)

    def finish(self) -> None:
        for bridge in self._bridges:
            bridge.flush()


class _EdgeBuffer:
    """Accumulates corrupt edges as four parallel COO columns."""

    __slots__ = ("member", "receiver", "sender", "code")

    def __init__(self) -> None:
        self.member: List[int] = []
        self.receiver: List[int] = []
        self.sender: List[int] = []
        self.code: List[int] = []

    def add(self, member: int, receiver: int, sender: int, code: int) -> None:
        self.member.append(member)
        self.receiver.append(receiver)
        self.sender.append(sender)
        self.code.append(code)

    def corrupt(
        self,
    ) -> Optional[Tuple[Sequence[int], Sequence[int], Sequence[int], Sequence[int]]]:
        if not self.member:
            return None
        return (self.member, self.receiver, self.sender, self.code)


class _CodeTable:
    """Per-domain ``corrupt_value`` pools as code-indexed lookup arrays.

    ``size[code]`` is the candidate-pool size of the payload encoding to
    ``code`` (``-1`` = not computed yet, ``0`` = pool exhausted);
    ``choice[code, i]`` is the encoded replacement for candidate index
    ``i`` (column 0 holds the ``("corrupted", payload)`` fallback when
    the pool is empty).  Keying by *code* instead of payload object
    keeps the fast planning path array-typed end to end: pool sizes and
    replacement codes gather straight out of these tables.
    """

    __slots__ = ("size", "choice")

    def __init__(self) -> None:
        self.size = np.full(64, -1, dtype=np.int64)
        self.choice = np.zeros((64, 1), dtype=np.int64)


class RandomCorruptionBatchPlanner(BatchPlanner):
    """Batched :class:`RandomCorruptionAdversary`: word-stream replay, COO output.

    Every draw here is rejection-sampled (``randint``/``sample``) or
    interleaved with per-edge value choices, so the streams cannot be
    expressed as fixed-size uniform blocks.  Instead each member's two
    RNG phases are replayed in exactly the per-run order (see
    :class:`~repro.adversary.plan.RandomCorruptionPlanner`) over a
    :class:`~repro.adversary.rng_bridge.WordStream` — bit-identical
    draws from NumPy-prefetched word blocks.  The common configuration
    (``alpha == 1``, certain corruption, no drops) has a fully
    data-independent draw *pattern* per receiver — two uniform words
    whose values cannot matter, one ``randbelow(1)`` chain whose value
    must be zero, one single-element ``sample`` — so those members plan
    entirely in array form (:meth:`_plan_fast_members`); every other
    configuration replays the scalar ports draw by draw.  Registered
    only when :func:`word_replay_matches` vouches for the ports on the
    running interpreter.
    """

    def __init__(self, adversaries: Sequence[Adversary], n: int) -> None:
        super().__init__(adversaries, n)
        self._senders = list(range(n))
        self._streams = [WordStream(a.rng) for a in self.adversaries]
        self._candidate_cache: List[dict] = [{} for _ in self.adversaries]
        # Pools depend only on (value domain, payload); members sharing
        # a domain (compared by value — instances are typically distinct
        # but equal) share one code table.
        self._domain_keys = [
            None if a.value_domain is None else tuple(a.value_domain)
            for a in self.adversaries
        ]
        self._tables: Dict[Optional[tuple], _CodeTable] = {}

    @staticmethod
    def _candidates(
        cache: dict, domain, original: Payload, encode: Callable[[Payload], int]
    ) -> Tuple[List[Payload], List[int]]:
        """The ``corrupt_value`` candidate pool and codes, cached per payload.

        When the pool is empty ``corrupt_value`` falls back to
        ``("corrupted", original)`` without consuming the RNG; that case
        is cached as an empty candidate list whose single code is the
        fallback's.
        """
        entry = cache.get(original)
        if entry is None:
            pool = list(domain) if domain else list(DEFAULT_POISON_VALUES)
            candidates = [v for v in pool if v != original]
            if not candidates:
                candidates = [v for v in DEFAULT_POISON_VALUES if v != original]
            if candidates:
                entry = (candidates, [encode(v) for v in candidates])
            else:
                entry = ([], [encode(("corrupted", original))])
            cache[original] = entry
        return entry

    def plan_rounds(
        self,
        round_num: int,
        sent: Sequence[Sequence[Payload]],
        live: Sequence[int],
        encode: Callable[[Payload], int],
        codes: Any = None,
        values: Any = None,
    ) -> BatchRoundPlan:
        n = self.n
        edges = _EdgeBuffer()
        parts: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        drop_words: Optional[np.ndarray] = None
        fast: List[Tuple[int, int]] = []
        for pos, j in enumerate(live):
            adversary = self.adversaries[j]
            if (
                adversary.alpha == 1
                and adversary.corruption_probability >= 1.0
                and not adversary.drop_probability
            ):
                fast.append((pos, j))
            else:
                drop_words = self._plan_member_general(
                    pos, j, sent[pos], len(live), encode, edges, drop_words
                )
        if fast:
            if codes is None or values is None:
                codes, values = self._encode_rows(sent, encode)
            self._plan_fast_members(fast, codes, values, encode, edges, parts)
        scalar = edges.corrupt()
        if scalar is not None:
            parts.insert(0, tuple(np.asarray(col, dtype=np.int64) for col in scalar))
        if not parts:
            corrupt = None
        elif len(parts) == 1:
            corrupt = parts[0]
        else:
            corrupt = tuple(np.concatenate(cols) for cols in zip(*parts))
        return BatchRoundPlan(drop_words=drop_words, corrupt=corrupt)

    @staticmethod
    def _encode_rows(
        sent: Sequence[Sequence[Payload]], encode: Callable[[Payload], int]
    ) -> Tuple[np.ndarray, dict]:
        """Recover the (codes, decode-mapping) view for direct callers."""
        decode: dict = {}
        rows = []
        for row in sent:
            crow = []
            for payload in row:
                code = encode(payload)
                crow.append(code)
                decode.setdefault(code, payload)
            rows.append(crow)
        return np.asarray(rows, dtype=np.int64), decode

    def _table_entries(
        self,
        key: Optional[tuple],
        needed: np.ndarray,
        values,
        encode: Callable[[Payload], int],
    ) -> _CodeTable:
        """The domain's code table, with every ``needed`` code filled in."""
        table = self._tables.get(key)
        if table is None:
            table = self._tables[key] = _CodeTable()
        size = table.size
        top = int(needed[-1])  # np.unique output: sorted ascending
        if top >= len(size):
            grown = np.full(max(top + 1, 2 * len(size)), -1, dtype=np.int64)
            grown[: len(size)] = size
            size = table.size = grown
            wider = np.zeros((len(grown), table.choice.shape[1]), dtype=np.int64)
            wider[: len(table.choice)] = table.choice
            table.choice = wider
        for code in needed[size[needed] < 0].tolist():
            original = values[code]
            pool = list(key) if key else list(DEFAULT_POISON_VALUES)
            candidates = [v for v in pool if v != original]
            if not candidates:
                candidates = [v for v in DEFAULT_POISON_VALUES if v != original]
            if candidates:
                code_row = [encode(v) for v in candidates]
            else:  # corrupt_value's no-draw fallback
                code_row = [encode(("corrupted", original))]
            if len(code_row) > table.choice.shape[1]:
                wider = np.zeros((len(table.choice), len(code_row)), dtype=np.int64)
                wider[:, : table.choice.shape[1]] = table.choice
                table.choice = wider
            size[code] = len(candidates)
            table.choice[code, : len(code_row)] = code_row
        return table

    def _plan_fast_members(
        self,
        fast: List[Tuple[int, int]],
        codes: np.ndarray,
        values,
        encode: Callable[[Payload], int],
        edges: _EdgeBuffer,
        parts: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]],
    ) -> None:
        """Plan all alpha=1/certain-corruption/no-drop members in one sweep.

        Per receiver the replayed stream is exactly: two words for the
        corruption-probability uniform (which cannot clear a threshold
        of 1.0, so only consumption matters), one ``randbelow(1)`` chain
        for ``randint(1, 1)`` (value necessarily 0), and one
        ``randbelow(n)`` chain — the single-element ``sample`` draw on
        either of its branches — naming the corrupted sender.  That
        pattern is identical for every such member, so the whole
        begin-round phase decodes through one
        :func:`~repro.adversary.rng_bridge.chain_walk_many_array` call.
        The fate phase draws one candidate index per (sender, receiver)
        pair in sorted pair order — obtained for the whole fleet by a
        stable argsort of the picked-sender matrix — and the per-pair
        pool sizes and replacement codes gather from the domain's
        :class:`_CodeTable` by payload code.  Members whose pools all
        share one size batch into a
        :func:`~repro.adversary.rng_bridge.chain_values_many` call per
        size; mixed-size members replay scalar draws.  The streams are
        independent, so ordering across members is free; within each
        member the per-run draw order is preserved exactly.
        """
        n = self.n
        streams = self._streams
        fast_streams = [streams[j] for _pos, j in fast]
        picks = chain_walk_many_array(fast_streams, n, 2, (1, n))
        senders = picks[:, :, 1]  # (members, receivers): the picked sender
        order = np.argsort(senders, axis=1, kind="stable")  # receivers, pair-sorted
        sorted_senders = np.take_along_axis(senders, order, axis=1)
        pos_arr = np.asarray([pos for pos, _j in fast], dtype=np.int64)
        payload_codes = np.take_along_axis(codes[pos_arr], sorted_senders, axis=1)

        keys = self._domain_keys
        by_key: Dict[Optional[tuple], List[int]] = {}
        for row, (_pos, j) in enumerate(fast):
            by_key.setdefault(keys[j], []).append(row)
        for key, rows in by_key.items():
            rows_arr = np.asarray(rows, dtype=np.int64)
            group_codes = payload_codes[rows_arr]
            table = self._table_entries(key, np.unique(group_codes), values, encode)
            sizes = table.size[group_codes]  # (group, n) pool sizes per pair
            homogeneous = (sizes == sizes[:, :1]).all(axis=1)
            pool_of = sizes[:, 0]
            for pool in np.unique(pool_of[homogeneous]).tolist():
                sel = rows_arr[homogeneous & (pool_of == pool)]
                if pool > 1:
                    index_mat = np.asarray(
                        chain_values_many(
                            [fast_streams[r] for r in sel.tolist()], [n] * len(sel), pool
                        ),
                        dtype=np.int64,
                    )
                    chosen = table.choice[payload_codes[sel], index_mat]
                elif pool == 1:  # index necessarily 0: consumption only
                    chain_values_many(
                        [fast_streams[r] for r in sel.tolist()], [n] * len(sel), 1
                    )
                    chosen = table.choice[payload_codes[sel], 0]
                else:  # every pool empty: fallback codes, no draws at all
                    chosen = table.choice[payload_codes[sel], 0]
                parts.append(
                    (
                        np.repeat(pos_arr[sel], n),
                        order[sel].ravel(),
                        sorted_senders[sel].ravel(),
                        chosen.ravel(),
                    )
                )
            for row in rows_arr[~homogeneous].tolist():  # mixed sizes: scalar
                pos = int(pos_arr[row])
                randbelow = fast_streams[row].randbelow
                choice = table.choice
                size_of = table.size
                for idx in range(n):
                    code_cell = int(payload_codes[row, idx])
                    pool = int(size_of[code_cell])
                    pick = randbelow(pool) if pool else 0
                    edges.add(
                        pos,
                        int(order[row, idx]),
                        int(sorted_senders[row, idx]),
                        int(choice[code_cell, pick]),
                    )

    def _plan_member_general(
        self,
        pos: int,
        j: int,
        row: Sequence[Payload],
        live_count: int,
        encode: Callable[[Payload], int],
        edges: _EdgeBuffer,
        drop_words: Optional[np.ndarray],
    ) -> Optional[np.ndarray]:
        """General replay, draw by draw over the scalar stream ports."""
        n = self.n
        adversary = self.adversaries[j]
        stream = self._streams[j]
        alpha = adversary.alpha
        p_corrupt = adversary.corruption_probability
        p_drop = adversary.drop_probability
        domain = adversary.value_domain
        cache = self._candidate_cache[j]
        rand = stream.random
        randbelow = stream.randbelow

        # begin_round: pick, per receiver, the senders to corrupt.
        targets: List[Sequence[int]] = []
        for _receiver in range(n):
            if alpha == 0 or rand() >= p_corrupt:
                targets.append(())
                continue
            budget = 1 + randbelow(alpha)  # randint(1, alpha)
            targets.append(frozenset(stream.sample(self._senders, min(budget, n))))

        # fate, edge by edge in the matrix iteration order; the
        # corrupt_value choice is one randbelow over the cached
        # candidate pool (its poison-exhausted fallback returns
        # without consuming the RNG, mirrored here).
        if p_drop:
            drop_recv: List[int] = []
            drop_send: List[int] = []
            for sender in range(n):
                payload = row[sender]
                for receiver in range(n):
                    if sender in targets[receiver]:
                        candidates, codes = self._candidates(cache, domain, payload, encode)
                        code = codes[randbelow(len(candidates))] if candidates else codes[0]
                        edges.add(pos, receiver, sender, code)
                    elif rand() < p_drop:
                        drop_recv.append(receiver)
                        drop_send.append(sender)
            if drop_recv:
                if drop_words is None:
                    drop_words = np.zeros(
                        (live_count, n, words_per_mask(n)), dtype=np.uint64
                    )
                send = np.asarray(drop_send, dtype=np.uint64)
                # Word scatter: edges land at (word index, bit shift).
                # Senders sharing a word need the or-reduction of .at —
                # plain fancy-index assignment would drop duplicates.
                np.bitwise_or.at(
                    drop_words,
                    (pos, np.asarray(drop_recv, dtype=np.int64), send >> np.uint64(6)),
                    np.uint64(1) << (send & np.uint64(63)),
                )
        else:
            pairs = sorted(
                (sender, receiver)
                for receiver, chosen in enumerate(targets)
                for sender in chosen
            )
            for sender, receiver in pairs:
                candidates, codes = self._candidates(cache, domain, row[sender], encode)
                code = codes[randbelow(len(candidates))] if candidates else codes[0]
                edges.add(pos, receiver, sender, code)
        return drop_words

    def finish(self) -> None:
        for stream in self._streams:
            stream.flush()


if word_replay_matches():
    register_batch_planner(RandomCorruptionAdversary, RandomCorruptionBatchPlanner)


@register_batch_planner(RotatingSenderCorruptionAdversary)
class RotatingCorruptionBatchPlanner(BatchPlanner):
    """Batched :class:`RotatingSenderCorruptionAdversary`.

    The rotation is deterministic; only the injected payloads consume
    randomness, replayed scalar-side in the per-run order (sender-major
    per-edge draws when equivocating, one fresh per-(round, sender) RNG
    otherwise).  Non-equivocating mode fills a whole receiver column
    per corrupted sender from a single draw.
    """

    def plan_rounds(
        self,
        round_num: int,
        sent: Sequence[Sequence[Payload]],
        live: Sequence[int],
        encode: Callable[[Payload], int],
        codes: Any = None,
        values: Any = None,
    ) -> BatchRoundPlan:
        n = self.n
        edges = _EdgeBuffer()
        for pos, j in enumerate(live):
            adversary = self.adversaries[j]
            alpha = adversary.alpha
            if n == 0 or alpha == 0:
                continue
            count = min(alpha, n)
            start = ((round_num - 1) * count) % n
            corrupted = sorted(((start + offset) % n) for offset in range(count))
            row = sent[pos]
            domain = adversary.value_domain
            if adversary.equivocate:
                for sender in corrupted:
                    payload = row[sender]
                    for receiver in range(n):
                        edges.add(
                            pos,
                            receiver,
                            sender,
                            encode(corrupt_value(adversary.rng, payload, domain)),
                        )
            else:
                for sender in corrupted:
                    code = encode(
                        corrupt_value(adversary.rng_for(round_num, sender), row[sender], domain)
                    )
                    for receiver in range(n):
                        edges.add(pos, receiver, sender, code)
        return BatchRoundPlan(corrupt=edges.corrupt())


@register_batch_planner(BlockFaultAdversary)
class BlockFaultBatchPlanner(BatchPlanner):
    """Batched Santoro–Widmayer :class:`BlockFaultAdversary`.

    Victim selection and the affected-receiver rotation are
    deterministic; ``mode="drop"`` plans entirely RNG-free via one
    fancy-index scatter per member, ``mode="corrupt"`` replays the
    per-affected-receiver ``corrupt_value`` draws in ascending order.
    """

    def plan_rounds(
        self,
        round_num: int,
        sent: Sequence[Sequence[Payload]],
        live: Sequence[int],
        encode: Callable[[Payload], int],
        codes: Any = None,
        values: Any = None,
    ) -> BatchRoundPlan:
        n = self.n
        if n == 0:
            return _PERFECT_PLAN
        edges = _EdgeBuffer()
        drop_words: Optional[np.ndarray] = None
        for pos, j in enumerate(live):
            adversary = self.adversaries[j]
            victim = adversary.victim_of_round(round_num, range(n))
            if not 0 <= victim < n:
                continue
            if adversary.faults_per_round is None:
                affected: Sequence[int] = range(n)
            else:
                count = min(adversary.faults_per_round, n)
                start = (round_num - 1) % n
                affected = sorted(((start + offset) % n) for offset in range(count))
            if adversary.mode == "drop":
                if drop_words is None:
                    drop_words = np.zeros((len(live), n, words_per_mask(n)), dtype=np.uint64)
                # One victim per member: every affected receiver sets the
                # same bit of the same word, so a fancy-index |= suffices
                # (the receiver indices are distinct).
                drop_words[pos, list(affected), victim >> 6] |= np.uint64(1 << (victim & 63))
            else:
                payload = sent[pos][victim]
                domain = adversary.value_domain
                for receiver in affected:  # ascending: the fate-call order
                    edges.add(
                        pos,
                        receiver,
                        victim,
                        encode(corrupt_value(adversary.rng, payload, domain)),
                    )
        return BatchRoundPlan(drop_words=drop_words, corrupt=edges.corrupt())


__all__ = [
    "ReliableBatchPlanner",
    "RandomOmissionBatchPlanner",
    "RandomCorruptionBatchPlanner",
    "RotatingCorruptionBatchPlanner",
    "BlockFaultBatchPlanner",
]

"""Benign (omission-only) adversaries.

Benign faults are the special case where a message is "corrupted into
not being received": they shrink ``HO`` but never populate ``AHO``, so
``P_benign`` (and hence ``P_alpha`` for every ``alpha``) always holds
under these adversaries.  They are used for the baseline experiments
(E12) and to exercise the claim that ``A_{T,E}`` stays safe under *any*
number of omissions.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.adversary.base import EdgeAdversary, Fate
from repro.core.process import Payload, ProcessId


class RandomOmissionAdversary(EdgeAdversary):
    """Drops each message independently with probability ``drop_probability``."""

    def __init__(self, drop_probability: float, seed: Optional[int] = None) -> None:
        super().__init__(seed)
        if not 0 <= drop_probability <= 1:
            raise ValueError(f"drop_probability must be in [0, 1], got {drop_probability}")
        self.drop_probability = drop_probability
        self.name = f"random-omission(p={drop_probability})"

    def fate(
        self, round_num: int, sender: ProcessId, receiver: ProcessId, payload: Payload
    ) -> Fate:
        if self.rng.random() < self.drop_probability:
            return Fate.drop()
        return Fate.deliver()


class CrashAdversary(EdgeAdversary):
    """Simulates crash faults of the classical model as transmission faults.

    A "crashed" process simply stops being heard of: all its outgoing
    messages are dropped from its crash round on.  (The process object
    itself keeps executing — there are no process faults in this model —
    but nobody ever hears from it again, which is observationally the
    same.)
    """

    def __init__(self, crash_rounds: dict, seed: Optional[int] = None) -> None:
        """``crash_rounds`` maps process id -> first round at which it is silent."""
        super().__init__(seed)
        self.crash_rounds = dict(crash_rounds)
        self.name = f"crash({sorted(self.crash_rounds)})"

    def fate(
        self, round_num: int, sender: ProcessId, receiver: ProcessId, payload: Payload
    ) -> Fate:
        crash_round = self.crash_rounds.get(sender)
        if crash_round is not None and round_num >= crash_round:
            return Fate.drop()
        return Fate.deliver()


class SilentSendersAdversary(EdgeAdversary):
    """A fixed set of senders is never heard of (permanent omission faults)."""

    def __init__(self, silent: Iterable[ProcessId], seed: Optional[int] = None) -> None:
        super().__init__(seed)
        self.silent: Set[ProcessId] = set(silent)
        self.name = f"silent-senders({sorted(self.silent)})"

    def fate(
        self, round_num: int, sender: ProcessId, receiver: ProcessId, payload: Payload
    ) -> Fate:
        if sender in self.silent:
            return Fate.drop()
        return Fate.deliver()


class PartitionAdversary(EdgeAdversary):
    """Splits ``Pi`` into groups; messages only cross within a group.

    Useful for showing that ``A_{T,E}`` stays safe (but of course cannot
    terminate) under arbitrary loss patterns, and for constructing runs
    that violate the liveness predicates in a controlled way.
    """

    def __init__(self, groups: Iterable[Iterable[ProcessId]], seed: Optional[int] = None) -> None:
        super().__init__(seed)
        self._group_of = {}
        groups = [list(g) for g in groups]
        for index, group in enumerate(groups):
            for pid in group:
                if pid in self._group_of:
                    raise ValueError(f"process {pid} appears in more than one partition group")
                self._group_of[pid] = index
        self.groups = [frozenset(g) for g in groups]
        self.name = f"partition({[sorted(g) for g in self.groups]})"

    def fate(
        self, round_num: int, sender: ProcessId, receiver: ProcessId, payload: Payload
    ) -> Fate:
        sender_group = self._group_of.get(sender)
        receiver_group = self._group_of.get(receiver)
        if sender_group is not None and sender_group == receiver_group:
            return Fate.deliver()
        return Fate.drop()


class BoundedOmissionAdversary(EdgeAdversary):
    """Drops at most ``max_omissions_per_receiver`` incoming messages per round.

    Guarantees ``|HO(p, r)| >= n − max_omissions_per_receiver`` for every
    process and round, which is how liveness-friendly lossy environments
    are modelled.
    """

    def __init__(
        self,
        max_omissions_per_receiver: int,
        drop_probability: float = 1.0,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(seed)
        if max_omissions_per_receiver < 0:
            raise ValueError("max_omissions_per_receiver must be non-negative")
        if not 0 <= drop_probability <= 1:
            raise ValueError(f"drop_probability must be in [0, 1], got {drop_probability}")
        self.max_omissions_per_receiver = max_omissions_per_receiver
        self.drop_probability = drop_probability
        self.name = f"bounded-omission(k={max_omissions_per_receiver})"
        self._dropped_this_round: dict = {}

    def begin_round(self, round_num: int, intended) -> None:
        self._dropped_this_round = {}

    def fate(
        self, round_num: int, sender: ProcessId, receiver: ProcessId, payload: Payload
    ) -> Fate:
        dropped = self._dropped_this_round.setdefault(receiver, 0)
        if dropped >= self.max_omissions_per_receiver:
            return Fate.deliver()
        if self.rng.random() < self.drop_probability:
            self._dropped_this_round[receiver] = dropped + 1
            return Fate.drop()
        return Fate.deliver()

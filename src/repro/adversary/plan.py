"""Mask-level round planning: the adversary API of the fast backend.

The matrix-level :class:`~repro.adversary.base.Adversary` interface
turns an ``n × n`` intended-message matrix into an ``n × n`` received
matrix — inherently ``O(n²)`` dict traffic per round.  The fast engine
(:mod:`repro.simulation.fast_engine`) instead asks a
:class:`MaskPlanner` for a :class:`RoundPlan`: per receiver, a *drop
mask* (senders whose message is omitted), a *corrupt mask* (senders
whose payload is replaced) and the replacement payloads.

Two kinds of planner exist:

* **Native planners** reproduce a concrete adversary's fault schedule
  directly at the mask level, consuming the adversary's RNG in exactly
  the same order as its matrix-level ``deliver_round`` would, so the
  produced ``HO``/``SHO`` collections are bit-for-bit identical.  They
  are registered per *exact* adversary class (subclasses may override
  behaviour, so they fall back to the adapter).
* :class:`MatrixPlanAdapter` wraps **any** matrix-level adversary
  unchanged: it materialises the broadcast intended matrix in the same
  iteration order as the lockstep engine, calls ``deliver_round``, and
  diffs the result into masks.  Semantics (including RNG consumption)
  are therefore identical by construction, at the cost of keeping the
  ``O(n²)`` delivery work.

Use :func:`planner_for` to get the best available planner for an
adversary; :func:`register_planner` extends the native registry.

A third, optional tier sits above both: a :class:`BatchPlanner` plans
whole rounds for *many* runs of the same adversary class at once, in
array form, for the batch engine
(:mod:`repro.simulation.batch_engine`).  Batch planners keep the same
bit-exactness contract as native planners — each run's RNG stream is
consumed in exactly the per-run order, via the
:mod:`~repro.adversary.rng_bridge` where draws vectorise — and they are
pure acceleration: :func:`batch_planner_for` answers ``None`` for
unregistered classes and callers fall back to per-run
:func:`planner_for`.  The native implementations live in
:mod:`repro.adversary.batch_plan` and register only when NumPy is
importable.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Type, Union

from repro.adversary.base import Adversary, ReliableAdversary
from repro.adversary.benign import RandomOmissionAdversary
from repro.adversary.corruption import (
    RandomCorruptionAdversary,
    RotatingSenderCorruptionAdversary,
)
from repro.adversary.santoro_widmayer import BlockFaultAdversary
from repro.adversary.values import corrupt_value
from repro.core.process import Payload, ProcessId
from repro.core.registries import guard_builtin_overwrite, unknown_key_error


@dataclass(frozen=True)
class RoundPlan:
    """The fate of every message of one round, in mask form.

    All three tuples are indexed by *receiver*.  ``drop_masks[p]`` has
    bit ``s`` set iff the message from ``s`` to ``p`` is omitted;
    ``corrupt_masks[p]`` iff it is delivered with a payload different
    from the intended one; ``corrupt_values[p]`` maps each corrupted
    sender to the replacement payload (``None`` when nothing is
    corrupted for ``p``).  Drop and corrupt masks are disjoint — a
    dropped message has no payload to corrupt.
    """

    drop_masks: Tuple[int, ...]
    corrupt_masks: Tuple[int, ...]
    corrupt_values: Tuple[Optional[Dict[ProcessId, Payload]], ...]

    @classmethod
    def perfect(cls, n: int) -> "RoundPlan":
        """The plan of a fully reliable round."""
        zeros = (0,) * n
        return cls(drop_masks=zeros, corrupt_masks=zeros, corrupt_values=(None,) * n)


class MaskPlanner(ABC):
    """Plans the transmission faults of whole rounds at the mask level."""

    def __init__(self, adversary: Adversary, n: int) -> None:
        self.adversary = adversary
        self.n = n

    @abstractmethod
    def plan_round(self, round_num: int, sent: Sequence[Payload]) -> RoundPlan:
        """Return the fault plan for ``round_num``.

        ``sent`` holds the broadcast payload of every sender (index =
        process id), i.e. the whole intended matrix of a broadcast
        algorithm in ``O(n)`` space.
        """

    def reset(self) -> None:
        """Re-seed the underlying adversary (replaying the schedule)."""
        self.adversary.reset()

    def describe(self) -> str:
        return self.adversary.describe()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} over {self.adversary.describe()}>"


class MatrixPlanAdapter(MaskPlanner):
    """Adapter running an arbitrary matrix-level adversary underneath.

    The intended matrix is built with senders and receivers in sorted
    order — exactly how :func:`repro.simulation.engine.execute_round`
    builds it — so stateful/seeded adversaries consume their RNG in the
    same order and produce the same fault schedule on either engine.

    The matrix's per-sender rows are allocated once and reused across
    rounds (rebuilding ``n`` dicts of ``n`` keys per round is pure
    allocation churn on broadcast algorithms, whose payload rows rarely
    change); a row is rewritten in place only when its sender's payload
    actually differs from the previous round's.  Adversaries must
    therefore treat the intended matrix as read-only per the
    ``deliver_round`` contract and must not retain row references
    across rounds.
    """

    #: Sentinel marking a row whose payload has never been filled in
    #: (distinct from any real payload, including ``None``).
    _UNSET: Any = object()

    def __init__(self, adversary: Adversary, n: int) -> None:
        super().__init__(adversary, n)
        self._pids = list(range(n))
        unset = self._UNSET
        self._intended: Dict[ProcessId, Dict[ProcessId, Payload]] = {
            s: dict.fromkeys(self._pids, unset) for s in self._pids
        }
        self._row_payloads: List[Payload] = [unset] * n

    def plan_round(self, round_num: int, sent: Sequence[Payload]) -> RoundPlan:
        n = self.n
        pids = self._pids
        intended = self._intended
        row_payloads = self._row_payloads
        for s in pids:
            payload = sent[s]
            prev = row_payloads[s]
            if prev is payload or (prev.__class__ is payload.__class__ and prev == payload):
                continue
            row = intended[s]
            for r in pids:
                row[r] = payload
            row_payloads[s] = payload
        received = self.adversary.deliver_round(round_num, intended)

        full = (1 << n) - 1
        drop_masks = []
        corrupt_masks = []
        corrupt_values: list = []
        for receiver in pids:
            inbox = received.get(receiver, {})
            ho = 0
            cmask = 0
            cvals: Optional[Dict[ProcessId, Payload]] = None
            for sender, payload in inbox.items():
                # Refuse receptions invented for non-existent senders,
                # mirroring the lockstep engine's inbox filter.
                if not 0 <= sender < n:
                    continue
                ho |= 1 << sender
                if not payload == sent[sender]:
                    cmask |= 1 << sender
                    if cvals is None:
                        cvals = {}
                    cvals[sender] = payload
            drop_masks.append(full & ~ho)
            corrupt_masks.append(cmask)
            corrupt_values.append(cvals)
        return RoundPlan(tuple(drop_masks), tuple(corrupt_masks), tuple(corrupt_values))


class ReliablePlanner(MaskPlanner):
    """Native planner of the fault-free environment: everything arrives."""

    def __init__(self, adversary: Adversary, n: int) -> None:
        super().__init__(adversary, n)
        self._plan = RoundPlan.perfect(n)

    def plan_round(self, round_num: int, sent: Sequence[Payload]) -> RoundPlan:
        return self._plan


class RandomOmissionPlanner(MaskPlanner):
    """Native planner for :class:`RandomOmissionAdversary`.

    Draws one uniform variate per (sender, receiver) edge in the same
    sender-major order as ``EdgeAdversary.deliver_round`` iterates the
    intended matrix, so the adversary's RNG stream — and therefore the
    fault schedule — is identical to the matrix-level execution.
    """

    def __init__(self, adversary: RandomOmissionAdversary, n: int) -> None:
        super().__init__(adversary, n)
        self._nones: Tuple[None, ...] = (None,) * n
        self._zeros: Tuple[int, ...] = (0,) * n

    def plan_round(self, round_num: int, sent: Sequence[Payload]) -> RoundPlan:
        n = self.n
        rand = self.adversary.rng.random
        p = self.adversary.drop_probability
        drops = [0] * n
        for sender in range(n):
            bit = 1 << sender
            for receiver in range(n):
                if rand() < p:
                    drops[receiver] |= bit
        return RoundPlan(tuple(drops), self._zeros, self._nones)


class RandomCorruptionPlanner(MaskPlanner):
    """Native planner for :class:`RandomCorruptionAdversary`.

    Replays the adversary's two RNG phases in their matrix-path order:
    the per-receiver target selection of ``begin_round`` (one uniform
    variate, one randint and one sample per corrupting receiver), then
    the per-edge fate draws in sender-major order (a ``corrupt_value``
    choice for targeted edges, a drop variate otherwise when
    ``drop_probability`` is non-zero).  The RNG stream — and therefore
    the fault schedule — is identical to matrix-level execution.
    """

    def __init__(self, adversary: RandomCorruptionAdversary, n: int) -> None:
        super().__init__(adversary, n)
        self._senders = list(range(n))

    def plan_round(self, round_num: int, sent: Sequence[Payload]) -> RoundPlan:
        adversary = self.adversary
        rng = adversary.rng
        n = self.n
        senders = self._senders

        # begin_round: pick, per receiver, the senders to corrupt.
        targets: list = []
        alpha = adversary.alpha
        p_corrupt = adversary.corruption_probability
        for _receiver in range(n):
            if alpha == 0 or rng.random() >= p_corrupt:
                targets.append(())
                continue
            budget = rng.randint(1, alpha)
            targets.append(frozenset(rng.sample(senders, min(budget, n))))

        # fate, edge by edge in the matrix iteration order.
        drops = [0] * n
        cmasks = [0] * n
        cvals: list = [None] * n
        p_drop = adversary.drop_probability
        domain = adversary.value_domain
        if p_drop:
            for sender in range(n):
                bit = 1 << sender
                payload = sent[sender]
                for receiver in range(n):
                    if sender in targets[receiver]:
                        cmasks[receiver] |= bit
                        per_receiver = cvals[receiver]
                        if per_receiver is None:
                            per_receiver = cvals[receiver] = {}
                        per_receiver[sender] = corrupt_value(rng, payload, domain)
                    elif rng.random() < p_drop:
                        drops[receiver] |= bit
        else:
            # Without drops the only per-edge RNG draws are the corrupt
            # values of the (at most alpha·n) targeted edges, so skip
            # the n² edge scan and visit them in the same sender-major
            # order the matrix path would.
            pairs = sorted(
                (sender, receiver)
                for receiver, chosen in enumerate(targets)
                for sender in chosen
            )
            for sender, receiver in pairs:
                cmasks[receiver] |= 1 << sender
                per_receiver = cvals[receiver]
                if per_receiver is None:
                    per_receiver = cvals[receiver] = {}
                per_receiver[sender] = corrupt_value(rng, sent[sender], domain)
        return RoundPlan(tuple(drops), tuple(cmasks), tuple(cvals))


class RotatingCorruptionPlanner(MaskPlanner):
    """Native planner for :class:`RotatingSenderCorruptionAdversary`.

    The corrupted-sender rotation of ``begin_round`` is deterministic
    (no RNG), so only the injected payloads consume randomness.  In
    equivocating mode the matrix path draws one ``corrupt_value`` per
    (corrupted sender, receiver) edge in sender-major order — replayed
    here identically.  In non-equivocating mode each edge's value comes
    from a *fresh* per-(round, sender) RNG, so every receiver sees the
    same draw and the adversary's own stream is untouched; the planner
    computes that value once per corrupted sender.
    """

    def __init__(self, adversary: RotatingSenderCorruptionAdversary, n: int) -> None:
        super().__init__(adversary, n)
        self._zeros: Tuple[int, ...] = (0,) * n

    def plan_round(self, round_num: int, sent: Sequence[Payload]) -> RoundPlan:
        adversary = self.adversary
        n = self.n
        alpha = adversary.alpha
        if n == 0 or alpha == 0:
            return RoundPlan(self._zeros, self._zeros, (None,) * n)

        # begin_round's deterministic rotation (RNG-free).
        count = min(alpha, n)
        start = ((round_num - 1) * count) % n
        corrupted = sorted(((start + offset) % n) for offset in range(count))

        cmasks = [0] * n
        cvals: list = [dict() for _ in range(n)]
        domain = adversary.value_domain
        if adversary.equivocate:
            # Matrix-path edge order: sender-major, receivers ascending.
            for sender in corrupted:
                bit = 1 << sender
                payload = sent[sender]
                for receiver in range(n):
                    cmasks[receiver] |= bit
                    cvals[receiver][sender] = corrupt_value(adversary.rng, payload, domain)
        else:
            # One fresh seeded RNG per (round, sender): identical for
            # every receiver, and adversary.rng is never consumed.
            for sender in corrupted:
                bit = 1 << sender
                value = corrupt_value(
                    adversary.rng_for(round_num, sender), sent[sender], domain
                )
                for receiver in range(n):
                    cmasks[receiver] |= bit
                    cvals[receiver][sender] = value
        return RoundPlan(self._zeros, tuple(cmasks), tuple(cvals))


class BlockFaultPlanner(MaskPlanner):
    """Native planner for the Santoro–Widmayer :class:`BlockFaultAdversary`.

    Victim selection and the affected-receiver rotation are both
    deterministic; the only RNG draws are the ``corrupt_value`` calls of
    ``mode="corrupt"``, which the matrix path performs once per affected
    receiver in ascending receiver order (the victim is a single sender,
    so all its edges are visited consecutively) — replayed here in the
    same order.  ``mode="drop"`` consumes no randomness at all.
    """

    def __init__(self, adversary: BlockFaultAdversary, n: int) -> None:
        super().__init__(adversary, n)
        self._zeros: Tuple[int, ...] = (0,) * n
        self._nones: Tuple[None, ...] = (None,) * n

    def plan_round(self, round_num: int, sent: Sequence[Payload]) -> RoundPlan:
        adversary = self.adversary
        n = self.n
        if n == 0:
            return RoundPlan((), (), ())
        victim = adversary.victim_of_round(round_num, range(n))
        # A scheduled victim outside Pi has no outgoing links to hit —
        # the matrix path's `intended[victim]` lookup comes up empty.
        if not 0 <= victim < n:
            return RoundPlan(self._zeros, self._zeros, self._nones)

        if adversary.faults_per_round is None:
            affected: Sequence[ProcessId] = range(n)
        else:
            count = min(adversary.faults_per_round, n)
            start = (round_num - 1) % n
            affected = sorted(((start + offset) % n) for offset in range(count))

        bit = 1 << victim
        if adversary.mode == "drop":
            drops = [0] * n
            for receiver in affected:
                drops[receiver] |= bit
            return RoundPlan(tuple(drops), self._zeros, self._nones)

        cmasks = [0] * n
        cvals: list = [None] * n
        payload = sent[victim]
        for receiver in affected:  # ascending: the fate-call order
            cmasks[receiver] |= bit
            cvals[receiver] = {victim: corrupt_value(adversary.rng, payload, adversary.value_domain)}
        return RoundPlan(self._zeros, tuple(cmasks), tuple(cvals))


#: Native planners, keyed by *exact* adversary class (subclasses may
#: change delivery semantics, so they take the adapter path).
_NATIVE_PLANNERS: Dict[Type[Adversary], Callable[[Adversary, int], MaskPlanner]] = {
    ReliableAdversary: ReliablePlanner,
    RandomOmissionAdversary: RandomOmissionPlanner,
    RandomCorruptionAdversary: RandomCorruptionPlanner,
    RotatingSenderCorruptionAdversary: RotatingCorruptionPlanner,
    BlockFaultAdversary: BlockFaultPlanner,
}


#: The planner registrations that ship with the package; silently
#: replacing one would change the fault schedules of every existing
#: caller, so :func:`register_planner` refuses it without
#: ``overwrite=True``.
_BUILTIN_PLANNERS = frozenset(_NATIVE_PLANNERS)


def register_planner(
    adversary_type: Type[Adversary],
    factory: Optional[Callable[[Adversary, int], MaskPlanner]] = None,
    *,
    overwrite: bool = False,
):
    """Register a native mask planner for ``adversary_type`` (exact class).

    Usable directly (``register_planner(MyAdversary, MyPlanner)``) or
    as a decorator (``@register_planner(MyAdversary)`` above the
    planner class); either form returns the factory.  Replacing a
    built-in registration raises unless ``overwrite=True`` is passed
    explicitly.

    Per-process registry: parallel campaign workers only see
    registrations performed at import time (register at module level in
    a module the workers import, or their runs take the
    :class:`MatrixPlanAdapter` path instead).
    """
    guard_builtin_overwrite(
        "mask planner",
        f"for {adversary_type.__name__}",
        adversary_type in _BUILTIN_PLANNERS,
        overwrite,
    )

    def _register(planner_factory: Callable[[Adversary, int], MaskPlanner]):
        _NATIVE_PLANNERS[adversary_type] = planner_factory
        return planner_factory

    if factory is None:
        return _register
    return _register(factory)


def get_planner_factory(
    adversary_type: Union[Type[Adversary], str]
) -> Callable[[Adversary, int], MaskPlanner]:
    """Look up a registered native planner, with a did-you-mean on typos.

    Accepts the adversary class itself or its name; raises
    :class:`ValueError` (listing registered classes, with a close-match
    hint) when no native planner exists for it.  Note that
    :func:`planner_for` never raises — adversaries without a native
    planner take the :class:`MatrixPlanAdapter` path.
    """
    if isinstance(adversary_type, str):
        by_name = {cls.__name__: cls for cls in _NATIVE_PLANNERS}
        cls = by_name.get(adversary_type)
        if cls is None:
            raise unknown_key_error("native mask planner", adversary_type, by_name)
        return _NATIVE_PLANNERS[cls]
    factory = _NATIVE_PLANNERS.get(adversary_type)
    if factory is None:
        raise unknown_key_error(
            "native mask planner",
            adversary_type.__name__,
            (cls.__name__ for cls in _NATIVE_PLANNERS),
        )
    return factory


def planner_for(adversary: Adversary, n: int) -> MaskPlanner:
    """The best planner for ``adversary``: native if registered, else adapter."""
    factory = _NATIVE_PLANNERS.get(type(adversary))
    if factory is not None:
        return factory(adversary, n)
    return MatrixPlanAdapter(adversary, n)


@dataclass(frozen=True)
class BatchRoundPlan:
    """One round's fault schedule for every live member of a batch, in array form.

    ``drop`` is either ``None`` (no member drops anything this round) or
    a ``(m, n, n)`` boolean array indexed ``[member, receiver, sender]``
    over the ``m`` live members the planner was asked about.
    ``drop_words`` is the packed-word alternative: a
    ``(m, n, ceil(n/64))`` uint64 array in the little-endian layout of
    :func:`repro.core.heardof.pack_mask_rows` (bit ``s & 63`` of word
    ``s >> 6`` set iff sender ``s`` is dropped), which never
    materialises the dense ``n x n`` intermediate — planners set at
    most one of the two forms and the engine consumes either.
    ``corrupt`` is either ``None`` or four parallel sequences (lists or
    integer arrays) ``(member, receiver, sender, code)`` — one entry per
    corrupted edge, with the replacement payload already encoded through
    the engine's codebook.  For any fixed ``(member, receiver)``,
    entries appear in ascending-sender order (the order the per-run
    planners insert corrupt values).  Drop bits and corrupt edges are
    disjoint, exactly as :class:`RoundPlan` requires.

    The array types are deliberately loose (``Any``): this module must
    import without NumPy, and the batch engine is the only consumer.
    """

    drop: Any = None
    drop_words: Any = None
    corrupt: Optional[Tuple[Sequence[int], Sequence[int], Sequence[int], Sequence[int]]] = None


class BatchPlanner(ABC):
    """Plans whole rounds for many same-class adversaries at once.

    One instance covers the subset of a run group driven by a single
    exact adversary class; ``adversaries[j]`` is member ``j``'s
    adversary.  The bit-exactness contract of :class:`MaskPlanner`
    carries over per member: each adversary's RNG stream must be
    consumed exactly as its per-run planner would consume it, with
    vectorisable draws routed through
    :class:`~repro.adversary.rng_bridge.RngBridge` and everything else
    replayed scalar-side.  Implementations must not consume RNG for
    members that are not live in a round.
    """

    def __init__(self, adversaries: Sequence[Adversary], n: int) -> None:
        self.adversaries = list(adversaries)
        self.n = n

    @abstractmethod
    def plan_rounds(
        self,
        round_num: int,
        sent: Sequence[Sequence[Payload]],
        live: Sequence[int],
        encode: Callable[[Payload], int],
        codes: Any = None,
        values: Any = None,
    ) -> BatchRoundPlan:
        """The fault plan of ``round_num`` for the live members.

        ``live`` lists the member indices still active, ascending;
        ``sent[pos]`` is the broadcast payload row of member
        ``live[pos]`` (index = sender).  Replacement payloads are pushed
        through ``encode`` (the engine's codebook) so the result is
        pure arrays/ints.  Returned arrays are indexed by *position in
        ``live``*, not by member index.

        ``codes`` and ``values`` are an optional already-encoded view of
        ``sent``: ``codes`` is the same payload grid as an ``(m, n)``
        integer array of codebook codes and ``values[code]`` decodes a
        code back to its payload.  The batch engine always passes them
        (it holds the sent grid in code form anyway); planners that key
        their work on codes instead of payload objects use them to stay
        array-typed end to end, and recompute them via ``encode`` when a
        direct caller omits them.  Implementations are free to ignore
        both.
        """

    def finish(self) -> None:
        """Flush any bridged RNG state back into the adversaries.

        Called once per group, after the last round, so each
        adversary's ``random.Random`` ends up exactly as far along its
        stream as a per-run execution would have left it.  The default
        is a no-op for planners that never bridge.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} over {len(self.adversaries)} adversaries>"


BatchPlannerFactory = Callable[[Sequence[Adversary], int], BatchPlanner]

#: Batch planners, keyed by *exact* adversary class like
#: :data:`_NATIVE_PLANNERS` (subclasses may change delivery semantics,
#: so they stay on the per-run path).
_BATCH_PLANNERS: Dict[Type[Adversary], BatchPlannerFactory] = {}

#: Filled after the built-in registrations at the bottom of this
#: module; :func:`register_batch_planner` refuses to replace these
#: without ``overwrite=True``.
_BUILTIN_BATCH_PLANNERS: set = set()


def register_batch_planner(
    adversary_type: Type[Adversary],
    factory: Optional[BatchPlannerFactory] = None,
    *,
    overwrite: bool = False,
):
    """Register a batch planner for ``adversary_type`` (exact class).

    Mirrors :func:`register_planner`: usable directly or as a
    decorator, returns the factory, and refuses to replace a built-in
    registration unless ``overwrite=True``.  Per-process registry, same
    as the native planners.
    """
    guard_builtin_overwrite(
        "batch planner",
        f"for {adversary_type.__name__}",
        adversary_type in _BUILTIN_BATCH_PLANNERS,
        overwrite,
    )

    def _register(planner_factory: BatchPlannerFactory):
        _BATCH_PLANNERS[adversary_type] = planner_factory
        return planner_factory

    if factory is None:
        return _register
    return _register(factory)


def get_batch_planner_factory(
    adversary_type: Union[Type[Adversary], str]
) -> BatchPlannerFactory:
    """Look up a registered batch planner, with a did-you-mean on typos.

    Accepts the adversary class or its name; raises :class:`ValueError`
    when no batch planner exists (note :func:`batch_planner_for` never
    raises — it answers ``None`` and callers fall back per run).
    """
    if isinstance(adversary_type, str):
        by_name = {cls.__name__: cls for cls in _BATCH_PLANNERS}
        cls = by_name.get(adversary_type)
        if cls is None:
            raise unknown_key_error("batch planner", adversary_type, by_name)
        return _BATCH_PLANNERS[cls]
    factory = _BATCH_PLANNERS.get(adversary_type)
    if factory is None:
        raise unknown_key_error(
            "batch planner",
            adversary_type.__name__,
            (cls.__name__ for cls in _BATCH_PLANNERS),
        )
    return factory


def batch_planner_for(adversaries: Sequence[Adversary], n: int) -> Optional[BatchPlanner]:
    """One batch planner over same-class ``adversaries``, or ``None``.

    Keyed by the *exact* class of the adversaries (which must all share
    one); ``None`` means no batch planner is registered — including the
    NumPy-less case, where :mod:`repro.adversary.batch_plan` never
    imports — and the caller should plan those runs per run via
    :func:`planner_for`.
    """
    if not adversaries:
        return None
    cls = type(adversaries[0])
    if any(type(adversary) is not cls for adversary in adversaries):
        raise ValueError("batch_planner_for requires adversaries of one exact class")
    factory = _BATCH_PLANNERS.get(cls)
    if factory is None:
        return None
    return factory(adversaries, n)


# The native batch planners need NumPy (they stack RNG-bridge blocks
# into arrays); without it nothing registers and every adversary class
# stays on the per-run planner path.
try:
    from repro.adversary import batch_plan as _batch_plan  # noqa: F401,E402
except ImportError:  # pragma: no cover - exercised by the numpy-less CI leg
    pass
_BUILTIN_BATCH_PLANNERS.update(_BATCH_PLANNERS)

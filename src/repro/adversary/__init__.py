"""Adversaries: fault environments producing the HO/SHO collections.

The adversary layer is the reproduction's substitute for the paper's
abstract "discrepancy between what should be sent and what is actually
received": every adversary consumes the matrix of intended messages of a
round and returns the matrix of actually received messages, dropping
(omission/benign faults) or altering (value faults/corruption) messages.
Process state is never touched.

Families
--------
* Fault-free / benign: :class:`ReliableAdversary`,
  :class:`RandomOmissionAdversary`, :class:`CrashAdversary`,
  :class:`SilentSendersAdversary`, :class:`PartitionAdversary`,
  :class:`BoundedOmissionAdversary`.
* Value faults bounded per receiver/round (``P_alpha`` by construction):
  :class:`RandomCorruptionAdversary`,
  :class:`RotatingSenderCorruptionAdversary`.
* Unbounded / targeted value faults (for boundary experiments):
  :class:`UnboundedCorruptionAdversary`, :class:`SplitVoteAdversary`.
* Lower-bound scenarios: :class:`BlockFaultAdversary`
  (Santoro–Widmayer blocks), :class:`StaticByzantineAdversary`
  (classical permanent faults).
* Liveness-structured wrappers: :class:`PeriodicGoodRoundAdversary`,
  :class:`PartialGoodRoundAdversary`, :class:`PeriodicGoodPhaseAdversary`.
* Combinators: :class:`AlphaCapAdversary`,
  :class:`MinimumSafeDeliveryAdversary`, :class:`SequentialAdversary`,
  :class:`RoundScheduleAdversary`.
* Mask-level planning (the fast backend's adversary API):
  :class:`MaskPlanner`, :class:`RoundPlan`, :class:`MatrixPlanAdapter`
  and the native planners (:mod:`repro.adversary.plan`).
* Batch planning (the batch backend's adversary API):
  :class:`BatchPlanner`, :class:`BatchRoundPlan`,
  :func:`register_batch_planner`/:func:`batch_planner_for`
  (:mod:`repro.adversary.plan`), with array-at-a-time schedules built
  on the bit-exact NumPy state sharing of :class:`RngBridge` and
  :class:`WordStream` (:mod:`repro.adversary.rng_bridge`).
"""

from repro.adversary.base import (
    Adversary,
    EdgeAdversary,
    Fate,
    FateKind,
    ReliableAdversary,
    perfect_delivery,
)
from repro.adversary.benign import (
    BoundedOmissionAdversary,
    CrashAdversary,
    PartitionAdversary,
    RandomOmissionAdversary,
    SilentSendersAdversary,
)
from repro.adversary.byzantine import StaticByzantineAdversary
from repro.adversary.compose import (
    AlphaCapAdversary,
    LatencyAdversary,
    MinimumSafeDeliveryAdversary,
    RoundScheduleAdversary,
    SequentialAdversary,
)
from repro.adversary.corruption import (
    RandomCorruptionAdversary,
    RotatingSenderCorruptionAdversary,
    SplitVoteAdversary,
    UnboundedCorruptionAdversary,
)
from repro.adversary.liveness import (
    PartialGoodRoundAdversary,
    PeriodicGoodPhaseAdversary,
    PeriodicGoodRoundAdversary,
)
from repro.adversary.plan import (
    BatchPlanner,
    BatchRoundPlan,
    BlockFaultPlanner,
    MaskPlanner,
    MatrixPlanAdapter,
    RandomOmissionPlanner,
    ReliablePlanner,
    RotatingCorruptionPlanner,
    RoundPlan,
    batch_planner_for,
    planner_for,
    register_batch_planner,
    register_planner,
)
from repro.adversary.rng_bridge import RngBridge, WordStream, numpy_available
from repro.adversary.santoro_widmayer import BlockFaultAdversary, santoro_widmayer_bound
from repro.adversary.values import DEFAULT_POISON_VALUES, corrupt_value

__all__ = [
    "Adversary",
    "AlphaCapAdversary",
    "LatencyAdversary",
    "BatchPlanner",
    "BatchRoundPlan",
    "BlockFaultPlanner",
    "MaskPlanner",
    "MatrixPlanAdapter",
    "RandomOmissionPlanner",
    "ReliablePlanner",
    "RngBridge",
    "RotatingCorruptionPlanner",
    "RoundPlan",
    "WordStream",
    "batch_planner_for",
    "numpy_available",
    "planner_for",
    "register_batch_planner",
    "register_planner",
    "BlockFaultAdversary",
    "BoundedOmissionAdversary",
    "CrashAdversary",
    "DEFAULT_POISON_VALUES",
    "EdgeAdversary",
    "Fate",
    "FateKind",
    "MinimumSafeDeliveryAdversary",
    "PartialGoodRoundAdversary",
    "PartitionAdversary",
    "PeriodicGoodPhaseAdversary",
    "PeriodicGoodRoundAdversary",
    "RandomCorruptionAdversary",
    "RandomOmissionAdversary",
    "ReliableAdversary",
    "RotatingSenderCorruptionAdversary",
    "RoundScheduleAdversary",
    "SequentialAdversary",
    "SilentSendersAdversary",
    "SplitVoteAdversary",
    "StaticByzantineAdversary",
    "UnboundedCorruptionAdversary",
    "corrupt_value",
    "perfect_delivery",
    "santoro_widmayer_bound",
]

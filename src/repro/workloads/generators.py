"""Initial-value workload generators.

Consensus behaviour depends heavily on the initial configuration:
unanimous configurations exercise Integrity and one-round decisions,
near-split configurations are the hardest for Agreement, and random
configurations are what the randomised sweeps use.  All generators are
deterministic given their seed.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.core.process import ProcessId, Value


def unanimous(n: int, value: Value = 0) -> Dict[ProcessId, Value]:
    """Every process starts with the same value (Integrity scenario)."""
    return {pid: value for pid in range(n)}


def split(n: int, value_a: Value = 0, value_b: Value = 1, count_a: Optional[int] = None) -> Dict[ProcessId, Value]:
    """``count_a`` processes start with ``value_a``, the rest with ``value_b``.

    The default is the hardest near-even split (``ceil(n/2)`` vs
    ``floor(n/2)``).
    """
    if count_a is None:
        count_a = (n + 1) // 2
    if not 0 <= count_a <= n:
        raise ValueError(f"count_a must be in [0, {n}], got {count_a}")
    return {pid: (value_a if pid < count_a else value_b) for pid in range(n)}


def uniform_random(
    n: int, domain: Sequence[Value] = (0, 1), seed: Optional[int] = None
) -> Dict[ProcessId, Value]:
    """Each process draws its initial value uniformly from ``domain``."""
    if not domain:
        raise ValueError("domain must be non-empty")
    rng = random.Random(seed)
    return {pid: rng.choice(list(domain)) for pid in range(n)}


def skewed(
    n: int,
    majority_value: Value = 0,
    minority_value: Value = 1,
    minority_fraction: float = 0.25,
    seed: Optional[int] = None,
) -> Dict[ProcessId, Value]:
    """A clear majority holds ``majority_value``; a random minority disagrees."""
    if not 0 <= minority_fraction <= 1:
        raise ValueError("minority_fraction must be in [0, 1]")
    rng = random.Random(seed)
    minority_count = int(round(minority_fraction * n))
    minority = set(rng.sample(range(n), minority_count))
    return {
        pid: (minority_value if pid in minority else majority_value) for pid in range(n)
    }


def distinct(n: int) -> Dict[ProcessId, Value]:
    """Every process starts with a distinct value (worst case for convergence)."""
    return {pid: pid for pid in range(n)}


def batch(
    n: int,
    runs: int,
    domain: Sequence[Value] = (0, 1),
    seed: Optional[int] = None,
) -> List[Dict[ProcessId, Value]]:
    """A reproducible batch of random initial configurations for sweeps."""
    rng = random.Random(seed)
    return [
        uniform_random(n, domain=domain, seed=rng.randrange(2**31)) for _ in range(runs)
    ]

"""Workloads: initial-value generators and named end-to-end scenarios."""

from repro.workloads import generators
from repro.workloads.generators import batch, distinct, skewed, split, unanimous, uniform_random
from repro.workloads.scenarios import Scenario, by_name, catalogue

__all__ = [
    "Scenario",
    "batch",
    "by_name",
    "catalogue",
    "distinct",
    "generators",
    "skewed",
    "split",
    "unanimous",
    "uniform_random",
]

"""Named end-to-end scenarios pairing workloads with fault environments.

A :class:`Scenario` bundles everything one experiment run needs — system
size, initial values, algorithm factory and adversary factory — under a
name, so examples, tests and benchmarks can share identical setups.  The
catalogue below covers the situations the paper's introduction and
evaluation discuss: fault-free fast paths, transient per-round
corruption, Santoro–Widmayer block faults, static Byzantine senders and
lossy-but-uncorrupted networks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping

from repro.adversary import (
    Adversary,
    BlockFaultAdversary,
    PeriodicGoodPhaseAdversary,
    PeriodicGoodRoundAdversary,
    RandomCorruptionAdversary,
    RandomOmissionAdversary,
    ReliableAdversary,
    StaticByzantineAdversary,
)
from repro.algorithms import AteAlgorithm, UteAlgorithm
from repro.core.algorithm import HOAlgorithm
from repro.core.process import ProcessId, Value
from repro.workloads import generators


@dataclass
class Scenario:
    """A reusable experiment setup."""

    name: str
    description: str
    n: int
    initial_values: Mapping[ProcessId, Value]
    algorithm_factory: Callable[[], HOAlgorithm]
    adversary_factory: Callable[[int], Adversary]
    max_rounds: int = 60
    metadata: Dict[str, object] = field(default_factory=dict)

    def algorithm(self) -> HOAlgorithm:
        return self.algorithm_factory()

    def adversary(self, seed: int = 0) -> Adversary:
        return self.adversary_factory(seed)


def fault_free_fast_path(n: int = 9) -> Scenario:
    """Fault-free run of ``A_{T,E}``: decides in two rounds (one if unanimous)."""
    return Scenario(
        name="fault-free-fast-path",
        description="A_{T,E} with reliable communication; the fast-decision scenario of Section 3.3.",
        n=n,
        initial_values=generators.split(n),
        algorithm_factory=lambda: AteAlgorithm.symmetric(n=n, alpha=0),
        adversary_factory=lambda seed: ReliableAdversary(),
        max_rounds=10,
    )


def transient_corruption(n: int = 12, alpha: int = 2, good_round_period: int = 4) -> Scenario:
    """``A_{T,E}`` under per-round bounded corruption with sporadic good rounds."""
    return Scenario(
        name="transient-corruption",
        description=(
            "A_{T,E} under P_alpha-bounded random corruption with a perfect round "
            f"every {good_round_period} rounds (satisfies P^A,live)."
        ),
        n=n,
        initial_values=generators.uniform_random(n, seed=11),
        algorithm_factory=lambda: AteAlgorithm.symmetric(n=n, alpha=alpha),
        adversary_factory=lambda seed: PeriodicGoodRoundAdversary(
            inner=RandomCorruptionAdversary(alpha=alpha, value_domain=(0, 1), seed=seed),
            period=good_round_period,
        ),
        max_rounds=60,
        metadata={"alpha": alpha},
    )


def heavy_corruption_ute(n: int = 11, alpha: int = 4, good_phase_period: int = 3) -> Scenario:
    """``U_{T,E,α}`` under close-to-``n/2`` corruption with sporadic good phases."""
    return Scenario(
        name="heavy-corruption-ute",
        description=(
            "U_{T,E,alpha} tolerating alpha close to n/2 corrupted receptions per round, "
            "with a clean phase window every few phases (satisfies P^U,live)."
        ),
        n=n,
        initial_values=generators.uniform_random(n, seed=5),
        algorithm_factory=lambda: UteAlgorithm.minimal(n=n, alpha=alpha),
        adversary_factory=lambda seed: PeriodicGoodPhaseAdversary(
            inner=RandomCorruptionAdversary(
                alpha=alpha, value_domain=(0, 1), drop_probability=0.0, seed=seed
            ),
            period=good_phase_period,
        ),
        max_rounds=80,
        metadata={"alpha": alpha},
    )


def santoro_widmayer_blocks(n: int = 10, good_round_period: int = 5) -> Scenario:
    """Block faults of [18]: every round one process's outgoing links are corrupted."""
    return Scenario(
        name="santoro-widmayer-blocks",
        description=(
            "The Santoro-Widmayer impossibility scenario (block transmission faults) "
            "with sporadic clean rounds; A_{T,E} stays safe and terminates."
        ),
        n=n,
        initial_values=generators.split(n),
        algorithm_factory=lambda: AteAlgorithm.symmetric(n=n, alpha=max((n - 1) // 4, 1)),
        adversary_factory=lambda seed: PeriodicGoodRoundAdversary(
            inner=BlockFaultAdversary(faults_per_round=n // 2, value_domain=(0, 1), seed=seed),
            period=good_round_period,
        ),
        max_rounds=60,
    )


def static_byzantine(n: int = 10, f: int = 2) -> Scenario:
    """Classical permanent faults: ``f`` fixed senders always corrupted."""
    return Scenario(
        name="static-byzantine",
        description=(
            "The classical static-Byzantine environment encoded as transmission faults "
            "(Section 5.2); U_{T,E,alpha} with alpha = f stays safe and terminates."
        ),
        n=n,
        initial_values=generators.skewed(n, seed=3),
        algorithm_factory=lambda: UteAlgorithm.minimal(n=n, alpha=f),
        adversary_factory=lambda seed: StaticByzantineAdversary(
            byzantine=range(f), value_domain=(0, 1), seed=seed
        ),
        max_rounds=40,
        metadata={"f": f},
    )


def lossy_network(n: int = 12, drop_probability: float = 0.2, good_round_period: int = 4) -> Scenario:
    """Benign omissions only — the environment of the original HO model."""
    return Scenario(
        name="lossy-network",
        description="Benign message loss (no corruption); OneThirdRule-style behaviour of A_{T,E} at alpha = 0.",
        n=n,
        initial_values=generators.uniform_random(n, seed=23),
        algorithm_factory=lambda: AteAlgorithm.symmetric(n=n, alpha=0),
        adversary_factory=lambda seed: PeriodicGoodRoundAdversary(
            inner=RandomOmissionAdversary(drop_probability=drop_probability, seed=seed),
            period=good_round_period,
        ),
        max_rounds=60,
    )


def catalogue() -> List[Scenario]:
    """All named scenarios with their default sizes."""
    return [
        fault_free_fast_path(),
        transient_corruption(),
        heavy_corruption_ute(),
        santoro_widmayer_blocks(),
        static_byzantine(),
        lossy_network(),
    ]


def by_name(name: str) -> Scenario:
    """Look a scenario up by name."""
    for scenario in catalogue():
        if scenario.name == name:
            return scenario
    raise KeyError(f"unknown scenario {name!r}; available: {[s.name for s in catalogue()]}")
